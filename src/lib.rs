//! `dns-backscatter` — detecting malicious network-wide activity with
//! DNS backscatter.
//!
//! This is the workspace's umbrella crate: it re-exports
//! [`backscatter_core`] (which in turn exposes every subsystem) and
//! hosts the runnable examples in `examples/` and the cross-crate
//! integration tests in `tests/`.
//!
//! Start with [`backscatter_core::prelude`] and the `quickstart`
//! example:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use backscatter_core::*;
