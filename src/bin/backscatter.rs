//! `backscatter` — command-line front end for the dns-backscatter
//! system.
//!
//! ```text
//! backscatter simulate --dataset JP-ditl --scale smoke --seed 7 --out jp.tsv
//! backscatter features --log jp.tsv [--min-queriers 20]
//! backscatter classify --log jp.tsv --dataset JP-ditl --scale smoke --seed 7
//! backscatter capture  --log jp.tsv --out jp.bscap      # TSV → packet capture
//! backscatter capture  --capture jp.bscap --out jp.tsv  # packet capture → TSV
//! ```
//!
//! The world is deterministic per seed, so `classify` can re-derive the
//! generating scenario (for label curation) from the same dataset,
//! scale, and seed that produced the log.

use dns_backscatter::netsim::capture::{read_capture, write_capture};
use dns_backscatter::netsim::log::QueryLog;
use dns_backscatter::prelude::*;
use dns_backscatter::sensor::StreamConfig;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

/// Counting allocator so `--profile` attributes allocation pressure to
/// pipeline stages. One relaxed load per allocation while profiling is
/// off — measured in the noise (see `bench.prof.overhead_pct`).
#[global_allocator]
static ALLOC: dns_backscatter::prof::CountingAlloc = dns_backscatter::prof::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage();
        return ExitCode::from(2);
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    // --threads N works on every subcommand: size the bs-par pool
    // before any parallel region starts (0 or absent = BS_THREADS env,
    // else all available cores).
    if let Some(t) = flags.get("threads") {
        match t.parse::<usize>() {
            Ok(n) => dns_backscatter::par::set_threads(n),
            Err(_) => {
                eprintln!("error: --threads expects a number, got {t:?}");
                return ExitCode::from(2);
            }
        }
    }
    // --metrics <path> works on every subcommand: enable the registry
    // up front, snapshot to the path on success.
    let metrics_path = flags.get("metrics").cloned();
    if metrics_path.is_some() {
        dns_backscatter::telemetry::enable();
    }
    // --trace <path> works on every subcommand: start the flight
    // recorder up front, write Chrome trace JSON on success. The panic
    // hook dumps the span tree to stderr if the run dies instead.
    let trace_path = flags.get("trace").cloned();
    if trace_path.is_some() {
        dns_backscatter::trace::enable();
        dns_backscatter::trace::install_panic_hook();
    }
    // --profile <hz> works on every subcommand: start the wall-clock
    // sampling profiler up front; the command's span stacks, per-stage
    // ns-per-record costs, and allocation pressure print on exit, and
    // a --serve endpoint exposes the folded flamegraph live at
    // /profile/flame while the command runs.
    let profile_hz: Option<u32> = match flags.get("profile") {
        None => None,
        Some(s) => match s.parse::<u32>() {
            Ok(hz) if hz > 0 => Some(hz),
            _ => {
                eprintln!("error: --profile expects a sample rate in Hz (1-1000), got {s:?}");
                return ExitCode::from(2);
            }
        },
    };
    if let Some(hz) = profile_hz {
        dns_backscatter::prof::start(hz);
    }
    // --serve <addr> works on every subcommand: start the bs-live
    // stack (registry sampler + HTTP scrape endpoint + health
    // watchdog) before the command runs and keep it up until exit.
    // The bound address is printed so `--serve 127.0.0.1:0` callers
    // can discover the ephemeral port.
    let live_handle = match flags.get("serve") {
        Some(addr) => {
            match dns_backscatter::live::serve(addr, dns_backscatter::live::LiveConfig::default()) {
                Ok(h) => {
                    println!("live: listening on {}", h.addr());
                    dns_backscatter::telemetry::info!(
                        "cli",
                        "live endpoint up";
                        addr = h.addr(),
                        routes =
                            "/metrics /snapshot /health /trace/summary /buildinfo /profile/*",
                    );
                    Some(h)
                }
                Err(e) => {
                    eprintln!("error: --serve {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let result = {
        // Root of the causal span tree (inert without --trace); must
        // drop before the export drains the recorder.
        let _root = dns_backscatter::trace::span(root_span_name(command));
        match command.as_str() {
            "simulate" => cmd_simulate(&flags),
            "features" => cmd_features(&flags),
            "classify" => cmd_classify(&flags),
            "train" => cmd_train(&flags),
            "report" => cmd_report(&flags),
            "capture" => cmd_capture(&flags),
            "stream" => cmd_stream(&flags, live_handle.as_ref()),
            "stats" => cmd_stats(&flags),
            "trace" => cmd_trace(&flags),
            "help" | "--help" | "-h" => {
                usage();
                Ok(())
            }
            other => Err(format!("unknown command {other:?}")),
        }
    };
    let result = result.and_then(|()| {
        if let Some(path) = metrics_path {
            let json = dns_backscatter::telemetry::snapshot_json();
            std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
            dns_backscatter::telemetry::info!("cli", "wrote metrics snapshot"; path = path);
        }
        if let Some(path) = trace_path {
            use dns_backscatter::trace::ledger;
            let events = dns_backscatter::trace::drain();
            let json = dns_backscatter::trace::chrome_trace_json(&events);
            std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
            for imb in ledger::verify() {
                let win = match imb.window {
                    ledger::NO_WINDOW => "-".to_string(),
                    w => w.to_string(),
                };
                dns_backscatter::telemetry::warn!(
                    "cli",
                    "ledger imbalance at {} (window {win}): {} in, {} accounted",
                    imb.stage,
                    imb.records_in,
                    imb.accounted
                );
            }
            dns_backscatter::telemetry::info!(
                "cli",
                "wrote trace";
                path = path,
                events = events.len(),
                dropped = dns_backscatter::trace::dropped(),
            );
        }
        Ok(())
    });
    // Stop the sampler and print the profile exit summary: ranked
    // stages by sample count, the ns-per-record cost table joined
    // against the conservation ledger, and allocation pressure by
    // stage. Printed even when the command failed — the samples were
    // still taken and often explain the failure.
    if profile_hz.is_some() {
        dns_backscatter::prof::stop();
        println!("\n=== profile (top stages by self samples) ===");
        print!("{}", dns_backscatter::prof::top_table());
        println!("\n=== per-stage cost (ns per record) ===");
        print!("{}", dns_backscatter::prof::cost::render());
        println!("\n=== allocation pressure by stage ===");
        print!("{}", dns_backscatter::prof::alloc::render());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The root span name for a subcommand (span names are `&'static str`,
/// so unknown commands fall back to a generic root).
fn root_span_name(command: &str) -> &'static str {
    match command {
        "simulate" => "cli.simulate",
        "features" => "cli.features",
        "classify" => "cli.classify",
        "train" => "cli.train",
        "report" => "cli.report",
        "capture" => "cli.capture",
        "stream" => "cli.stream",
        "stats" => "cli.stats",
        "trace" => "cli.trace",
        _ => "cli.run",
    }
}

/// `backscatter trace`: inspect a Chrome trace JSON file written by
/// `--trace` — event phases, lanes, and the hottest spans.
fn cmd_trace(flags: &Flags) -> Result<(), String> {
    let path = flags.get("file").ok_or("--file is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value =
        dns_backscatter::trace::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("no traceEvents array — not a --trace output?")?;

    let mut lanes: BTreeMap<u64, String> = BTreeMap::new();
    let mut phases: BTreeMap<String, u64> = BTreeMap::new();
    // Span name → (end count, summed dur_us) from span-end events.
    let mut spans: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap_or("?");
        *phases.entry(ph.to_string()).or_insert(0) += 1;
        let tid = e.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        if ph == "M" {
            if e.get("name").and_then(|v| v.as_str()) == Some("thread_name") {
                if let Some(n) = e.get("args").and_then(|a| a.get("name")).and_then(|v| v.as_str())
                {
                    lanes.insert(tid, n.to_string());
                }
            }
            continue;
        }
        lanes.entry(tid).or_insert_with(|| format!("lane-{tid}"));
        if ph == "E" {
            if let Some(name) = e.get("name").and_then(|v| v.as_str()) {
                let dur = e
                    .get("args")
                    .and_then(|a| a.get("dur_us"))
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0) as u64;
                let s = spans.entry(name.to_string()).or_insert((0, 0));
                s.0 += 1;
                s.1 += dur;
            }
        }
    }

    println!("{path}: {} events", events.len());
    let ph_counts: Vec<String> = phases.iter().map(|(k, v)| format!("{v} {k}")).collect();
    println!("phases: {}", ph_counts.join(", "));
    println!("lanes:");
    for (tid, name) in &lanes {
        println!("  {tid:>4}  {name}");
    }
    let mut hottest: Vec<(&String, &(u64, u64))> = spans.iter().collect();
    hottest.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(b.0)));
    println!("spans by total time:");
    for (name, (count, total_us)) in hottest.iter().take(15) {
        println!("  {total_us:>10} us  {count:>6}x  {name}");
    }
    Ok(())
}

/// `backscatter stream`: replay a query log through the streaming
/// sensor as a long-running process — optionally paced to a target
/// records/second — with the bs-live observability stack attached via
/// the global `--serve` flag.
fn cmd_stream(
    flags: &Flags,
    live: Option<&dns_backscatter::live::LiveHandle>,
) -> Result<(), String> {
    let log = load_log(flags)?;
    let window_secs: u64 = match flags.get("window") {
        None => 3600,
        Some(s) => s.parse().map_err(|_| format!("bad --window {s:?} (seconds)"))?,
    };
    let max_originators: usize = match flags.get("max-originators") {
        None => StreamConfig::default().max_originators,
        Some(s) => s.parse().map_err(|_| format!("bad --max-originators {s:?}"))?,
    };
    let pace_rps: u64 = match flags.get("pace") {
        None => 0,
        Some(s) => {
            s.parse().map_err(|_| format!("bad --pace {s:?} (records/sec, 0 = flat out)"))?
        }
    };
    let shards: usize = match flags.get("shards") {
        None => 0, // auto-size from the bs-par pool (BS_THREADS / cores)
        Some(s) => s.parse().map_err(|_| format!("bad --shards {s:?} (lanes, 0 = auto)"))?,
    };
    // --extract N: run per-window feature extraction (analyzability
    // threshold N unique queriers) through the cross-window querier
    // metadata cache — the online-serving posture.
    let extract: Option<usize> = flags
        .get("extract")
        .map(|s| s.parse().map_err(|_| format!("bad --extract {s:?} (min unique queriers)")))
        .transpose()?;
    let config = StreamConfig {
        window: SimDuration::from_secs(window_secs.max(1)),
        max_originators,
        ..StreamConfig::default()
    };
    // The live view is useless without a recording registry; --serve
    // already enabled it, but `stream` records even when run bare so
    // --metrics output is always populated.
    dns_backscatter::telemetry::enable();
    let resolved_shards = dns_backscatter::stream::resolve_shards(shards);
    if resolved_shards > 1 {
        println!("stream: sharding ingest across {resolved_shards} lanes");
    }
    let stats = match extract {
        None => dns_backscatter::stream::run_live_stream(
            log.records(),
            config,
            shards,
            live,
            pace_rps,
            |w| {
                println!(
                    "window [{}s, {}s): {} originators, {} evicted",
                    w.window.0.secs(),
                    w.window.1.secs(),
                    w.observations.per_originator.len(),
                    w.evicted,
                );
            },
        ),
        Some(min_queriers) => {
            let world = World::new(WorldConfig::default());
            let feature_config = FeatureConfig { min_queriers, top_n: None };
            let mut cache = dns_backscatter::sensor::QuerierMetaCache::default();
            let stats = dns_backscatter::stream::run_live_stream_extracting(
                log.records(),
                config,
                shards,
                live,
                pace_rps,
                &world,
                &feature_config,
                &mut cache,
                |w, features| {
                    println!(
                        "window [{}s, {}s): {} originators, {} evicted, {} analyzable",
                        w.window.0.secs(),
                        w.window.1.secs(),
                        w.observations.per_originator.len(),
                        w.evicted,
                        features.len(),
                    );
                },
            );
            println!(
                "qmeta cache: {} hits, {} misses ({} expired), {} entries held",
                cache.hits(),
                cache.misses(),
                cache.expired(),
                cache.len(),
            );
            stats
        }
    };
    println!(
        "stream: {} records in {} windows, {} evicted",
        stats.records, stats.windows, stats.evicted
    );
    if let Some(linger) = flags.get("linger") {
        let secs: u64 = linger.parse().map_err(|_| format!("bad --linger {linger:?} (seconds)"))?;
        if live.is_some() {
            println!("lingering {secs}s (scrape endpoint stays up)…");
        }
        std::thread::sleep(Duration::from_secs(secs));
    }
    Ok(())
}

/// `backscatter stats --watch <addr>`: poll a live `/snapshot`
/// endpoint and print a refreshing rate table.
fn cmd_stats_watch(flags: &Flags, target: &str) -> Result<(), String> {
    let addr: std::net::SocketAddr =
        target.parse().map_err(|_| format!("bad --watch address {target:?} (ip:port)"))?;
    let iterations: u64 = match flags.get("iterations") {
        None => 0, // 0 = poll forever
        Some(s) => s.parse().map_err(|_| format!("bad --iterations {s:?}"))?,
    };
    let interval_ms: u64 = match flags.get("interval-ms") {
        None => 1000,
        Some(s) => s.parse().map_err(|_| format!("bad --interval-ms {s:?}"))?,
    };
    let mut done = 0u64;
    loop {
        let (code, body) = dns_backscatter::live::http_get(addr, "/snapshot")
            .map_err(|e| format!("scrape {addr}: {e}"))?;
        if code != 200 {
            return Err(format!("{addr}/snapshot answered HTTP {code}"));
        }
        let v = dns_backscatter::trace::json::parse(&body)
            .map_err(|e| format!("bad /snapshot JSON from {addr}: {e}"))?;
        let health = v.get("health").and_then(|h| h.as_str()).unwrap_or("?");
        let ticks = v.get("ticks").and_then(|t| t.as_f64()).unwrap_or(0.0);
        let mut rates: Vec<(String, f64, f64, f64)> = v
            .get("rates")
            .and_then(|r| r.as_object())
            .map(|pairs| {
                pairs
                    .iter()
                    .filter_map(|(name, rv)| {
                        Some((
                            name.clone(),
                            rv.get("r10s")?.as_f64()?,
                            rv.get("ewma")?.as_f64()?,
                            rv.get("total")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default();
        rates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        println!("health={health} ticks={ticks:.0} counters={}", rates.len());
        println!("  {:>12}  {:>12}  {:>12}  counter", "r10s/s", "ewma/s", "total");
        for (name, r10, ewma, total) in rates.iter().take(12) {
            println!("  {r10:>12.1}  {ewma:>12.1}  {total:>12.0}  {name}");
        }
        done += 1;
        if iterations > 0 && done >= iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
        println!();
    }
}

/// `backscatter stats --top <addr>`: poll a live `/profile/top`
/// endpoint and print the profiler's ranked-stage view.
fn cmd_stats_top(flags: &Flags, target: &str) -> Result<(), String> {
    let addr: std::net::SocketAddr =
        target.parse().map_err(|_| format!("bad --top address {target:?} (ip:port)"))?;
    let iterations: u64 = match flags.get("iterations") {
        None => 1,
        Some(s) => s.parse().map_err(|_| format!("bad --iterations {s:?}"))?,
    };
    let interval_ms: u64 = match flags.get("interval-ms") {
        None => 1000,
        Some(s) => s.parse().map_err(|_| format!("bad --interval-ms {s:?}"))?,
    };
    let mut done = 0u64;
    loop {
        let (code, body) = dns_backscatter::live::http_get(addr, "/profile/top")
            .map_err(|e| format!("scrape {addr}: {e}"))?;
        if code != 200 {
            return Err(format!("{addr}/profile/top answered HTTP {code}"));
        }
        let v = dns_backscatter::trace::json::parse(&body)
            .map_err(|e| format!("bad /profile/top JSON from {addr}: {e}"))?;
        let num = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
        let busy = num("busy");
        println!(
            "profiler: hz={:.0} ticks={:.0} busy={busy:.0} idle={:.0} torn={:.0}",
            num("hz"),
            num("ticks"),
            num("idle"),
            num("torn"),
        );
        println!("  {:>8}  {:>8}  {:>6}  stage", "self", "total", "self%");
        if let Some(stages) = v.get("stages").and_then(|s| s.as_array()) {
            for st in stages.iter().take(15) {
                let name = st.get("stage").and_then(|n| n.as_str()).unwrap_or("?");
                let selfc = st.get("self").and_then(|n| n.as_f64()).unwrap_or(0.0);
                let total = st.get("total").and_then(|n| n.as_f64()).unwrap_or(0.0);
                let pct = if busy > 0.0 { selfc * 100.0 / busy } else { 0.0 };
                println!("  {selfc:>8.0}  {total:>8.0}  {pct:>5.1}%  {name}");
            }
        }
        done += 1;
        if iterations > 0 && done >= iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
        println!();
    }
}

/// `backscatter stats --fetch <addr> [--path /route]`: one raw GET
/// against a live endpoint, body to stdout. The machine-readable
/// escape hatch CI smokes use to pull /profile/flame and friends
/// without a shell HTTP client.
fn cmd_stats_fetch(flags: &Flags, target: &str) -> Result<(), String> {
    let addr: std::net::SocketAddr =
        target.parse().map_err(|_| format!("bad --fetch address {target:?} (ip:port)"))?;
    let path = flags.get("path").map(String::as_str).unwrap_or("/snapshot");
    let (code, body) = dns_backscatter::live::http_get(addr, path)
        .map_err(|e| format!("fetch {addr}{path}: {e}"))?;
    if code != 200 {
        return Err(format!("{addr}{path} answered HTTP {code}"));
    }
    print!("{body}");
    Ok(())
}

/// `backscatter stats`: describe the telemetry surface, or dump a live
/// snapshot of the current process (mostly useful with --format).
fn cmd_stats(flags: &Flags) -> Result<(), String> {
    if let Some(target) = flags.get("watch") {
        return cmd_stats_watch(flags, target);
    }
    if let Some(target) = flags.get("top") {
        return cmd_stats_top(flags, target);
    }
    if let Some(target) = flags.get("fetch") {
        return cmd_stats_fetch(flags, target);
    }
    match flags.get("format").map(String::as_str) {
        None | Some("help") => {
            println!(
                "telemetry — every subcommand accepts --metrics <path> to write a JSON
snapshot of all counters, gauges, and latency histograms on success.

metric naming: dotted crate.stage names, e.g.
  netsim.contacts            contacts simulated
  netsim.cache.hit/.miss     leaf PTR-cache behavior
  netsim.queries.root/.national/.final   resolver fan-out
  netsim.log.parsed_records  TSV records parsed from --log
  sensor.records             deduplicated records accepted (batch path)
  sensor.dedup_suppressed    records dropped by the 30 s dedup window
  sensor.stream.*            streaming-sensor records/admissions/evictions
  sensor.stream.out_of_order records predating their window, dropped
  sensor.stream.probation_resets   probation-cap clears under storm load
  sensor.window_evicted      gauge: evictions in the last flushed window
  sensor.shard.<i>.*         per-shard ingested/evictions/probation_resets
                             counters (sensor.stream.* stays the rollup)
  sensor.shard.load.*        gauges: max/mean per-shard records last window
  sensor.shard.skew_milli    gauge: 1000 × max/mean shard load (1000 = even)
  sensor.qmeta.cache_hits/.cache_misses   querier-metadata cache probes
                             served from / missing the cross-window cache
  sensor.qmeta.cache_expired souring entries re-resolved past the keep
                             horizon; .cache_evictions: swept over-cap
  sensor.qmeta.cache_entries gauge: resolutions currently cached
  par.shard_backlog          gauge: records queued at the last shard
                             drain barrier (watchdog rules on runaway)
  bench.ingest.*             perf_snapshot ingest throughput gauges
                             (records/sec, fast path vs BTree reference)
  bench.ingest.scaling.*     sharded ingest rps at 1/2/4/8 lanes and
                             parallel efficiency (milli, 4 lanes)
  bench.ml.*                 perf_snapshot ML gauges: forest/SVM fit rps
                             (fast vs reference) and forest predict rps
                             (lane-blocked vs row batch vs per-row)
  bench.sensor.*             perf_snapshot sensor gauges: static-feature
                             classification rps (packed matcher vs
                             byte-at-a-time reference) and extraction
                             pairs/sec (bench.sensor.extract_fast_rps /
                             extract_reference_rps / extract_warm_cache_rps
                             — qmeta plane, cold and warm cache, vs the
                             per-pair reference)
  ml.trees_built, ml.fits    learner effort
  classify.models_trained    windows with a trainable label set
  core.curate/.retrain/.classify   per-stage latency histograms (ns)
  par.tasks/.steals          work-stealing pool tasks run and steals
  par.threads                gauge: resolved pool size
  par.inflight               gauge: tasks inside active parallel regions
  par.run                    latency histogram per parallel region (ns)
  log.error/.warn/.info/.debug     logger event counts
  telemetry.log.suppressed   log lines dropped by per-site rate limits
  telemetry.log.suppressed.<site>  the same drops broken out by the
                             rate-limited site (log target)
  prof.ticks/.threads/.torn  sampling-profiler progress gauges
  prof.samples.busy          samples that caught a stage on-stack
  bench.prof.overhead_pct.*  profiler overhead vs the ingest benchmark
                             (.disabled and .hz99, integer percent)
  live.ticks                 gauge: samples taken by the live sampler
  live.health.status         gauge: watchdog state (0 ok, 1 degraded,
                             2 critical; also served at /health)
  live.health.transitions    aggregate watchdog state changes
  live.ledger.imbalances     gauge: live conservation violations

histograms report count, sum, max, p50, p90, p99 in nanoseconds
(quantiles are interpolated within log-spaced buckets, ≤12.5% error).
live monitoring: add --serve <ip:port> to any command to scrape
/metrics, /snapshot, /health, /trace/summary, /buildinfo, and — with
--profile — /profile/flame (folded stacks for inferno/speedscope),
/profile/top, and /profile/alloc while it runs; follow along with
`backscatter stats --watch <ip:port>` (rates) or
`backscatter stats --top <ip:port>` (profiler's ranked stages).

profiling: add --profile <hz> to any command to sample every worker's
span stack at <hz> Hz (99 is a good default) and attribute exact
per-stage wall time and allocation pressure; a ranked-stage table,
the ns-per-record cost table (joined against the conservation
ledger), and the allocation profile print on exit.
logging: set BS_LOG=off|error|warn|info|debug (default info) and
BS_LOG_FORMAT=text|json (default text; json emits one object per
line: ts_ms, level, target, message, kvs).

tracing — every subcommand also accepts --trace <path> to record a
causal trace (hierarchical spans with worker-thread parentage, a
flight-recorder ring buffer, and per-stage drop-accounting ledger
cells) and write Chrome trace-event JSON on success; load it in
Perfetto or chrome://tracing, or summarize it with
`backscatter trace --file <path>`. Ledger conservation
(records in == sum of outcome buckets, per stage and window) is
verified at exit; imbalances are logged as warnings.

parallelism: --threads <N> or BS_THREADS (default all cores);
results are bit-identical at any thread count."
            );
            Ok(())
        }
        Some("json") => {
            dns_backscatter::telemetry::enable();
            print!("{}", dns_backscatter::telemetry::snapshot_json());
            Ok(())
        }
        Some("prometheus") => {
            dns_backscatter::telemetry::enable();
            print!("{}", dns_backscatter::telemetry::snapshot_prometheus());
            Ok(())
        }
        Some(other) => Err(format!("unknown --format {other:?} (help|json|prometheus)")),
    }
}

fn usage() {
    eprintln!(
        "backscatter — DNS backscatter sensing, classification, analysis

commands:
  simulate  --dataset <name> [--scale smoke|standard] [--seed N] --out <log.tsv>
            simulate a paper-dataset replica and write its query log
  features  --log <log.tsv> [--min-queriers N] [--window-start S --window-end S]
            extract per-originator feature vectors as TSV
  classify  --log <log.tsv> --dataset <name> [--scale …] [--seed N]
            curate labels from the generating scenario, train RF, classify
  classify  --log <log.tsv> --model <model.bsf> [--min-queriers N]
            classify with a saved model (no scenario needed)
  train     --log <log.tsv> --dataset <name> [--scale …] [--seed N] --save <model.bsf>
            curate, train a random forest, and save it
  report    --log <log.tsv> --dataset <name> [--scale …] [--seed N]
            classify all windows and print a situation report
  capture   --log <log.tsv> --out <file.bscap>   convert TSV → packet capture
  capture   --capture <file.bscap> --out <log.tsv>   and back
  stream    --log <log.tsv> [--window S] [--max-originators N]
            [--shards N] [--pace RPS] [--linger S] [--extract M]
            replay a log through the streaming sensor as a live
            process; --shards fans ingest across N hash-sharded lanes
            (0 = auto from BS_THREADS/cores, output identical at any
            count), --pace throttles to records/sec, --linger keeps
            the process (and any --serve endpoint) up after ingest,
            --extract M additionally extracts features per window
            (analyzability threshold M unique queriers) through the
            cross-window querier metadata cache
  stats     [--format help|json|prometheus]
            describe the telemetry metrics, or dump a snapshot
  stats     --watch <ip:port> [--iterations N] [--interval-ms M]
            poll a --serve endpoint's /snapshot and print live rates
  stats     --top <ip:port> [--iterations N] [--interval-ms M]
            poll a --serve endpoint's /profile/top and print the
            sampling profiler's ranked-stage view
  stats     --fetch <ip:port> [--path /route]
            one raw GET against a --serve endpoint, body to stdout
  trace     --file <trace.json>
            inspect a --trace output: phases, lanes, hottest spans

every command accepts --serve <ip:port> to expose live observability
over HTTP while it runs (/metrics Prometheus text, /snapshot JSON
with windowed rates, /health with watchdog status, /trace/summary,
/buildinfo, /profile/flame|top|alloc; port 0 picks an ephemeral
port, printed on stdout), --profile <hz> to sample span stacks at
<hz> Hz and print ranked stages, per-stage ns-per-record costs, and
allocation pressure on exit, --metrics <path> to write a JSON
telemetry snapshot (counters, gauges, latency histograms) on
success, --trace <path> to record a causal trace and write Chrome
trace-event JSON (open in Perfetto / chrome://tracing), and
--threads <N> to size the worker pool (default: BS_THREADS env, else
all cores; results are bit-identical at any thread count); set
BS_LOG=off|error|warn|info|debug to control log verbosity and
BS_LOG_FORMAT=json for one JSON object per log line.

datasets: JP-ditl, B-post-ditl, B-long, B-multi-year, M-ditl, M-ditl-2015, M-sampled"
    );
}

type Flags = BTreeMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got {a:?}"));
        };
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn dataset_id(flags: &Flags) -> Result<DatasetId, String> {
    let name = flags.get("dataset").ok_or("--dataset is required")?;
    DatasetId::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name:?}"))
}

fn scale(flags: &Flags) -> Result<Scale, String> {
    match flags.get("scale").map(String::as_str) {
        None | Some("smoke") => Ok(Scale::smoke()),
        Some("standard") => Ok(Scale::standard()),
        Some(other) => Err(format!("unknown scale {other:?} (smoke|standard)")),
    }
}

fn seed(flags: &Flags) -> Result<u64, String> {
    match flags.get("seed") {
        None => Ok(1),
        Some(s) => s.parse().map_err(|_| format!("bad --seed {s:?}")),
    }
}

fn load_log(flags: &Flags) -> Result<QueryLog, String> {
    let path = flags.get("log").ok_or("--log is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    QueryLog::from_tsv(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let id = dataset_id(flags)?;
    let out = flags.get("out").ok_or("--out is required")?;
    let world = World::new(WorldConfig::default());
    let spec = DatasetSpec::paper(id, scale(flags)?, seed(flags)?);
    dns_backscatter::telemetry::info!("cli", "simulating {}…", id.name());
    let built = build_dataset(&world, spec);
    dns_backscatter::telemetry::info!(
        "cli",
        "{} contacts → {} reverse queries at {}",
        built.stats.contacts,
        built.log.len(),
        built.spec.authority
    );
    std::fs::write(out, built.log.to_tsv()).map_err(|e| format!("write {out}: {e}"))?;
    dns_backscatter::telemetry::info!("cli", "wrote {out}");
    Ok(())
}

fn cmd_features(flags: &Flags) -> Result<(), String> {
    let log = load_log(flags)?;
    let world = World::new(WorldConfig::default());
    let min_queriers = flags
        .get("min-queriers")
        .map(|s| s.parse().map_err(|_| format!("bad --min-queriers {s:?}")))
        .transpose()?
        .unwrap_or(20);
    let start = SimTime(
        flags
            .get("window-start")
            .map(|s| s.parse().map_err(|_| "bad --window-start".to_string()))
            .transpose()?
            .unwrap_or(0),
    );
    let end = SimTime(
        flags
            .get("window-end")
            .map(|s| s.parse().map_err(|_| "bad --window-end".to_string()))
            .transpose()?
            .unwrap_or(u64::MAX),
    );
    let feats =
        extract_features(&log, &world, start, end, &FeatureConfig { min_queriers, top_n: None });
    // Header, then one row per originator.
    let names = dns_backscatter::sensor::FeatureVector::names();
    println!("originator\tqueriers\tqueries\t{}", names.join("\t"));
    for f in feats {
        let values: Vec<String> = f.features.to_vec().iter().map(|v| format!("{v:.5}")).collect();
        println!("{}\t{}\t{}\t{}", f.originator, f.querier_count, f.query_count, values.join("\t"));
    }
    Ok(())
}

fn curated_training_data(
    world: &World,
    built: &dns_backscatter::datasets::BuiltDataset,
) -> dns_backscatter::ml::Dataset {
    use dns_backscatter::classify::pipeline::feature_map;
    use dns_backscatter::classify::{ClassifierPipeline, LabeledSet};
    let window = built.windows()[0];
    let feats =
        built.features_for_window(world, window, &FeatureConfig { min_queriers: 10, top_n: None });
    let truth = built.truth_for_window(window);
    let labeled = LabeledSet::curate(&truth, &feats, 140);
    ClassifierPipeline::to_dataset(&labeled, &feature_map(&feats))
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    use dns_backscatter::ml::{Forest, ForestParams};
    let log = load_log(flags)?;
    let id = dataset_id(flags)?;
    let save = flags.get("save").ok_or("--save is required")?;
    let world = World::new(WorldConfig::default());
    let spec = DatasetSpec::paper(id, scale(flags)?, seed(flags)?);
    let built = dns_backscatter::datasets::build::assemble_with_log(&world, spec, log);
    let data = curated_training_data(&world, &built);
    if data.is_empty() || data.present_classes().len() < 2 {
        return Err("not enough curated examples to train".into());
    }
    dns_backscatter::telemetry::info!(
        "cli",
        "training a random forest";
        examples = data.len(),
        classes = data.present_classes().len(),
    );
    let forest = Forest::fit(&data, &ForestParams::default(), seed(flags)?);
    std::fs::write(save, forest.to_text()).map_err(|e| format!("write {save}: {e}"))?;
    dns_backscatter::telemetry::info!("cli", "saved {save}"; trees = forest.n_trees());
    Ok(())
}

fn cmd_classify_with_model(flags: &Flags) -> Result<(), String> {
    use dns_backscatter::ml::Forest;
    let log = load_log(flags)?;
    let model_path = flags.get("model").expect("checked by caller");
    let text =
        std::fs::read_to_string(model_path).map_err(|e| format!("read {model_path}: {e}"))?;
    let forest = Forest::from_text(&text).map_err(|e| format!("parse {model_path}: {e}"))?;
    let world = World::new(WorldConfig::default());
    let min_queriers = flags
        .get("min-queriers")
        .map(|s| s.parse().map_err(|_| format!("bad --min-queriers {s:?}")))
        .transpose()?
        .unwrap_or(10);
    let feats = extract_features(
        &log,
        &world,
        SimTime(0),
        SimTime(u64::MAX),
        &FeatureConfig { min_queriers, top_n: None },
    );
    println!("originator	queriers	class");
    for f in feats {
        let idx = forest.predict(&f.features.to_vec());
        let class = ApplicationClass::from_index(idx)
            .map(|c| c.name().to_string())
            .unwrap_or_else(|| format!("class-{idx}"));
        println!("{}	{}	{}", f.originator, f.querier_count, class);
    }
    Ok(())
}

fn cmd_classify(flags: &Flags) -> Result<(), String> {
    if flags.contains_key("model") {
        return cmd_classify_with_model(flags);
    }
    let log = load_log(flags)?;
    let id = dataset_id(flags)?;
    let world = World::new(WorldConfig::default());
    let spec = DatasetSpec::paper(id, scale(flags)?, seed(flags)?);
    let built = dns_backscatter::datasets::build::assemble_with_log(&world, spec, log);
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    let run = pipeline.run(&world, &built);
    dns_backscatter::telemetry::info!(
        "cli",
        "classification complete";
        labeled = run.labels.len(),
        windows = run.windows.len(),
    );
    println!("window\toriginator\tqueriers\tclass");
    for w in &run.windows {
        for e in &w.entries {
            println!("{}\t{}\t{}\t{}", w.window, e.originator, e.queriers, e.class);
        }
    }
    Ok(())
}

fn cmd_report(flags: &Flags) -> Result<(), String> {
    use dns_backscatter::analysis::render_report;
    let log = load_log(flags)?;
    let id = dataset_id(flags)?;
    let world = World::new(WorldConfig::default());
    let spec = DatasetSpec::paper(id, scale(flags)?, seed(flags)?);
    let built = dns_backscatter::datasets::build::assemble_with_log(&world, spec, log);
    let mut pipeline = DatasetPipeline::default();
    pipeline.feature_config.min_queriers = 10;
    let run = pipeline.run(&world, &built);
    print!("{}", render_report(&run.windows));
    Ok(())
}

fn cmd_capture(flags: &Flags) -> Result<(), String> {
    let out = flags.get("out").ok_or("--out is required")?;
    match (flags.get("log"), flags.get("capture")) {
        (Some(_), None) => {
            let log = load_log(flags)?;
            std::fs::write(out, write_capture(&log)).map_err(|e| format!("write {out}: {e}"))?;
            dns_backscatter::telemetry::info!(
                "cli",
                "wrote packet capture {out}";
                records = log.len(),
            );
            Ok(())
        }
        (None, Some(path)) => {
            let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
            let (log, stats) = read_capture(&bytes).map_err(|e| format!("parse {path}: {e}"))?;
            std::fs::write(out, log.to_tsv()).map_err(|e| format!("write {out}: {e}"))?;
            dns_backscatter::telemetry::info!(
                "cli",
                "decoded capture";
                frames = stats.frames,
                records = stats.records,
                undecodable = stats.undecodable,
                filtered = stats.filtered,
            );
            Ok(())
        }
        _ => Err("capture needs exactly one of --log (to encode) or --capture (to decode)".into()),
    }
}
