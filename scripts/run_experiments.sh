#!/bin/bash
# Regenerate every paper table/figure plus extensions and ablations.
# Outputs land in results/; expensive simulations cache in bench-cache/.
# Order matters only for speed: table3 builds and caches all datasets,
# so it runs first; table1 reports cached volumes, so it runs last.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
BINS="table3_accuracy fig3_static_features table2_dynamic_features table4_gini \
fig4_attenuation table5_class_counts table6_groundtruth fig5_benign_persistence \
fig6_malicious_persistence fig7_training_strategies fig8_consistency fig9_footprint \
fig10_topn_classes fig11_trends fig12_footprint_boxes fig13_example_scanners \
fig14_scan_blocks fig15_churn fig16_diurnal table7_8_top_originators \
ext_qname_minimization ext_per_class ext_curation_advisor ext_geography \
ablation_dedup ablation_threshold ablation_forest_size ablation_feature_matching \
ablation_fractions table1_datasets"
for bin in $BINS; do
  echo "=== running $bin"
  cargo run --release -p bench --bin "$bin" > "results/$bin.txt" 2> "results/$bin.log" || echo "FAILED: $bin"
done
echo ALL_DONE
