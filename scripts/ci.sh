#!/bin/bash
# The repo's tier-1 gate, runnable locally and in CI:
#   format check → lints as errors → release build → tests.
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check"
cargo fmt --all -- --check

echo "=== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo clippy bs-par (the parallelism layer, separately)"
cargo clippy -p bs-par --all-targets -- -D warnings

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test (sequential: BS_THREADS=1)"
BS_THREADS=1 cargo test -q

echo "=== cargo test (parallel: default thread count)"
cargo test -q

echo "=== ci: all green"
