#!/bin/bash
# The repo's tier-1 gate, runnable locally and in CI:
#   format check → lints as errors → release build → tests.
# Any step failing fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check"
cargo fmt --all -- --check

echo "=== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo clippy bs-par (the parallelism layer, separately)"
cargo clippy -p bs-par --all-targets -- -D warnings

echo "=== cargo clippy bs-trace (the tracing layer, separately)"
cargo clippy -p bs-trace --all-targets -- -D warnings

echo "=== cargo clippy bs-fastmap (the ingest hash engine, separately)"
cargo clippy -p bs-fastmap --all-targets -- -D warnings

echo "=== cargo clippy bs-mlcore (the ML fast-path core, separately)"
cargo clippy -p bs-mlcore --all-targets -- -D warnings

echo "=== cargo clippy bs-live (the live observability layer, separately)"
cargo clippy -p bs-live --all-targets -- -D warnings

echo "=== cargo clippy bs-sensor (the sensor + sharded streaming core, separately)"
cargo clippy -p bs-sensor --all-targets -- -D warnings

echo "=== cargo clippy bs-prof (the sampling profiler, separately)"
cargo clippy -p bs-prof --all-targets -- -D warnings

echo "=== cargo clippy bs-simd (the portable-lane core, separately)"
cargo clippy -p bs-simd --all-targets -- -D warnings

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test bs-trace (standalone, zero-dep)"
cargo test -q -p bs-trace

echo "=== cargo test bs-fastmap (standalone, zero-dep)"
cargo test -q -p bs-fastmap

echo "=== cargo test bs-simd (standalone, zero-dep)"
cargo test -q -p bs-simd

echo "=== cargo test bs-mlcore (standalone, zero-dep)"
cargo test -q -p bs-mlcore

echo "=== cargo test bs-live (the live observability layer)"
cargo test -q -p bs-live

echo "=== cargo test bs-prof (sampler, cost attribution, counting allocator)"
cargo test -q -p bs-prof

echo "=== ML fast-path equivalence (sequential: BS_THREADS=1)"
BS_THREADS=1 cargo test -q -p bs-ml --test mlcore_equivalence

echo "=== ML fast-path equivalence (parallel: BS_THREADS=8)"
BS_THREADS=8 cargo test -q -p bs-ml --test mlcore_equivalence

echo "=== simd lane equivalence (sequential: BS_THREADS=1)"
BS_THREADS=1 cargo test -q --test simd_equivalence

echo "=== simd lane equivalence (parallel: BS_THREADS=8)"
BS_THREADS=8 cargo test -q --test simd_equivalence

echo "=== shard equivalence (sequential: BS_THREADS=1)"
BS_THREADS=1 cargo test -q -p bs-sensor --test shard_equivalence

echo "=== shard equivalence (parallel: BS_THREADS=8)"
BS_THREADS=8 cargo test -q -p bs-sensor --test shard_equivalence

echo "=== qmeta extraction equivalence (sequential: BS_THREADS=1)"
BS_THREADS=1 cargo test -q -p bs-sensor --test qmeta_equivalence

echo "=== qmeta extraction equivalence (parallel: BS_THREADS=8)"
BS_THREADS=8 cargo test -q -p bs-sensor --test qmeta_equivalence

echo "=== cargo test (sequential: BS_THREADS=1)"
BS_THREADS=1 cargo test -q

echo "=== cargo test (parallel: default thread count)"
cargo test -q

echo "=== ingest bench smoke (fast vs reference, one pass per body)"
cargo bench -q -p bench --bench ingest -- --test >/dev/null

echo "=== ml bench smoke (columnar vs reference, one pass per body)"
cargo bench -q -p bench --bench ml -- --test >/dev/null

echo "=== extract bench smoke (qmeta plane vs reference, one pass per body)"
cargo bench -q -p bench --bench extract -- --test >/dev/null

echo "=== CLI smoke: --trace writes parseable Chrome trace JSON"
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
target/release/backscatter simulate --dataset JP-ditl --scale smoke \
    --seed 5 --out "$trace_tmp/jp.tsv" --trace "$trace_tmp/trace.json"
# `backscatter trace` parses the file with the bs-trace JSON parser
# and fails on anything that is not a trace-event document. Capture
# rather than pipe into grep -q: -q closes the pipe on first match
# and the writer would die on EPIPE.
trace_out="$(target/release/backscatter trace --file "$trace_tmp/trace.json")"
grep -q "cli.simulate" <<<"$trace_out"

echo "=== CLI smoke: classify end-to-end through the lane-blocked predict path"
# The full pipeline (curate → train → classify_all) serves every
# prediction through Forest::predict_all's bs-simd lane descent.
classify_out="$(target/release/backscatter classify --log "$trace_tmp/jp.tsv" \
    --dataset JP-ditl --scale smoke --seed 5)"
grep -q "originator" <<<"$classify_out"

echo "=== CLI smoke: features runs through the qmeta metadata plane"
# `backscatter features` now extracts via the interned querier-metadata
# table; the dynamic columns prove the full fast path ran end-to-end.
features_out="$(target/release/backscatter features --log "$trace_tmp/jp.tsv")"
grep -q "dyn:queries-per-querier" <<<"$features_out"

echo "=== CLI smoke: stream --extract reuses the cross-window qmeta cache"
# Per-window extraction inside the streaming driver, sharing one
# QuerierMetaCache across windows; the summary line reports its
# hit/miss telemetry.
extract_out="$(target/release/backscatter stream --log "$trace_tmp/jp.tsv" \
    --window 600 --extract 1)"
grep -q "analyzable" <<<"$extract_out"
grep -q "qmeta cache:" <<<"$extract_out"

echo "=== CLI smoke: sharded stream --serve answers a live scrape"
target/release/backscatter stream --log "$trace_tmp/jp.tsv" --window 600 \
    --shards 4 --serve 127.0.0.1:0 --linger 6 > "$trace_tmp/stream.out" &
stream_pid=$!
# The binary prints the ephemeral port before ingest starts.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^live: listening on //p' "$trace_tmp/stream.out" | head -n1)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "stream --serve never announced its address"; exit 1; }
# One scrape through the same client path users get: stats --watch.
# Capture rather than pipe into grep -q: -q closes the pipe on first
# match and the writer would die on EPIPE.
watch_out="$(target/release/backscatter stats --watch "$addr" --iterations 1)"
grep -q "health=" <<<"$watch_out"
wait "$stream_pid"

echo "=== CLI smoke: stream --profile 99 --serve exposes a live flamegraph"
target/release/backscatter stream --log "$trace_tmp/jp.tsv" --window 600 \
    --profile 99 --serve 127.0.0.1:0 --linger 8 > "$trace_tmp/prof.out" &
prof_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^live: listening on //p' "$trace_tmp/prof.out" | head -n1)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "stream --profile --serve never announced its address"; exit 1; }
# The sampler needs a few ticks before the first busy sample lands, so
# poll /profile/flame (through the CLI's own fetch path) until it is
# non-empty rather than racing the first window flush.
flame=""
for _ in $(seq 1 60); do
    flame="$(target/release/backscatter stats --fetch "$addr" --path /profile/flame || true)"
    [ -n "$flame" ] && break
    sleep 0.1
done
[ -n "$flame" ] || { echo "/profile/flame stayed empty under --profile 99"; exit 1; }
# Folded collapsed-stack syntax: every line is `frame(;frame)* count`,
# directly consumable by inferno / flamegraph.pl / speedscope.
bad="$(grep -Ev '^[^ ;]+(;[^ ;]+)* [0-9]+$' <<<"$flame" || true)"
[ -z "$bad" ] || { echo "malformed folded stack lines:"; echo "$bad"; exit 1; }
top_json="$(target/release/backscatter stats --fetch "$addr" --path /profile/top)"
grep -q '"stages"' <<<"$top_json"
alloc_json="$(target/release/backscatter stats --fetch "$addr" --path /profile/alloc)"
grep -q '"stages"' <<<"$alloc_json"
# The human view over the same endpoint: stats --top.
top_view="$(target/release/backscatter stats --top "$addr" --iterations 1)"
grep -q "profiler:" <<<"$top_view"
wait "$prof_pid"

echo "=== perf gate: fresh run vs committed BENCH_pipeline.json"
# Baselines of -1 are placeholders (record, don't gate); the gate
# still runs the full measurement suite, its equivalence asserts, and
# the profiler-overhead budget asserts (idle and 99 Hz sampling).
cargo run --release -q -p bench --bin perf_gate

echo "=== ci: all green"
