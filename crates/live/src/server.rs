//! A minimal std-only HTTP/1.1 scrape endpoint.
//!
//! This is deliberately not a web framework: one accept loop, one
//! request per connection (`Connection: close`), four GET routes.
//! It exists so an operator (or a Prometheus scraper, or `stats
//! --watch`) can look inside a long-running sensor process without
//! adding a single external dependency:
//!
//! | route            | body                                     |
//! |------------------|------------------------------------------|
//! | `/metrics`       | Prometheus text format (global registry) |
//! | `/snapshot`      | JSON: registry + derived windowed rates  |
//! | `/health`        | JSON watchdog status; **503** when critical |
//! | `/trace/summary` | JSON conservation-ledger summary         |
//! | `/buildinfo`     | JSON build provenance + uptime           |
//! | `/profile/flame` | folded collapsed stacks (inferno format) |
//! | `/profile/top`   | JSON ranked per-stage sample counts      |
//! | `/profile/alloc` | JSON per-stage allocation count/bytes    |
//!
//! The listener runs nonblocking with a short poll sleep so shutdown
//! (a shared stop flag) is observed within ~25 ms; requests are read
//! with a timeout and capped, so a stuck client can't wedge the loop.

use crate::{Health, LiveLoop};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest request head we accept (method line + headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Accept-loop poll interval while idle.
const POLL_SLEEP: Duration = Duration::from_millis(25);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// A running scrape server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop and joins the
/// thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0: the OS picks the port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and wait for the server thread to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9100`, or `:0` for an ephemeral port)
/// and serve scrapes of `live` on a background thread.
pub fn spawn(addr: &str, live: Arc<Mutex<LiveLoop>>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("bs-live-http".into())
        .spawn(move || accept_loop(listener, live, stop_flag))?;
    Ok(ServerHandle { addr: bound, stop, thread: Some(thread) })
}

fn accept_loop(listener: TcpListener, live: Arc<Mutex<LiveLoop>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One short-lived request; handle it inline. A slow
                // client only costs IO_TIMEOUT, not a wedged server.
                let _ = handle_connection(stream, &live);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_SLEEP);
            }
            Err(_) => std::thread::sleep(POLL_SLEEP),
        }
    }
}

fn handle_connection(mut stream: TcpStream, live: &Arc<Mutex<LiveLoop>>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the end of the request head; the routes are all GET,
    // so the body (if any) is ignored.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, 431, "Request Header Fields Too Large", "text/plain", "");
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }

    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, 405, "Method Not Allowed", "text/plain", "GET only\n");
    }
    // Strip any query string; the routes take no parameters.
    let route = path.split('?').next().unwrap_or(path);

    match route {
        "/metrics" => {
            let body = bs_telemetry::snapshot_prometheus();
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body)
        }
        "/snapshot" => {
            let body = lock_live(live).snapshot_json();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/health" => {
            let guard = lock_live(live);
            let (status, reason) = match guard.health() {
                Health::Critical => (503, "Service Unavailable"),
                _ => (200, "OK"),
            };
            let body = guard.watchdog().health_json();
            drop(guard);
            respond(&mut stream, status, reason, "application/json", &body)
        }
        "/trace/summary" => {
            let body = trace_summary_json();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/buildinfo" => {
            let body = crate::buildinfo_json();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/profile/flame" => {
            // Empty until the sampler has run (started via --profile);
            // an empty 200 keeps scrapers simple.
            let body = bs_prof::folded();
            respond(&mut stream, 200, "OK", "text/plain", &body)
        }
        "/profile/top" => {
            let body = bs_prof::top_json();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/profile/alloc" => {
            let body = bs_prof::alloc::alloc_json();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn lock_live(live: &Arc<Mutex<LiveLoop>>) -> std::sync::MutexGuard<'_, LiveLoop> {
    // A poisoned lock means a panic elsewhere; serving the last
    // consistent view beats taking the scrape endpoint down with it.
    live.lock().unwrap_or_else(|p| p.into_inner())
}

/// The `/trace/summary` body: conservation-ledger totals plus the
/// human-readable table (escaped into one JSON string).
fn trace_summary_json() -> String {
    let imbalances = bs_trace::ledger::verify();
    let cells = bs_trace::ledger::snapshot();
    format!(
        "{{\n  \"tracing_enabled\": {},\n  \"profiling_enabled\": {},\n  \"ledger_cells\": {},\n  \"imbalances\": {},\n  \"dropped_events\": {},\n  \"table\": \"{}\"\n}}",
        bs_trace::is_enabled(),
        bs_trace::is_profiling(),
        cells.len(),
        imbalances.len(),
        bs_trace::dropped(),
        crate::json_escape(&bs_trace::ledger::render())
    )
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A tiny blocking HTTP GET client for tests and `stats --watch`:
/// returns `(status_code, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LiveConfig;

    fn live_loop() -> Arc<Mutex<LiveLoop>> {
        Arc::new(Mutex::new(LiveLoop::new(LiveConfig::default())))
    }

    #[test]
    fn serves_all_routes_and_404s_unknown_paths() {
        let live = live_loop();
        {
            let mut l = live.lock().unwrap();
            let mk = |records: u64| {
                let r = bs_telemetry::Registry::new();
                r.counter("sensor.stream.records").add(records);
                r.snapshot()
            };
            l.tick(0, mk(0));
            l.tick(1_000, mk(500));
        }
        let server = spawn("127.0.0.1:0", Arc::clone(&live)).expect("bind ephemeral");
        let addr = server.addr();

        let (code, metrics) = http_get(addr, "/metrics").expect("scrape /metrics");
        assert_eq!(code, 200);
        // The registry is global; this process has other tests writing
        // to it, so just require well-formed Prometheus text.
        for line in metrics.lines().filter(|l| !l.is_empty()) {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "bad exposition line: {line:?}"
            );
        }

        let (code, snap) = http_get(addr, "/snapshot").expect("scrape /snapshot");
        assert_eq!(code, 200);
        let v = bs_trace::json::parse(&snap).expect("snapshot is valid JSON");
        assert!(v.get("rates").is_some(), "derived rates present:\n{snap}");

        let (code, health) = http_get(addr, "/health").expect("scrape /health");
        assert_eq!(code, 200, "healthy process answers 200");
        let v = bs_trace::json::parse(&health).expect("health is valid JSON");
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));

        let (code, trace) = http_get(addr, "/trace/summary").expect("scrape /trace/summary");
        assert_eq!(code, 200);
        let v = bs_trace::json::parse(&trace).expect("trace summary is valid JSON");
        assert!(v.get("imbalances").is_some());
        assert!(v.get("profiling_enabled").is_some());

        let (code, bi) = http_get(addr, "/buildinfo").expect("scrape /buildinfo");
        assert_eq!(code, 200);
        let v = bs_trace::json::parse(&bi).expect("buildinfo is valid JSON");
        assert!(v.get("git_hash").and_then(|g| g.as_str()).is_some());
        assert!(v.get("uptime_secs").and_then(|u| u.as_f64()).is_some());

        let (code, top) = http_get(addr, "/profile/top").expect("scrape /profile/top");
        assert_eq!(code, 200);
        let v = bs_trace::json::parse(&top).expect("profile top is valid JSON");
        assert!(v.get("stages").is_some());

        let (code, alloc) = http_get(addr, "/profile/alloc").expect("scrape /profile/alloc");
        assert_eq!(code, 200);
        let v = bs_trace::json::parse(&alloc).expect("profile alloc is valid JSON");
        assert!(v.get("stages").is_some());

        // /profile/flame is folded text (possibly empty when the
        // sampler never ran): every non-empty line must be
        // `frame[;frame...] <count>`.
        let (code, flame) = http_get(addr, "/profile/flame").expect("scrape /profile/flame");
        assert_eq!(code, 200);
        for line in flame.lines().filter(|l| !l.is_empty()) {
            let (path, count) = line.rsplit_once(' ').expect("folded line");
            assert!(!path.is_empty());
            assert!(count.parse::<u64>().is_ok(), "bad folded count in {line:?}");
        }

        let (code, _) = http_get(addr, "/nope").expect("scrape unknown");
        assert_eq!(code, 404);

        server.shutdown();
        // The port is released: a fresh bind to the same addr works.
        let relisten = TcpListener::bind(addr);
        assert!(relisten.is_ok(), "server thread did not release the port");
    }

    #[test]
    fn critical_health_answers_503() {
        let live = live_loop();
        {
            let mut l = live.lock().unwrap();
            let mk = |imbalances: i64| {
                let r = bs_telemetry::Registry::new();
                r.gauge("live.ledger.imbalances").set(imbalances);
                r.snapshot()
            };
            l.tick(0, mk(0));
            l.tick(1_000, mk(3));
        }
        assert_eq!(live.lock().unwrap().health(), Health::Critical);
        let server = spawn("127.0.0.1:0", Arc::clone(&live)).expect("bind");
        let (code, body) = http_get(server.addr(), "/health").expect("scrape");
        assert_eq!(code, 503, "critical process answers 503:\n{body}");
        let v = bs_trace::json::parse(&body).expect("valid JSON");
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("critical"));
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let live = live_loop();
        let server = spawn("127.0.0.1:0", live).expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 405"), "got: {raw}");
    }
}
