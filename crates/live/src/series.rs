//! The time-series engine: windowed rates, EWMA smoothing, and
//! quantile extraction over a bounded history of registry snapshots.
//!
//! [`Sampler::tick`] appends one timestamped [`Snapshot`] of the
//! metrics registry to a fixed-size [`Ring`](crate::ring::Ring).
//! Derived series are computed *on read*, from the raw history:
//!
//! * **windowed rates** — for a counter `c` and window `w`,
//!   `(c(now) - c(now - w)) / elapsed`: the average per-second rate over
//!   the most recent `w` of history (1 s / 10 s / 60 s by convention);
//! * **EWMA** — an exponentially weighted moving average of the
//!   per-tick rate, updated at sample time (`alpha` configurable), the
//!   smoothed signal the watchdog prefers for noisy counters;
//! * **quantiles** — p50/p90/p99 straight from the log-bucketed
//!   histogram snapshots ([`bs_telemetry::Histogram::quantile`]).
//!
//! Ticks are driven either by a wall-clock thread (the live server) or
//! manually with explicit timestamps (tests, simulation) — the engine
//! itself never reads a clock, which is what makes the windowed-rate
//! math deterministic under test.

use crate::ring::Ring;
use bs_telemetry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SeriesConfig {
    /// Nominal tick interval in milliseconds (the wall-clock driver's
    /// period; manual ticks may use any spacing).
    pub tick_ms: u64,
    /// Samples retained (history length = `capacity × tick_ms`).
    pub capacity: usize,
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest
    /// per-tick rate.
    pub ewma_alpha: f64,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        // 120 samples at 1 s cover the 60 s window twice over.
        SeriesConfig { tick_ms: 1_000, capacity: 120, ewma_alpha: 0.3 }
    }
}

/// One timestamped registry snapshot.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Sample time in milliseconds (monotonic, caller-defined origin).
    pub at_ms: u64,
    /// The registry at that instant.
    pub snapshot: Snapshot,
}

/// The windowed view of one counter, as exposed on `/snapshot`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterRates {
    /// Cumulative value at the latest sample.
    pub total: u64,
    /// Average per-second rate over the last ~1 s of history.
    pub r1s: f64,
    /// Average per-second rate over the last ~10 s of history.
    pub r10s: f64,
    /// Average per-second rate over the last ~60 s of history.
    pub r60s: f64,
    /// EWMA-smoothed per-tick rate (per second).
    pub ewma: f64,
}

/// Shard load balance derived from the `sensor.shard.<i>.ingested`
/// counters: how evenly the hash partition spreads live traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSkew {
    /// Shard lanes observed (counters present in the latest sample).
    pub lanes: usize,
    /// The busiest lane's ingest rate over the window (records/s).
    pub max_rps: f64,
    /// Mean per-lane ingest rate over the window (records/s).
    pub mean_rps: f64,
    /// `max / mean` — `1.0` is perfectly even; `0.0` when idle.
    pub skew: f64,
}

/// The time-series engine over the metrics registry.
#[derive(Debug)]
pub struct Sampler {
    config: SeriesConfig,
    ring: Ring<Sample>,
    /// Counter name → EWMA of the per-tick rate (per second).
    ewma: BTreeMap<String, f64>,
    ticks: u64,
}

impl Sampler {
    /// A sampler with no history yet.
    pub fn new(config: SeriesConfig) -> Self {
        assert!(config.tick_ms > 0, "tick_ms must be positive");
        assert!(
            config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1]"
        );
        let capacity = config.capacity.max(2);
        Sampler { ring: Ring::new(capacity), config, ewma: BTreeMap::new(), ticks: 0 }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &SeriesConfig {
        &self.config
    }

    /// Ticks recorded so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Append one sample at `at_ms` (must be ≥ the previous tick's
    /// time; equal timestamps replace nothing and are simply stored).
    /// Updates every counter's EWMA from the per-tick delta.
    pub fn tick(&mut self, at_ms: u64, snapshot: Snapshot) {
        if let Some(prev) = self.ring.latest() {
            let dt_s = (at_ms.saturating_sub(prev.at_ms)) as f64 / 1_000.0;
            if dt_s > 0.0 {
                let alpha = self.config.ewma_alpha;
                for (name, &now) in &snapshot.counters {
                    let before = prev.snapshot.counters.get(name).copied().unwrap_or(0);
                    // A counter that went backwards was reset; treat the
                    // current value as the whole delta.
                    let delta = if now >= before { now - before } else { now };
                    let rate = delta as f64 / dt_s;
                    let e = self.ewma.entry(name.clone()).or_insert(rate);
                    *e = alpha * rate + (1.0 - alpha) * *e;
                }
            }
        }
        self.ring.push(Sample { at_ms, snapshot });
        self.ticks += 1;
    }

    /// Sample the process-global registry at wall-clock `now` —
    /// convenience for the live driver thread.
    pub fn tick_global(&mut self, at_ms: u64) {
        self.tick(at_ms, bs_telemetry::snapshot());
    }

    /// The newest sample, if any tick has happened.
    pub fn latest(&self) -> Option<&Sample> {
        self.ring.latest()
    }

    /// Average per-second rate of counter `name` over the trailing
    /// `window_ms` of history. Returns `None` until two samples span
    /// any time, `Some(0.0)` for unknown counters.
    pub fn rate(&self, name: &str, window_ms: u64) -> Option<f64> {
        let newest = self.ring.latest()?;
        let cutoff = newest.at_ms.saturating_sub(window_ms);
        // Oldest retained sample at or after the cutoff; fall back to
        // the oldest we have (the window is clamped to history).
        let base = self
            .ring
            .iter()
            .find(|s| s.at_ms >= cutoff)
            .or_else(|| self.ring.oldest())
            .filter(|s| s.at_ms < newest.at_ms)?;
        let dt_s = (newest.at_ms - base.at_ms) as f64 / 1_000.0;
        let now = newest.snapshot.counters.get(name).copied().unwrap_or(0);
        let before = base.snapshot.counters.get(name).copied().unwrap_or(0);
        let delta = if now >= before { now - before } else { now };
        Some(delta as f64 / dt_s)
    }

    /// EWMA-smoothed per-second rate of counter `name` (`None` before
    /// the second sample).
    pub fn ewma_rate(&self, name: &str) -> Option<f64> {
        self.ewma.get(name).copied()
    }

    /// The ratio `rate(numerator) / rate(denominator)` over
    /// `window_ms`; 0 when the denominator rate is 0.
    pub fn rate_ratio(&self, numerator: &str, denominator: &str, window_ms: u64) -> Option<f64> {
        let num = self.rate(numerator, window_ms)?;
        let den = self.rate(denominator, window_ms)?;
        Some(if den > 0.0 { num / den } else { 0.0 })
    }

    /// The latest value of gauge `name` (0 when unknown).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        let newest = self.ring.latest()?;
        Some(newest.snapshot.gauges.get(name).copied().unwrap_or(0))
    }

    /// The per-shard load view over `window_ms`, derived from the
    /// `sensor.shard.<i>.ingested` counters the sharded streaming
    /// sensor emits at each window flush. `None` until a sample shows
    /// at least one shard counter (i.e. the process runs unsharded).
    pub fn shard_skew(&self, window_ms: u64) -> Option<ShardSkew> {
        let newest = self.ring.latest()?;
        let lanes: Vec<&String> = newest
            .snapshot
            .counters
            .keys()
            .filter(|n| n.starts_with("sensor.shard.") && n.ends_with(".ingested"))
            .collect();
        if lanes.is_empty() {
            return None;
        }
        let mut max_rps = 0.0f64;
        let mut sum = 0.0f64;
        for name in &lanes {
            let r = self.rate(name, window_ms)?;
            max_rps = max_rps.max(r);
            sum += r;
        }
        let mean_rps = sum / lanes.len() as f64;
        let skew = if mean_rps > 0.0 { max_rps / mean_rps } else { 0.0 };
        Some(ShardSkew { lanes: lanes.len(), max_rps, mean_rps, skew })
    }

    /// The full windowed view of every counter at the newest sample.
    pub fn counter_rates(&self) -> BTreeMap<String, CounterRates> {
        let Some(newest) = self.ring.latest() else {
            return BTreeMap::new();
        };
        newest
            .snapshot
            .counters
            .iter()
            .map(|(name, &total)| {
                let r = CounterRates {
                    total,
                    r1s: self.rate(name, 1_000).unwrap_or(0.0),
                    r10s: self.rate(name, 10_000).unwrap_or(0.0),
                    r60s: self.rate(name, 60_000).unwrap_or(0.0),
                    ewma: self.ewma_rate(name).unwrap_or(0.0),
                };
                (name.clone(), r)
            })
            .collect()
    }

    /// The derived-rates object for `/snapshot`:
    ///
    /// ```json
    /// { "sensor.stream.records": { "total": 9000, "r1s": 120.0,
    ///     "r10s": 118.5, "r60s": 97.2, "ewma": 119.1 }, … }
    /// ```
    pub fn rates_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, r) in self.counter_rates() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{ \"total\": {}, \"r1s\": {:.3}, \"r10s\": {:.3}, \"r60s\": {:.3}, \"ewma\": {:.3} }}",
                crate::json_escape(name.as_str()),
                r.total,
                r.r1s,
                r.r10s,
                r.r60s,
                r.ewma
            );
        }
        out.push_str(if first { "}" } else { "\n  }" });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_telemetry::Registry;

    fn snap_with(counter: &str, v: u64) -> Snapshot {
        let r = Registry::new();
        r.counter(counter).add(v);
        r.snapshot()
    }

    #[test]
    fn windowed_rates_recover_counter_deltas_exactly() {
        let mut s = Sampler::new(SeriesConfig { tick_ms: 1_000, capacity: 120, ewma_alpha: 0.5 });
        // 100 records/s for 70 seconds of manual ticks.
        for t in 0..=70u64 {
            s.tick(t * 1_000, snap_with("x.records", t * 100));
        }
        assert_eq!(s.ticks(), 71);
        assert!((s.rate("x.records", 1_000).unwrap() - 100.0).abs() < 1e-9);
        assert!((s.rate("x.records", 10_000).unwrap() - 100.0).abs() < 1e-9);
        assert!((s.rate("x.records", 60_000).unwrap() - 100.0).abs() < 1e-9);
        // Constant rate: the EWMA converges to it.
        assert!((s.ewma_rate("x.records").unwrap() - 100.0).abs() < 1e-6);
        // The latest cumulative value is the post-hoc truth.
        assert_eq!(s.latest().unwrap().snapshot.counters["x.records"], 7_000);
    }

    #[test]
    fn short_window_sees_a_burst_long_window_averages_it() {
        let mut s = Sampler::new(SeriesConfig::default());
        // 60 s idle, then a 1000-records burst in the last second.
        for t in 0..=59u64 {
            s.tick(t * 1_000, snap_with("x.records", 0));
        }
        s.tick(60_000, snap_with("x.records", 1_000));
        let r1 = s.rate("x.records", 1_000).unwrap();
        let r60 = s.rate("x.records", 60_000).unwrap();
        assert!((r1 - 1_000.0).abs() < 1e-9, "1 s window sees the burst: {r1}");
        assert!((r60 - 1_000.0 / 60.0).abs() < 1e-6, "60 s window averages it: {r60}");
        assert!(s.ewma_rate("x.records").unwrap() > r60, "EWMA reacts faster than the mean");
    }

    #[test]
    fn window_clamps_to_available_history() {
        let mut s = Sampler::new(SeriesConfig { tick_ms: 1_000, capacity: 4, ewma_alpha: 0.3 });
        for t in 0..10u64 {
            s.tick(t * 1_000, snap_with("c", t * 10));
        }
        // Only 4 samples retained (t=6..9): the "60 s" rate is really
        // the 3 s rate, still 10/s.
        assert!((s.rate("c", 60_000).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn counter_reset_does_not_produce_negative_rates() {
        let mut s = Sampler::new(SeriesConfig::default());
        s.tick(0, snap_with("c", 1_000));
        s.tick(1_000, snap_with("c", 5));
        let r = s.rate("c", 1_000).unwrap();
        assert!(r >= 0.0, "reset must not go negative: {r}");
        assert!((r - 5.0).abs() < 1e-9, "post-reset value is the delta");
    }

    #[test]
    fn no_rate_before_two_samples() {
        let mut s = Sampler::new(SeriesConfig::default());
        assert!(s.rate("c", 1_000).is_none());
        s.tick(0, snap_with("c", 1));
        assert!(s.rate("c", 1_000).is_none(), "one sample spans no time");
        assert!(s.ewma_rate("c").is_none());
    }

    #[test]
    fn rate_ratio_handles_zero_denominator() {
        let mut s = Sampler::new(SeriesConfig::default());
        let mk = |bad: u64, total: u64| {
            let r = Registry::new();
            r.counter("bad").add(bad);
            r.counter("total").add(total);
            r.snapshot()
        };
        s.tick(0, mk(0, 0));
        s.tick(1_000, mk(5, 100));
        assert!((s.rate_ratio("bad", "total", 10_000).unwrap() - 0.05).abs() < 1e-9);
        s.tick(2_000, mk(5, 100));
        // Quiet second: denominator rate 0 over the last 1 s.
        assert_eq!(s.rate_ratio("bad", "total", 1_000), Some(0.0));
    }

    #[test]
    fn rates_json_is_parseable() {
        let mut s = Sampler::new(SeriesConfig::default());
        s.tick(0, snap_with("a\"weird\\name", 0));
        s.tick(1_000, snap_with("a\"weird\\name", 42));
        let json = s.rates_json();
        let v = bs_trace::json::parse(&json).expect("rates JSON parses");
        let r = v.get("a\"weird\\name").expect("escaped counter present");
        assert_eq!(r.get("total").and_then(|t| t.as_f64()), Some(42.0));
    }
}
