//! The health watchdog: declarative threshold rules over derived
//! series that flip a tri-state health status and drive graceful
//! degradation in the streaming sensor.
//!
//! Each [`Rule`] watches one [`Signal`] — a windowed counter rate, a
//! ratio of two counter rates, or a raw gauge value — and trips at a
//! [`Severity`] after the threshold holds for `trip_ticks` consecutive
//! evaluations (hysteresis on the way in) and clears after
//! `clear_ticks` quiet evaluations (hysteresis on the way out), so a
//! single noisy sample neither flips nor restores health.
//!
//! The aggregate [`Health`] is the worst severity among tripped rules.
//! Transitions emit structured `BS_LOG` events and bump the
//! `live.health.transitions` counter; the current status is published
//! through a shared [`HealthState`] — a plain `Arc<AtomicU8>` — that
//! the streaming sensor polls to tighten its probation admission
//! filter under storm pressure without depending on this crate.

use crate::series::Sampler;
use bs_telemetry::{counter_add, log_emit, Level};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Aggregate health, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// All rules quiet.
    Ok,
    /// At least one `Degraded` rule tripped.
    Degraded,
    /// At least one `Critical` rule tripped.
    Critical,
}

impl Health {
    /// Stable lowercase name (`ok` / `degraded` / `critical`).
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Critical => "critical",
        }
    }

    /// The wire encoding stored in a [`HealthState`].
    pub fn as_u8(self) -> u8 {
        match self {
            Health::Ok => 0,
            Health::Degraded => 1,
            Health::Critical => 2,
        }
    }

    /// Decode a [`HealthState`] value (unknown codes clamp to
    /// `Critical`: fail safe).
    pub fn from_u8(v: u8) -> Health {
        match v {
            0 => Health::Ok,
            1 => Health::Degraded,
            _ => Health::Critical,
        }
    }
}

/// The shared health cell consumers poll: `0` ok, `1` degraded,
/// `2` critical. A plain atomic so downstream crates (the streaming
/// sensor) need no dependency on bs-live.
pub type HealthState = Arc<AtomicU8>;

/// A fresh [`HealthState`] starting at `Ok`.
pub fn health_state() -> HealthState {
    Arc::new(AtomicU8::new(Health::Ok.as_u8()))
}

/// Severity a tripped rule contributes to the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Load is abnormal; shed gracefully.
    Degraded,
    /// The process is in trouble; scrape endpoints report 503.
    Critical,
}

impl Severity {
    fn health(self) -> Health {
        match self {
            Severity::Degraded => Health::Degraded,
            Severity::Critical => Health::Critical,
        }
    }
}

/// The derived series a rule thresholds on.
#[derive(Debug, Clone)]
pub enum Signal {
    /// Per-second rate of a counter over `window_ms`.
    CounterRate {
        /// Counter name in the registry.
        name: String,
        /// Trailing window in milliseconds.
        window_ms: u64,
    },
    /// `rate(numerator) / rate(denominator)` over `window_ms`.
    RateRatio {
        /// Numerator counter name.
        numerator: String,
        /// Denominator counter name.
        denominator: String,
        /// Trailing window in milliseconds.
        window_ms: u64,
    },
    /// Latest value of a gauge.
    GaugeValue {
        /// Gauge name in the registry.
        name: String,
    },
}

impl Signal {
    /// Evaluate the signal against the sampler's history (`None`
    /// before enough samples exist).
    fn value(&self, sampler: &Sampler) -> Option<f64> {
        match self {
            Signal::CounterRate { name, window_ms } => sampler.rate(name, *window_ms),
            Signal::RateRatio { numerator, denominator, window_ms } => {
                sampler.rate_ratio(numerator, denominator, *window_ms)
            }
            Signal::GaugeValue { name } => sampler.gauge(name).map(|g| g as f64),
        }
    }
}

/// One declarative threshold rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable identifier, used in log events and `/health` output.
    pub name: String,
    /// The series this rule watches.
    pub signal: Signal,
    /// Trips when the signal exceeds this value.
    pub threshold: f64,
    /// Severity contributed while tripped.
    pub severity: Severity,
    /// Consecutive over-threshold evaluations required to trip.
    pub trip_ticks: u32,
    /// Consecutive under-threshold evaluations required to clear.
    pub clear_ticks: u32,
}

impl Rule {
    /// A rule tripping after 3 hot ticks and clearing after 5 quiet
    /// ones — deliberate defaults: slow to alarm, slower to stand down.
    pub fn new(
        name: impl Into<String>,
        signal: Signal,
        threshold: f64,
        severity: Severity,
    ) -> Self {
        Rule { name: name.into(), signal, threshold, severity, trip_ticks: 3, clear_ticks: 5 }
    }

    /// Override the trip/clear hysteresis.
    pub fn with_hysteresis(mut self, trip_ticks: u32, clear_ticks: u32) -> Self {
        self.trip_ticks = trip_ticks.max(1);
        self.clear_ticks = clear_ticks.max(1);
        self
    }
}

/// Live trip-state for one rule.
#[derive(Debug, Clone)]
pub struct RuleStatus {
    /// The rule definition.
    pub rule: Rule,
    /// Whether the rule is currently tripped.
    pub tripped: bool,
    /// Last evaluated signal value (`None` before enough history).
    pub last_value: Option<f64>,
    hot_streak: u32,
    quiet_streak: u32,
}

/// The watchdog: evaluates every rule once per tick and folds the
/// results into an aggregate [`Health`].
#[derive(Debug)]
pub struct Watchdog {
    rules: Vec<RuleStatus>,
    health: Health,
    state: HealthState,
    transitions: u64,
}

impl Watchdog {
    /// A watchdog over `rules`, publishing into `state`.
    pub fn new(rules: Vec<Rule>, state: HealthState) -> Self {
        let rules = rules
            .into_iter()
            .map(|rule| RuleStatus {
                rule,
                tripped: false,
                last_value: None,
                hot_streak: 0,
                quiet_streak: 0,
            })
            .collect();
        state.store(Health::Ok.as_u8(), Ordering::Relaxed);
        Watchdog { rules, health: Health::Ok, state, transitions: 0 }
    }

    /// The sensor-facing rules for the streaming pipeline. Thresholds
    /// are deliberately loose — they mark *storms*, not busy periods:
    ///
    /// * eviction rate (10 s) above `evict_per_s` → degraded;
    /// * probation resets (10 s) above `resets_per_s` → degraded;
    /// * out-of-order fraction (10 s) above 20% → degraded;
    /// * any ledger conservation imbalance → critical;
    /// * par pool backlog (`par.inflight`) above 10× threads → degraded;
    /// * shard queue backlog (`par.shard_backlog`) above
    ///   `shard_backlog` records parked at a drain barrier → degraded.
    ///
    /// The eviction and probation-reset counters are rollups summed
    /// across shard lanes, so the same two rules cover the single and
    /// sharded sensors; a trip tightens probation decay on *every*
    /// shard through the broadcast pressure hook.
    pub fn default_rules(
        evict_per_s: f64,
        resets_per_s: f64,
        par_backlog: f64,
        shard_backlog: f64,
    ) -> Vec<Rule> {
        vec![
            Rule::new(
                "eviction_storm",
                Signal::CounterRate { name: "sensor.stream.evictions".into(), window_ms: 10_000 },
                evict_per_s,
                Severity::Degraded,
            ),
            Rule::new(
                "probation_thrash",
                Signal::CounterRate {
                    name: "sensor.stream.probation_resets".into(),
                    window_ms: 10_000,
                },
                resets_per_s,
                Severity::Degraded,
            ),
            Rule::new(
                "out_of_order",
                Signal::RateRatio {
                    numerator: "sensor.stream.out_of_order".into(),
                    denominator: "sensor.stream.records".into(),
                    window_ms: 10_000,
                },
                0.2,
                Severity::Degraded,
            ),
            Rule::new(
                "ledger_imbalance",
                Signal::GaugeValue { name: "live.ledger.imbalances".into() },
                0.0,
                Severity::Critical,
            )
            .with_hysteresis(1, 1),
            Rule::new(
                "par_backlog",
                Signal::GaugeValue { name: "par.inflight".into() },
                par_backlog,
                Severity::Degraded,
            ),
            Rule::new(
                "shard_backlog",
                Signal::GaugeValue { name: "par.shard_backlog".into() },
                shard_backlog,
                Severity::Degraded,
            ),
        ]
    }

    /// Current aggregate health.
    pub fn health(&self) -> Health {
        self.health
    }

    /// The shared state cell consumers poll.
    pub fn state(&self) -> HealthState {
        Arc::clone(&self.state)
    }

    /// Health transitions observed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Per-rule status, for `/health`.
    pub fn rules(&self) -> &[RuleStatus] {
        &self.rules
    }

    /// Evaluate every rule against the sampler's current history,
    /// update the aggregate, publish it, and log transitions.
    pub fn evaluate(&mut self, sampler: &Sampler) -> Health {
        for rs in &mut self.rules {
            let value = rs.rule.signal.value(sampler);
            rs.last_value = value;
            let Some(v) = value else { continue };
            if v > rs.rule.threshold {
                rs.hot_streak += 1;
                rs.quiet_streak = 0;
                if !rs.tripped && rs.hot_streak >= rs.rule.trip_ticks {
                    rs.tripped = true;
                    log_emit(
                        Level::Warn,
                        "live.watchdog",
                        "rule tripped",
                        &[
                            ("rule", rs.rule.name.clone()),
                            ("value", format!("{v:.3}")),
                            ("threshold", format!("{:.3}", rs.rule.threshold)),
                        ],
                    );
                }
            } else {
                rs.quiet_streak += 1;
                rs.hot_streak = 0;
                if rs.tripped && rs.quiet_streak >= rs.rule.clear_ticks {
                    rs.tripped = false;
                    log_emit(
                        Level::Info,
                        "live.watchdog",
                        "rule cleared",
                        &[("rule", rs.rule.name.clone()), ("value", format!("{v:.3}"))],
                    );
                }
            }
        }

        let next = self
            .rules
            .iter()
            .filter(|rs| rs.tripped)
            .map(|rs| rs.rule.severity.health())
            .max()
            .unwrap_or(Health::Ok);
        if next != self.health {
            self.transitions += 1;
            counter_add("live.health.transitions", 1);
            let level = if next == Health::Ok { Level::Info } else { Level::Warn };
            log_emit(
                level,
                "live.watchdog",
                "health transition",
                &[("from", self.health.as_str().to_string()), ("to", next.as_str().to_string())],
            );
            self.health = next;
            self.state.store(next.as_u8(), Ordering::Relaxed);
        }
        self.health
    }

    /// The `/health` JSON body: aggregate status plus per-rule detail.
    pub fn health_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"status\": \"{}\",\n  \"transitions\": {},\n  \"rules\": [",
            self.health.as_str(),
            self.transitions
        );
        for (i, rs) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let value = match rs.last_value {
                Some(v) => format!("{v:.3}"),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\n    {{ \"rule\": \"{}\", \"tripped\": {}, \"value\": {}, \"threshold\": {:.3}, \"severity\": \"{}\" }}",
                crate::json_escape(&rs.rule.name),
                rs.tripped,
                value,
                rs.rule.threshold,
                match rs.rule.severity {
                    Severity::Degraded => "degraded",
                    Severity::Critical => "critical",
                }
            );
        }
        out.push_str(if self.rules.is_empty() { "]\n}" } else { "\n  ]\n}" });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesConfig;
    use bs_telemetry::Registry;

    fn sampler() -> Sampler {
        Sampler::new(SeriesConfig::default())
    }

    fn snap(evictions: u64, records: u64) -> bs_telemetry::Snapshot {
        let r = Registry::new();
        r.counter("sensor.stream.evictions").add(evictions);
        r.counter("sensor.stream.records").add(records);
        r.snapshot()
    }

    fn storm_rule() -> Rule {
        Rule::new(
            "eviction_storm",
            Signal::CounterRate { name: "sensor.stream.evictions".into(), window_ms: 10_000 },
            100.0,
            Severity::Degraded,
        )
    }

    #[test]
    fn watchdog_trips_under_storm_and_recovers() {
        let state = health_state();
        let mut wd = Watchdog::new(vec![storm_rule()], Arc::clone(&state));
        let mut s = sampler();

        // Quiet baseline: 10/s evictions for 5 ticks.
        for t in 0..5u64 {
            s.tick(t * 1_000, snap(t * 10, t * 1_000));
            assert_eq!(wd.evaluate(&s), Health::Ok);
        }
        // Storm: 500/s. Hysteresis holds Ok for trip_ticks-1 hot ticks.
        let (base_e, base_r) = (40, 4_000);
        for k in 1..=2u64 {
            s.tick((4 + k) * 1_000, snap(base_e + k * 500, base_r + k * 1_000));
            assert_eq!(wd.evaluate(&s), Health::Ok, "not yet: {k} hot ticks");
        }
        s.tick(7_000, snap(base_e + 1_500, base_r + 3_000));
        assert_eq!(wd.evaluate(&s), Health::Degraded, "trips on the 3rd hot tick");
        assert_eq!(state.load(Ordering::Relaxed), 1, "shared state published");
        assert_eq!(wd.transitions(), 1);

        // Storm subsides; the 10 s window still sees it for a while,
        // then clear_ticks quiet evaluations restore health.
        let peak = base_e + 1_500;
        let mut t = 8_000u64;
        let mut cleared_at = None;
        for k in 0..30u64 {
            s.tick(t, snap(peak + k, base_r + 3_000 + k * 1_000));
            if wd.evaluate(&s) == Health::Ok {
                cleared_at = Some(t);
                break;
            }
            t += 1_000;
        }
        assert!(cleared_at.is_some(), "watchdog never recovered");
        assert_eq!(state.load(Ordering::Relaxed), 0);
        assert_eq!(wd.transitions(), 2, "one trip, one recovery");
    }

    #[test]
    fn single_spike_does_not_flip_health() {
        let mut wd = Watchdog::new(vec![storm_rule()], health_state());
        let mut s = sampler();
        s.tick(0, snap(0, 0));
        // One 1 s spike of 250 evictions: 250/s instantaneous, well
        // over the 100/s threshold…
        s.tick(1_000, snap(250, 1_000));
        assert_eq!(wd.evaluate(&s), Health::Ok);
        // …but the widening window dilutes it below threshold after
        // two hot ticks, one short of trip_ticks.
        for t in 2..20u64 {
            s.tick(t * 1_000, snap(250 + t, t * 1_000));
            wd.evaluate(&s);
        }
        assert_eq!(wd.health(), Health::Ok, "one spike must not trip");
        assert_eq!(wd.transitions(), 0);
    }

    #[test]
    fn critical_rule_dominates_degraded() {
        let critical = Rule::new(
            "ledger_imbalance",
            Signal::GaugeValue { name: "live.ledger.imbalances".into() },
            0.0,
            Severity::Critical,
        )
        .with_hysteresis(1, 1);
        let state = health_state();
        let mut wd = Watchdog::new(vec![storm_rule(), critical], Arc::clone(&state));
        let mut s = sampler();
        let mk = |imbalances: i64| {
            let r = Registry::new();
            r.gauge("live.ledger.imbalances").set(imbalances);
            r.snapshot()
        };
        s.tick(0, mk(0));
        assert_eq!(wd.evaluate(&s), Health::Ok);
        s.tick(1_000, mk(2));
        assert_eq!(wd.evaluate(&s), Health::Critical, "imbalance trips immediately");
        assert_eq!(state.load(Ordering::Relaxed), 2);
        assert_eq!(Health::from_u8(2), Health::Critical);
        s.tick(2_000, mk(0));
        assert_eq!(wd.evaluate(&s), Health::Ok, "clears as soon as the books balance");
    }

    #[test]
    fn health_json_is_parseable_and_complete() {
        let mut wd =
            Watchdog::new(Watchdog::default_rules(1_000.0, 50.0, 64.0, 100_000.0), health_state());
        let mut s = sampler();
        s.tick(0, snap(0, 0));
        s.tick(1_000, snap(10, 1_000));
        wd.evaluate(&s);
        let json = wd.health_json();
        let v = bs_trace::json::parse(&json).expect("health JSON parses");
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
        let rules = v.get("rules").and_then(|r| r.as_array()).expect("rules array");
        assert_eq!(rules.len(), 6, "all six default rules reported");
        let names: Vec<&str> =
            rules.iter().filter_map(|r| r.get("rule").and_then(|n| n.as_str())).collect();
        for expect in [
            "eviction_storm",
            "probation_thrash",
            "out_of_order",
            "ledger_imbalance",
            "par_backlog",
            "shard_backlog",
        ] {
            assert!(names.contains(&expect), "missing rule {expect}: {names:?}");
        }
    }
}
