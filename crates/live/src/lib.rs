//! `bs-live` — runtime observability for a long-running sensor.
//!
//! The paper's system is a network observer that must stay up (and
//! stay trustworthy) through scanning storms, eviction pressure, and
//! diurnal load swings. `bs-telemetry` answers "what happened over the
//! whole run"; this crate answers "what is happening *right now*":
//!
//! * [`series::Sampler`] — a fixed-size ring of registry snapshots
//!   taken on a configurable tick, exposing windowed per-second rates
//!   (1 s / 10 s / 60 s), EWMA smoothing, and histogram quantiles;
//! * [`server`] — a std-only HTTP/1.1 scrape endpoint (`/metrics`,
//!   `/snapshot`, `/health`, `/trace/summary`);
//! * [`watchdog::Watchdog`] — declarative threshold rules over the
//!   derived series that flip a tri-state [`Health`] and publish it
//!   through a shared [`HealthState`] atomic, which the streaming
//!   sensor polls to tighten probation admission under storm pressure.
//!
//! The composition is [`LiveLoop`]: one sampler plus one watchdog,
//! ticked either manually with explicit timestamps (deterministic
//! tests, simulations) or by [`serve`], which drives it from a
//! wall-clock thread next to the HTTP server.
//!
//! ```
//! use bs_live::{LiveConfig, LiveLoop};
//!
//! let mut live = LiveLoop::new(LiveConfig::default());
//! let reg = bs_telemetry::Registry::new();
//! reg.counter("demo.records").add(0);
//! live.tick(0, reg.snapshot());
//! reg.counter("demo.records").add(150);
//! live.tick(1_000, reg.snapshot());
//! assert_eq!(live.sampler().rate("demo.records", 1_000), Some(150.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod series;
pub mod server;
pub mod watchdog;

pub use ring::Ring;
pub use series::{CounterRates, Sample, Sampler, SeriesConfig, ShardSkew};
pub use server::{http_get, spawn as spawn_server, ServerHandle};
pub use watchdog::{health_state, Health, HealthState, Rule, Severity, Signal, Watchdog};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Escape a string for embedding in a JSON string literal (same rules
/// as the bs-telemetry exporter: quotes, backslashes, control chars).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Process start anchor for the `/buildinfo` uptime field, pinned the
/// first time anyone asks (LiveLoop creation touches it, so in
/// practice it anchors when the live stack comes up).
fn process_origin() -> Instant {
    static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// The `/buildinfo` body: build provenance (git hash, rustc version,
/// cargo profile — baked in by `build.rs`, each `"unknown"` when not
/// determinable at compile time) plus process uptime.
pub fn buildinfo_json() -> String {
    format!(
        "{{\n  \"git_hash\": \"{}\",\n  \"rustc\": \"{}\",\n  \"profile\": \"{}\",\n  \"uptime_secs\": {}\n}}",
        json_escape(env!("BS_GIT_HASH")),
        json_escape(env!("BS_RUSTC_VERSION")),
        json_escape(env!("BS_BUILD_PROFILE")),
        process_origin().elapsed().as_secs()
    )
}

/// Configuration for a [`LiveLoop`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Sampling cadence and history length.
    pub series: SeriesConfig,
    /// Watchdog rules (see [`Watchdog::default_rules`]).
    pub rules: Vec<Rule>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        // Storm thresholds for the default single-process sensor:
        // sustained evictions above 2000/s or probation resets above
        // 100/s mean the working set no longer fits; a par backlog of
        // 256 queued tasks means workers are drowning; 100k records
        // parked at a shard drain barrier means the lanes have stopped
        // keeping up with the reader (the BSP design bounds backlog at
        // lanes × queue cap, so this only trips on misconfiguration).
        LiveConfig {
            series: SeriesConfig::default(),
            rules: Watchdog::default_rules(2_000.0, 100.0, 256.0, 100_000.0),
        }
    }
}

/// One sampler plus one watchdog: the state behind every scrape route.
#[derive(Debug)]
pub struct LiveLoop {
    sampler: Sampler,
    watchdog: Watchdog,
}

impl LiveLoop {
    /// A live loop with no history, health `Ok`. Enables the global
    /// telemetry registry — a live view of a disabled registry is
    /// all zeros, which is never what an operator asked for.
    pub fn new(config: LiveConfig) -> Self {
        bs_telemetry::enable();
        process_origin();
        let state = health_state();
        LiveLoop {
            sampler: Sampler::new(config.series),
            watchdog: Watchdog::new(config.rules, state),
        }
    }

    /// Record one sample at `at_ms` and run the watchdog over the
    /// updated history. Publishes `live.ticks` and
    /// `live.health.status` gauges into the global registry so
    /// `/metrics` exposes them alongside everything else.
    pub fn tick(&mut self, at_ms: u64, snapshot: bs_telemetry::Snapshot) -> Health {
        self.sampler.tick(at_ms, snapshot);
        let health = self.watchdog.evaluate(&self.sampler);
        bs_telemetry::gauge_set("live.ticks", self.sampler.ticks() as i64);
        bs_telemetry::gauge_set("live.health.status", health.as_u8() as i64);
        health
    }

    /// Sample the global registry at `at_ms`, refreshing the
    /// `live.ledger.imbalances` gauge first so the conservation rule
    /// sees the current ledger state in the same sample.
    pub fn tick_global(&mut self, at_ms: u64) -> Health {
        let imbalances = bs_trace::ledger::verify().len();
        bs_telemetry::gauge_set("live.ledger.imbalances", imbalances as i64);
        self.tick(at_ms, bs_telemetry::snapshot())
    }

    /// Current aggregate health.
    pub fn health(&self) -> Health {
        self.watchdog.health()
    }

    /// The shared health cell (`0` ok / `1` degraded / `2` critical)
    /// for graceful-degradation consumers like the streaming sensor.
    pub fn health_state(&self) -> HealthState {
        self.watchdog.state()
    }

    /// The time-series engine.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The watchdog.
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// The `/snapshot` body: timestamp, health, build provenance,
    /// derived per-counter rates, the shard-skew view (null when
    /// running unsharded), and the full registry snapshot (counters,
    /// gauges, histograms with p50/p90/p99).
    pub fn snapshot_json(&self) -> String {
        let (at_ms, registry_json) = match self.sampler.latest() {
            Some(s) => (s.at_ms as i64, s.snapshot.to_json()),
            None => (-1, "{}".to_string()),
        };
        // Indent the embedded registry document two spaces so the
        // composite stays readable under `curl | less`.
        let registry_json = registry_json.replace('\n', "\n  ");
        let shard_skew = match self.sampler.shard_skew(10_000) {
            Some(s) => format!(
                "{{ \"lanes\": {}, \"max_rps\": {:.3}, \"mean_rps\": {:.3}, \"skew\": {:.3} }}",
                s.lanes, s.max_rps, s.mean_rps, s.skew
            ),
            None => "null".to_string(),
        };
        let buildinfo = buildinfo_json().replace('\n', "\n  ");
        format!(
            "{{\n  \"at_ms\": {},\n  \"health\": \"{}\",\n  \"ticks\": {},\n  \"buildinfo\": {},\n  \"rates\": {},\n  \"shard_skew\": {},\n  \"registry\": {}\n}}",
            at_ms,
            self.health().as_str(),
            self.sampler.ticks(),
            buildinfo,
            self.sampler.rates_json(),
            shard_skew,
            registry_json
        )
    }
}

/// A running live stack: HTTP server plus wall-clock sampling thread.
/// Dropping the handle (or calling [`LiveHandle::shutdown`]) stops
/// both.
#[derive(Debug)]
pub struct LiveHandle {
    server: Option<ServerHandle>,
    live: Arc<Mutex<LiveLoop>>,
    stop: Arc<AtomicBool>,
    sampler_thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveHandle {
    /// The bound scrape address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.as_ref().expect("server runs until shutdown").addr()
    }

    /// The shared health cell for degradation consumers.
    pub fn health_state(&self) -> HealthState {
        lock(&self.live).health_state()
    }

    /// Force one sample right now (between wall-clock ticks) so
    /// scrapes immediately after a burst of work see it.
    pub fn sample_now(&self, at_ms: u64) {
        lock(&self.live).tick_global(at_ms);
    }

    /// The shared live loop (scrape routes lock it per request).
    pub fn live(&self) -> Arc<Mutex<LiveLoop>> {
        Arc::clone(&self.live)
    }

    /// Stop sampling, stop the HTTP server, join both threads.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.sampler_thread.take() {
            let _ = t.join();
        }
        if let Some(s) = self.server.take() {
            s.shutdown();
        }
    }
}

impl Drop for LiveHandle {
    fn drop(&mut self) {
        self.stop_all();
    }
}

fn lock(live: &Arc<Mutex<LiveLoop>>) -> std::sync::MutexGuard<'_, LiveLoop> {
    live.lock().unwrap_or_else(|p| p.into_inner())
}

/// Start the full live stack: bind `addr`, spawn the scrape server,
/// and drive [`LiveLoop::tick_global`] from a wall-clock thread every
/// `config.series.tick_ms` milliseconds.
pub fn serve(addr: &str, config: LiveConfig) -> std::io::Result<LiveHandle> {
    let tick_ms = config.series.tick_ms;
    let live = Arc::new(Mutex::new(LiveLoop::new(config)));

    // Take the first sample immediately: rates need two points, so the
    // sooner the origin exists the sooner scrapes mean something.
    let origin = Instant::now();
    lock(&live).tick_global(0);

    let server = server::spawn(addr, Arc::clone(&live))?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let sampler_live = Arc::clone(&live);
    let sampler_thread =
        std::thread::Builder::new().name("bs-live-sampler".into()).spawn(move || {
            // Sleep in short slices so shutdown latency stays well
            // under one tick even for multi-second cadences.
            let slice = Duration::from_millis(tick_ms.clamp(1, 50));
            let mut next = origin + Duration::from_millis(tick_ms);
            while !stop_flag.load(Ordering::Relaxed) {
                if Instant::now() >= next {
                    let at_ms = origin.elapsed().as_millis() as u64;
                    lock(&sampler_live).tick_global(at_ms);
                    next += Duration::from_millis(tick_ms);
                }
                std::thread::sleep(slice);
            }
        })?;

    Ok(LiveHandle { server: Some(server), live, stop, sampler_thread: Some(sampler_thread) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_embeds_registry_rates_and_health() {
        let mut live = LiveLoop::new(LiveConfig::default());
        let mk = |records: u64| {
            let r = bs_telemetry::Registry::new();
            r.counter("t.records").add(records);
            r.histogram("t.lat").record(100);
            r.snapshot()
        };
        live.tick(0, mk(0));
        live.tick(1_000, mk(250));
        let json = live.snapshot_json();
        let v = bs_trace::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(v.get("health").and_then(|h| h.as_str()), Some("ok"));
        assert_eq!(v.get("at_ms").and_then(|t| t.as_f64()), Some(1_000.0));
        let bi = v.get("buildinfo").expect("buildinfo embedded in /snapshot");
        assert!(bi.get("git_hash").and_then(|g| g.as_str()).is_some());
        assert!(bi.get("uptime_secs").and_then(|u| u.as_f64()).is_some());
        let rate = v
            .get("rates")
            .and_then(|r| r.get("t.records"))
            .and_then(|r| r.get("r1s"))
            .and_then(|r| r.as_f64())
            .expect("derived rate present");
        assert!((rate - 250.0).abs() < 1e-6, "rate {rate}");
        let p50 = v
            .get("registry")
            .and_then(|r| r.get("histograms"))
            .and_then(|h| h.get("t.lat"))
            .and_then(|h| h.get("p50"))
            .expect("histogram quantiles in registry snapshot");
        assert!(p50.as_f64().is_some());
    }

    #[test]
    fn buildinfo_json_is_valid_and_complete() {
        let v = bs_trace::json::parse(&buildinfo_json()).expect("buildinfo parses");
        for key in ["git_hash", "rustc", "profile"] {
            let s = v.get(key).and_then(|x| x.as_str()).unwrap_or_else(|| panic!("{key} present"));
            assert!(!s.is_empty(), "{key} is never empty (falls back to \"unknown\")");
        }
        let up = v.get("uptime_secs").and_then(|u| u.as_f64()).expect("uptime_secs");
        assert!(up >= 0.0);
    }

    #[test]
    fn empty_loop_snapshot_is_still_valid_json() {
        let live = LiveLoop::new(LiveConfig::default());
        let v = bs_trace::json::parse(&live.snapshot_json()).expect("parses");
        assert_eq!(v.get("at_ms").and_then(|t| t.as_f64()), Some(-1.0));
        assert_eq!(v.get("ticks").and_then(|t| t.as_f64()), Some(0.0));
        assert!(
            matches!(v.get("shard_skew"), Some(bs_trace::json::Value::Null)),
            "no shard counters → shard_skew is null"
        );
    }

    #[test]
    fn snapshot_json_reports_shard_skew_when_sharded() {
        let mut live = LiveLoop::new(LiveConfig::default());
        let mk = |a: u64, b: u64| {
            let r = bs_telemetry::Registry::new();
            r.counter("sensor.shard.0.ingested").add(a);
            r.counter("sensor.shard.1.ingested").add(b);
            r.snapshot()
        };
        live.tick(0, mk(0, 0));
        live.tick(1_000, mk(300, 100));
        let v = bs_trace::json::parse(&live.snapshot_json()).expect("parses");
        let skew = v.get("shard_skew").expect("shard counters → skew object");
        assert_eq!(skew.get("lanes").and_then(|l| l.as_f64()), Some(2.0));
        let max = skew.get("max_rps").and_then(|m| m.as_f64()).expect("max_rps");
        assert!((max - 300.0).abs() < 1e-6, "busiest lane rate, got {max}");
        let mean = skew.get("mean_rps").and_then(|m| m.as_f64()).expect("mean_rps");
        assert!((mean - 200.0).abs() < 1e-6, "mean lane rate, got {mean}");
        let s = skew.get("skew").and_then(|m| m.as_f64()).expect("skew");
        assert!((s - 1.5).abs() < 1e-6, "max 300 / mean 200 → 1.5, got {s}");
    }

    #[test]
    fn serve_binds_samples_and_shuts_down() {
        bs_telemetry::enable();
        bs_telemetry::counter_add("live.test.work", 10);
        let handle = serve(
            "127.0.0.1:0",
            LiveConfig {
                series: SeriesConfig { tick_ms: 20, capacity: 64, ewma_alpha: 0.3 },
                ..LiveConfig::default()
            },
        )
        .expect("bind ephemeral");
        let addr = handle.addr();
        // Let the wall-clock sampler take a few real ticks.
        std::thread::sleep(Duration::from_millis(120));
        bs_telemetry::counter_add("live.test.work", 90);
        handle.sample_now(10_000);
        let (code, body) = http_get(addr, "/snapshot").expect("scrape");
        assert_eq!(code, 200);
        let v = bs_trace::json::parse(&body).expect("valid JSON");
        let ticks = v.get("ticks").and_then(|t| t.as_f64()).expect("ticks present");
        assert!(ticks >= 3.0, "sampler thread ticked: {ticks}");
        let total = v
            .get("rates")
            .and_then(|r| r.get("live.test.work"))
            .and_then(|r| r.get("total"))
            .and_then(|t| t.as_f64())
            .expect("counter visible");
        assert!(total >= 100.0, "live total {total}");
        handle.shutdown();
        assert!(std::net::TcpListener::bind(addr).is_ok(), "port released after shutdown");
    }
}
