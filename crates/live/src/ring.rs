//! A fixed-capacity ring buffer of time-series samples.
//!
//! The sampler keeps a bounded history of registry snapshots — enough
//! to answer "what happened over the last minute" — with O(1) push and
//! strictly bounded memory, no matter how long the process runs.

/// A fixed-capacity FIFO ring: pushing onto a full ring drops the
/// oldest element. Iteration runs oldest → newest.
#[derive(Debug)]
pub struct Ring<T> {
    buf: std::collections::VecDeque<T>,
    capacity: usize,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring { buf: std::collections::VecDeque::with_capacity(capacity), capacity }
    }

    /// Append `value`, evicting the oldest element when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The maximum number of elements the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The newest element, if any.
    pub fn latest(&self) -> Option<&T> {
        self.buf.back()
    }

    /// The oldest element, if any.
    pub fn oldest(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_when_full() {
        let mut r = Ring::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        let held: Vec<i32> = r.iter().copied().collect();
        assert_eq!(held, vec![2, 3, 4], "oldest elements dropped first");
        assert_eq!(r.oldest(), Some(&2));
        assert_eq!(r.latest(), Some(&4));
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut r = Ring::new(1);
        r.push("a");
        r.push("b");
        assert_eq!(r.len(), 1);
        assert_eq!(r.latest(), Some(&"b"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = Ring::<u8>::new(0);
    }
}
