//! Build-time provenance for the `/buildinfo` route: git hash, rustc
//! version, and cargo profile, baked in as env vars. Every probe
//! degrades to `"unknown"` — a tarball build without git (or an
//! unusual toolchain layout) must never fail to compile.

use std::process::Command;

fn probe(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim().to_string();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

fn main() {
    let git_hash =
        probe("git", &["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=BS_GIT_HASH={git_hash}");

    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let rustc_version = probe(&rustc, &["--version"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=BS_RUSTC_VERSION={rustc_version}");

    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".to_string());
    println!("cargo:rustc-env=BS_BUILD_PROFILE={profile}");

    // Rebuild when HEAD moves so the hash stays current.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=build.rs");
}
