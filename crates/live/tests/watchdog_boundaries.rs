//! Property tests for the watchdog's trip/clear hysteresis at exact
//! threshold boundaries. The contract under test, pinned against a
//! hand-rolled reference state machine:
//!
//! * a tick is *hot* only when `value > threshold` — equality is
//!   quiet, so a signal parked exactly on the line never alarms;
//! * a rule trips on the `trip_ticks`-th *consecutive* hot tick and
//!   not one tick earlier;
//! * a tripped rule clears on the `clear_ticks`-th consecutive quiet
//!   tick (`value <= threshold`) and not one earlier;
//! * inside the hysteresis band (hot and quiet ticks alternating)
//!   the state never flaps: streaks reset and no transition fires.

use bs_live::{health_state, Health, Rule, Sampler, SeriesConfig, Severity, Signal, Watchdog};
use bs_telemetry::Registry;

const GAUGE: &str = "test.watchdog.signal";
const THRESHOLD: f64 = 10.0;

fn rule(trip_ticks: u32, clear_ticks: u32) -> Rule {
    Rule::new(
        "boundary_probe",
        Signal::GaugeValue { name: GAUGE.into() },
        THRESHOLD,
        Severity::Degraded,
    )
    .with_hysteresis(trip_ticks, clear_ticks)
}

/// Feed one gauge value into a fresh snapshot and evaluate.
fn step(wd: &mut Watchdog, s: &mut Sampler, t_ms: &mut u64, value: i64) -> Health {
    let r = Registry::new();
    r.gauge(GAUGE).set(value);
    s.tick(*t_ms, r.snapshot());
    *t_ms += 1_000;
    wd.evaluate(s)
}

fn harness(trip_ticks: u32, clear_ticks: u32) -> (Watchdog, Sampler, u64) {
    let wd = Watchdog::new(vec![rule(trip_ticks, clear_ticks)], health_state());
    (wd, Sampler::new(SeriesConfig::default()), 0)
}

/// Reference implementation of the hysteresis contract, evolved in
/// lockstep with the real watchdog by the randomized test below.
struct Model {
    trip_ticks: u32,
    clear_ticks: u32,
    tripped: bool,
    hot: u32,
    quiet: u32,
}

impl Model {
    fn new(trip_ticks: u32, clear_ticks: u32) -> Self {
        Model { trip_ticks, clear_ticks, tripped: false, hot: 0, quiet: 0 }
    }

    fn step(&mut self, value: f64) -> bool {
        if value > THRESHOLD {
            self.hot += 1;
            self.quiet = 0;
            if !self.tripped && self.hot >= self.trip_ticks {
                self.tripped = true;
            }
        } else {
            self.quiet += 1;
            self.hot = 0;
            if self.tripped && self.quiet >= self.clear_ticks {
                self.tripped = false;
            }
        }
        self.tripped
    }
}

/// Tiny deterministic LCG so the property test needs no external
/// crates and every failure is reproducible from the printed seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[test]
fn value_exactly_at_threshold_never_counts_hot() {
    let (mut wd, mut s, mut t) = harness(1, 1);
    // Even with the most trigger-happy hysteresis (1/1), a signal
    // sitting exactly on the threshold is quiet: > is strict.
    for _ in 0..50 {
        assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64), Health::Ok);
    }
    assert_eq!(wd.transitions(), 0, "equality must never alarm");

    // One unit over the line trips immediately at 1/1…
    assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64 + 1), Health::Degraded);
    // …and falling back exactly onto the line counts quiet and clears.
    assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64), Health::Ok);
}

#[test]
fn trips_on_exactly_the_nth_consecutive_hot_tick() {
    for trip_ticks in 1..=6u32 {
        let (mut wd, mut s, mut t) = harness(trip_ticks, 1);
        for k in 1..trip_ticks {
            assert_eq!(
                step(&mut wd, &mut s, &mut t, THRESHOLD as i64 + 5),
                Health::Ok,
                "trip_ticks={trip_ticks}: still ok after {k} hot ticks"
            );
        }
        assert_eq!(
            step(&mut wd, &mut s, &mut t, THRESHOLD as i64 + 5),
            Health::Degraded,
            "trip_ticks={trip_ticks}: trips on hot tick #{trip_ticks}"
        );
        assert_eq!(wd.transitions(), 1);
    }
}

#[test]
fn clears_on_exactly_the_nth_consecutive_quiet_tick() {
    for clear_ticks in 1..=6u32 {
        let (mut wd, mut s, mut t) = harness(1, clear_ticks);
        assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64 + 5), Health::Degraded);
        for k in 1..clear_ticks {
            assert_eq!(
                step(&mut wd, &mut s, &mut t, THRESHOLD as i64 - 5),
                Health::Degraded,
                "clear_ticks={clear_ticks}: still tripped after {k} quiet ticks"
            );
        }
        assert_eq!(
            step(&mut wd, &mut s, &mut t, THRESHOLD as i64 - 5),
            Health::Ok,
            "clear_ticks={clear_ticks}: clears on quiet tick #{clear_ticks}"
        );
        assert_eq!(wd.transitions(), 2, "exactly one trip and one clear");
    }
}

#[test]
fn alternating_band_never_flaps() {
    // Untripped + alternation: hot streaks never reach trip_ticks=2.
    let (mut wd, mut s, mut t) = harness(2, 2);
    for _ in 0..40 {
        assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64 + 3), Health::Ok);
        assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64 - 3), Health::Ok);
    }
    assert_eq!(wd.transitions(), 0, "alternation below trip_ticks must not trip");

    // Tripped + alternation: quiet streaks never reach clear_ticks=2,
    // so the rule holds its alarm instead of flapping.
    let (mut wd, mut s, mut t) = harness(1, 2);
    assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64 + 3), Health::Degraded);
    for _ in 0..40 {
        assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64 - 3), Health::Degraded);
        assert_eq!(step(&mut wd, &mut s, &mut t, THRESHOLD as i64 + 3), Health::Degraded);
    }
    assert_eq!(wd.transitions(), 1, "alternation inside the band must not clear");
}

#[test]
fn randomized_sequences_match_the_reference_model() {
    // 64 seeded cases: random hysteresis in 1..=5, 300 ticks drawn
    // from {threshold-1, threshold, threshold+1} — the three values
    // that straddle the boundary — checked tick-by-tick against the
    // reference state machine.
    for case in 0..64u64 {
        let mut rng = Lcg(0x9E37_79B9_7F4A_7C15 ^ case.wrapping_mul(0x1234_5678_9ABC_DEF1));
        let trip_ticks = rng.pick(5) as u32 + 1;
        let clear_ticks = rng.pick(5) as u32 + 1;
        let (mut wd, mut s, mut t) = harness(trip_ticks, clear_ticks);
        let mut model = Model::new(trip_ticks, clear_ticks);
        let mut model_transitions = 0u64;
        let mut was = false;

        for tick in 0..300u32 {
            let v = THRESHOLD as i64 - 1 + rng.pick(3) as i64;
            let got = step(&mut wd, &mut s, &mut t, v);
            let want = model.step(v as f64);
            if want != was {
                model_transitions += 1;
                was = want;
            }
            assert_eq!(
                got == Health::Degraded,
                want,
                "case {case} (trip={trip_ticks} clear={clear_ticks}) tick {tick}: \
                 watchdog diverged from the reference model at value {v}"
            );
        }
        assert_eq!(
            wd.transitions(),
            model_transitions,
            "case {case}: transition count must match the model"
        );
    }
}
