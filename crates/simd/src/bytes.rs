//! 8-wide byte-block helpers for ASCII keyword matching.
//!
//! The static-feature classifier compares every dot-component of a
//! querier's reverse name against ~50 keywords, case-insensitively.
//! Done naively that is a byte-at-a-time `eq_ignore_ascii_case` per
//! keyword. The block form here does the case work **once** per
//! component — folding to lowercase in branchless 8-byte blocks — and
//! then each keyword comparison is a single masked `u64` equality on
//! the packed first eight bytes (plus a plain slice compare for the
//! rare longer keyword).
//!
//! Everything operates on ASCII only; DNS labels are validated ASCII
//! at construction (`bs_dns::Label`), so byte-wise folding is exact.

/// Branchless ASCII lowercase of one byte: adds `0x20` exactly when
/// the byte is `A..=Z`. The comparison compiles to a mask, not a
/// branch, so the per-block loop below vectorizes.
#[inline]
fn lower(b: u8) -> u8 {
    b + 0x20 * u8::from(b.wrapping_sub(b'A') < 26)
}

/// Fold `src` to ASCII lowercase into `dst` (same length), processing
/// full 8-byte blocks first and the tail after — the whole body is
/// branch-free per byte.
///
/// # Panics
/// If `dst` is shorter than `src`.
#[inline]
pub fn fold_ascii_lower(src: &[u8], dst: &mut [u8]) {
    let n = src.len();
    let (src8, src_tail) = src.split_at(n - n % 8);
    let dst8 = &mut dst[..n - n % 8];
    for (d, s) in dst8.chunks_exact_mut(8).zip(src8.chunks_exact(8)) {
        for l in 0..8 {
            d[l] = lower(s[l]);
        }
    }
    for (d, s) in dst[n - n % 8..n].iter_mut().zip(src_tail) {
        *d = lower(*s);
    }
}

/// Pack the first `min(8, bytes.len())` bytes little-endian into a
/// `u64`, zero-padded — one load's worth of prefix for masked
/// comparison against [`prefix_mask`]-masked keyword heads.
#[inline]
pub fn pack_prefix(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(buf)
}

/// The mask selecting the low `min(8, len)` bytes of a packed prefix:
/// `pack_prefix(a) & prefix_mask(k) == pack_prefix(&a[..k])` whenever
/// `a.len() >= k`.
#[inline]
pub fn prefix_mask(len: usize) -> u64 {
    if len >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * len)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_folds_only_uppercase() {
        for b in 0u8..=127 {
            let want = b.to_ascii_lowercase();
            assert_eq!(lower(b), want, "byte {b}");
        }
    }

    #[test]
    fn fold_handles_blocks_and_tails() {
        for len in 0..=24usize {
            let src: Vec<u8> = (0..len).map(|i| b"AbC-Z9xY"[i % 8]).collect();
            let mut dst = vec![0u8; len];
            fold_ascii_lower(&src, &mut dst);
            let want: Vec<u8> = src.iter().map(|b| b.to_ascii_lowercase()).collect();
            assert_eq!(dst, want, "len {len}");
        }
    }

    #[test]
    fn pack_prefix_is_le_zero_padded() {
        assert_eq!(pack_prefix(b"ab"), u64::from_le_bytes(*b"ab\0\0\0\0\0\0"));
        assert_eq!(pack_prefix(b"abcdefgh"), u64::from_le_bytes(*b"abcdefgh"));
        assert_eq!(pack_prefix(b"abcdefghij"), u64::from_le_bytes(*b"abcdefgh"));
        assert_eq!(pack_prefix(b""), 0);
    }

    #[test]
    fn prefix_mask_selects_low_bytes() {
        assert_eq!(prefix_mask(0), 0);
        assert_eq!(prefix_mask(1), 0xFF);
        assert_eq!(prefix_mask(8), u64::MAX);
        assert_eq!(prefix_mask(12), u64::MAX);
        let long = b"mailserver";
        for k in 0..=8 {
            assert_eq!(
                pack_prefix(long) & prefix_mask(k),
                pack_prefix(&long[..k]),
                "prefix length {k}"
            );
        }
    }
}
