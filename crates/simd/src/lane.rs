//! Fixed-width lane types over plain arrays.
//!
//! Every method body is a straight-line loop over [`LANES`] elements
//! with no early exit and no per-lane branching — the shape LLVM's
//! autovectorizer handles. Masks are full-width integers (`0` /
//! `u32::MAX`) so select is pure bit arithmetic.

use crate::LANES;

/// Eight `u32` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct U32x8([u32; LANES]);

/// Eight `f64` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F64x8([f64; LANES]);

/// Eight comparison results, one full-width integer per lane
/// (`0` = false, `u32::MAX` = true).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mask8([u32; LANES]);

impl U32x8 {
    /// All lanes set to `v`.
    #[inline]
    pub fn splat(v: u32) -> Self {
        U32x8([v; LANES])
    }

    /// Lanes from an array.
    #[inline]
    pub fn from_array(a: [u32; LANES]) -> Self {
        U32x8(a)
    }

    /// Lane `l` computed as `f(l)` — the gather shape: eight
    /// independent loads the CPU can issue in parallel.
    #[inline]
    pub fn from_fn(f: impl FnMut(usize) -> u32) -> Self {
        U32x8(std::array::from_fn(f))
    }

    /// The lanes as an array.
    #[inline]
    pub fn to_array(self) -> [u32; LANES] {
        self.0
    }

    /// Lane `l`.
    #[inline]
    pub fn get(self, l: usize) -> u32 {
        self.0[l]
    }

    /// Lane-wise wrapping add.
    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        U32x8(std::array::from_fn(|l| self.0[l].wrapping_add(rhs.0[l])))
    }

    /// Lane-wise equality.
    #[inline]
    pub fn eq(self, rhs: Self) -> Mask8 {
        Mask8(std::array::from_fn(|l| if self.0[l] == rhs.0[l] { u32::MAX } else { 0 }))
    }

    /// Horizontal sum (exact integer reduction, wrapping).
    #[inline]
    pub fn sum(self) -> u32 {
        let mut acc = 0u32;
        for l in 0..LANES {
            acc = acc.wrapping_add(self.0[l]);
        }
        acc
    }
}

impl F64x8 {
    /// All lanes set to `v`.
    #[inline]
    pub fn splat(v: f64) -> Self {
        F64x8([v; LANES])
    }

    /// Lanes from an array.
    #[inline]
    pub fn from_array(a: [f64; LANES]) -> Self {
        F64x8(a)
    }

    /// Lane `l` computed as `f(l)` (the gather shape).
    #[inline]
    pub fn from_fn(f: impl FnMut(usize) -> f64) -> Self {
        F64x8(std::array::from_fn(f))
    }

    /// The lanes as an array.
    #[inline]
    pub fn to_array(self) -> [f64; LANES] {
        self.0
    }

    /// Lane `l`.
    #[inline]
    pub fn get(self, l: usize) -> f64 {
        self.0[l]
    }

    /// Lane-wise `self <= rhs`, exactly IEEE `<=` per lane (NaN lanes
    /// compare false, matching the scalar `if x <= thr` branch).
    #[inline]
    pub fn le(self, rhs: Self) -> Mask8 {
        Mask8(std::array::from_fn(|l| if self.0[l] <= rhs.0[l] { u32::MAX } else { 0 }))
    }
}

impl Mask8 {
    /// All lanes true.
    #[inline]
    pub fn splat(v: bool) -> Self {
        Mask8([if v { u32::MAX } else { 0 }; LANES])
    }

    /// Is lane `l` true?
    #[inline]
    pub fn test(self, l: usize) -> bool {
        self.0[l] != 0
    }

    /// True iff every lane is true. Branch-free accumulation; the one
    /// branch lives in the caller.
    #[inline]
    pub fn all(self) -> bool {
        let mut acc = u32::MAX;
        for l in 0..LANES {
            acc &= self.0[l];
        }
        acc == u32::MAX
    }

    /// True iff any lane is true.
    #[inline]
    pub fn any(self) -> bool {
        let mut acc = 0u32;
        for l in 0..LANES {
            acc |= self.0[l];
        }
        acc != 0
    }

    /// Number of true lanes.
    #[inline]
    pub fn count(self) -> u32 {
        let mut acc = 0u32;
        for l in 0..LANES {
            acc += self.0[l] & 1;
        }
        acc
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        Mask8(std::array::from_fn(|l| self.0[l] & rhs.0[l]))
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        Mask8(std::array::from_fn(|l| self.0[l] | rhs.0[l]))
    }

    /// Per lane: `if mask { a } else { b }`, as pure bit arithmetic
    /// (no branch, no lane-dependent control flow).
    #[inline]
    pub fn select_u32(self, a: U32x8, b: U32x8) -> U32x8 {
        U32x8(std::array::from_fn(|l| (a.0[l] & self.0[l]) | (b.0[l] & !self.0[l])))
    }
}

impl std::ops::Not for Mask8 {
    type Output = Mask8;

    /// Lane-wise NOT.
    #[inline]
    fn not(self) -> Mask8 {
        Mask8(std::array::from_fn(|l| !self.0[l]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_get_roundtrip() {
        let v = U32x8::splat(7);
        for l in 0..LANES {
            assert_eq!(v.get(l), 7);
        }
        let f = F64x8::splat(1.5);
        assert_eq!(f.to_array(), [1.5; LANES]);
    }

    #[test]
    fn add_wraps() {
        let a = U32x8::from_fn(|l| l as u32);
        let b = a.wrapping_add(U32x8::splat(u32::MAX));
        for l in 0..LANES {
            assert_eq!(b.get(l), (l as u32).wrapping_sub(1));
        }
    }

    #[test]
    fn eq_and_select() {
        let a = U32x8::from_array([1, 2, 3, 4, 5, 6, 7, 8]);
        let m = a.eq(U32x8::splat(3));
        assert!(m.test(2));
        assert!(!m.test(0));
        assert_eq!(m.count(), 1);
        let picked = m.select_u32(U32x8::splat(100), a);
        assert_eq!(picked.to_array(), [1, 2, 100, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn le_matches_scalar_including_boundaries_and_nan() {
        let x = F64x8::from_array([0.0, 1.0, 1.0, 2.0, -0.0, f64::NAN, 5.0, -1.0]);
        let t = F64x8::splat(1.0);
        let m = x.le(t);
        let scalar: Vec<bool> = x.to_array().iter().map(|&v| v <= 1.0).collect();
        for (l, &want) in scalar.iter().enumerate() {
            assert_eq!(m.test(l), want, "lane {l}");
        }
        assert!(!m.test(5), "NaN <= t is false, same as the scalar branch");
    }

    #[test]
    fn horizontal_ops() {
        assert!(Mask8::splat(true).all());
        assert!(!Mask8::splat(false).any());
        assert_eq!(Mask8::splat(true).count(), LANES as u32);
        let ones = U32x8::splat(1);
        assert_eq!(ones.sum(), LANES as u32);
        let m = U32x8::from_fn(|l| l as u32).eq(U32x8::splat(0));
        assert!(m.any());
        assert!(!m.all());
        assert!((!m).test(1));
        assert!(m.and(Mask8::splat(true)).test(0));
        assert!(m.or(Mask8::splat(false)).test(0));
    }
}
