//! `bs-simd` — portable fixed-width lane types for the data-parallel
//! fast paths.
//!
//! The classification stage (DESIGN.md §16) wants to step eight tree
//! cursors or fold eight name bytes per operation, but the sanctioned
//! dependency set has no SIMD crate, `std::simd` is nightly-only, and
//! the house rules forbid `unsafe` (so no `core::arch` intrinsics
//! either). This crate takes the remaining road: fixed-width lane
//! types over plain `[T; LANES]` arrays whose per-lane loops are
//! written in the shapes LLVM's autovectorizer reliably turns into
//! vector instructions — no data-dependent branches inside a lane
//! loop, masked selects as arithmetic, horizontal reductions kept out
//! of the inner loops. On targets without usable vector units the same
//! code compiles to straightforward scalar loops over eight
//! independent dependency chains, which still buys memory-level
//! parallelism on the gather-heavy tree-traversal path.
//!
//! * [`U32x8`] / [`F64x8`] — arithmetic/compare lanes with
//!   [`Mask8`]-based branchless select;
//! * [`Mask8`] — eight comparison results with `all`/`any`/`count`
//!   horizontal ops;
//! * [`bytes`] — 8-wide byte-block helpers for ASCII case folding and
//!   packed-prefix keyword matching on DNS labels.
//!
//! # Determinism contract
//!
//! Nothing here reorders floating-point reductions: there is no
//! horizontal float add, by design. Callers that need bit-identical
//! results against a scalar reference (everything in this workspace)
//! keep their float accumulation order and use lanes only for exact
//! integer arithmetic, comparisons, and selects — all of which are
//! bitwise-identical to their scalar counterparts lane by lane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
mod lane;

pub use lane::{F64x8, Mask8, U32x8};

/// The fixed lane width every type in this crate uses. Eight is wide
/// enough to fill a 512-bit vector of `f64` (or two 256-bit halves)
/// and narrow enough that a ragged batch tail wastes little work.
pub const LANES: usize = 8;
