//! Scanner teams: coordinated scanning from shared /24 blocks
//! (paper §VI-B "a new observation in our data", Fig. 14).

use crate::WindowClassification;
use bs_activity::ApplicationClass;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Aggregate team statistics over a whole dataset (the §VI-B numbers:
/// unique scan originators, /24 blocks, blocks with ≥ 4 scanners,
/// single-class blocks among them).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TeamSummary {
    /// Distinct scan-classified originator addresses.
    pub scan_originators: usize,
    /// Distinct /24 blocks hosting them.
    pub blocks: usize,
    /// Blocks hosting at least `team_threshold` scan originators.
    pub candidate_teams: usize,
    /// Candidate-team blocks where *all* observed originators share one
    /// class (stronger evidence of coordination).
    pub single_class_teams: usize,
    /// The threshold used.
    pub team_threshold: usize,
}

fn block_of(ip: Ipv4Addr) -> u32 {
    u32::from(ip) & 0xFFFF_FF00
}

/// Compute team statistics across all windows.
pub fn scan_teams(windows: &[WindowClassification], team_threshold: usize) -> TeamSummary {
    let mut scan_ips: BTreeSet<Ipv4Addr> = BTreeSet::new();
    // block → (scan originators, all classes seen in block)
    let mut per_block: BTreeMap<u32, (BTreeSet<Ipv4Addr>, BTreeSet<ApplicationClass>)> =
        BTreeMap::new();
    for w in windows {
        for e in &w.entries {
            let slot = per_block.entry(block_of(e.originator)).or_default();
            slot.1.insert(e.class);
            if e.class == ApplicationClass::Scan {
                scan_ips.insert(e.originator);
                slot.0.insert(e.originator);
            }
        }
    }
    let scan_blocks: Vec<&(BTreeSet<Ipv4Addr>, BTreeSet<ApplicationClass>)> =
        per_block.values().filter(|(scanners, _)| !scanners.is_empty()).collect();
    let candidates: Vec<_> =
        scan_blocks.iter().filter(|(scanners, _)| scanners.len() >= team_threshold).collect();
    let single_class = candidates.iter().filter(|(_, classes)| classes.len() == 1).count();
    TeamSummary {
        scan_originators: scan_ips.len(),
        blocks: scan_blocks.len(),
        candidate_teams: candidates.len(),
        single_class_teams: single_class,
        team_threshold,
    }
}

/// Per-window count of scanning addresses inside chosen /24 blocks
/// (Fig. 14's five example blocks): `block_prefix → [(window, count)]`.
pub fn block_series(
    windows: &[WindowClassification],
    blocks: &[Ipv4Addr],
) -> BTreeMap<Ipv4Addr, Vec<(usize, usize)>> {
    let keys: BTreeSet<u32> = blocks.iter().map(|b| block_of(*b)).collect();
    let mut out: BTreeMap<Ipv4Addr, Vec<(usize, usize)>> = BTreeMap::new();
    for w in windows {
        let mut counts: BTreeMap<u32, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for e in w.of_class(ApplicationClass::Scan) {
            let b = block_of(e.originator);
            if keys.contains(&b) {
                counts.entry(b).or_default().insert(e.originator);
            }
        }
        for (b, ips) in counts {
            out.entry(Ipv4Addr::from(b)).or_default().push((w.window, ips.len()));
        }
    }
    out
}

/// The /24 blocks with the most scan originators across all windows,
/// largest first — candidates for Fig. 14.
pub fn busiest_scan_blocks(windows: &[WindowClassification], n: usize) -> Vec<(Ipv4Addr, usize)> {
    let mut per_block: BTreeMap<u32, BTreeSet<Ipv4Addr>> = BTreeMap::new();
    for w in windows {
        for e in w.of_class(ApplicationClass::Scan) {
            per_block.entry(block_of(e.originator)).or_default().insert(e.originator);
        }
    }
    let mut v: Vec<(Ipv4Addr, usize)> =
        per_block.into_iter().map(|(b, ips)| (Ipv4Addr::from(b), ips.len())).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::ClassifiedOriginator;

    fn entry(ip: &str, class: ApplicationClass) -> ClassifiedOriginator {
        ClassifiedOriginator { originator: ip.parse().unwrap(), queriers: 30, class }
    }

    fn team_window() -> WindowClassification {
        WindowClassification {
            window: 0,
            entries: vec![
                // A 4-scanner team in 10.0.0.0/24.
                entry("10.0.0.1", ApplicationClass::Scan),
                entry("10.0.0.2", ApplicationClass::Scan),
                entry("10.0.0.3", ApplicationClass::Scan),
                entry("10.0.0.4", ApplicationClass::Scan),
                // A mixed block: scanners + spam.
                entry("10.0.1.1", ApplicationClass::Scan),
                entry("10.0.1.2", ApplicationClass::Scan),
                entry("10.0.1.3", ApplicationClass::Scan),
                entry("10.0.1.4", ApplicationClass::Scan),
                entry("10.0.1.5", ApplicationClass::Spam),
                // A lone scanner.
                entry("10.0.2.1", ApplicationClass::Scan),
            ],
        }
    }

    #[test]
    fn team_summary_counts() {
        let s = scan_teams(&[team_window()], 4);
        assert_eq!(s.scan_originators, 9);
        assert_eq!(s.blocks, 3);
        assert_eq!(s.candidate_teams, 2);
        assert_eq!(s.single_class_teams, 1, "only the pure block counts");
    }

    #[test]
    fn block_series_tracks_membership_over_time() {
        let w0 = team_window();
        let mut w1 = team_window();
        w1.window = 1;
        w1.entries.retain(|e| e.originator != "10.0.0.4".parse::<Ipv4Addr>().unwrap());
        let series = block_series(&[w0, w1], &["10.0.0.0".parse().unwrap()]);
        let s = &series[&"10.0.0.0".parse::<Ipv4Addr>().unwrap()];
        assert_eq!(s, &vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn busiest_blocks_ranked() {
        let blocks = busiest_scan_blocks(&[team_window()], 2);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].1, 4);
        assert_eq!(blocks[1].1, 4);
    }
}
