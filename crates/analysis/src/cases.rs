//! Case tables: the paper's Tables VII and VIII — top originators with
//! external-source correlation (darknet addresses, blacklist counts,
//! PTR TTL, assigned class).

use bs_activity::ApplicationClass;
use bs_datasets_types::{BlacklistView, DarknetView};
use bs_netsim::hierarchy::PtrPolicy;
use bs_netsim::world::World;
use bs_sensor::OriginatorFeatures;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Minimal views of the external oracles so this crate does not depend
/// on `bs-datasets` (which depends on nothing here; the dependency
/// would be fine but the traits keep the analysis generic).
pub mod bs_datasets_types {
    use std::net::Ipv4Addr;

    /// Read access to a blacklist oracle.
    pub trait BlacklistView {
        /// Spam-list count.
        fn bls(&self, ip: Ipv4Addr) -> u8;
        /// Other-malice list count.
        fn blo(&self, ip: Ipv4Addr) -> u8;
    }

    /// Read access to a darknet oracle.
    pub trait DarknetView {
        /// Distinct dark addresses touched.
        fn dark_ips(&self, ip: Ipv4Addr) -> u64;
    }
}

/// One row of a top-originator table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseRow {
    /// Rank by unique queriers (1-based).
    pub rank: usize,
    /// The originator.
    pub originator: Ipv4Addr,
    /// Unique queriers.
    pub queriers: usize,
    /// PTR TTL description: `Some(ttl)` for existing records, negative
    /// cache TTL for NXDOMAIN, `None` for unreachable (the table's `F`).
    pub ttl: TtlColumn,
    /// Darknet addresses receiving the originator's packets.
    pub dark_ips: u64,
    /// Spam blacklist count.
    pub bls: u8,
    /// Other blacklist count.
    pub blo: u8,
    /// Class assigned by the classifier.
    pub class: Option<ApplicationClass>,
}

/// The TTL column of Tables VII/VIII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TtlColumn {
    /// A PTR record exists with this TTL.
    Positive(u32),
    /// Negative-cache TTL (the tables' dagger rows).
    Negative(u32),
    /// Authority unreachable (the tables' `F`).
    Failure,
}

/// Build the top-`n` case table for a dataset.
pub fn top_originator_table(
    world: &World,
    features: &[OriginatorFeatures],
    classified: &BTreeMap<Ipv4Addr, ApplicationClass>,
    blacklist: &impl BlacklistView,
    darknet: &impl DarknetView,
    n: usize,
) -> Vec<CaseRow> {
    // `features` is already ranked by footprint (sensor contract).
    features
        .iter()
        .take(n)
        .enumerate()
        .map(|(i, f)| {
            let ttl = match world.ptr_policy(f.originator) {
                PtrPolicy::Exists { ttl } => TtlColumn::Positive(ttl),
                PtrPolicy::NxDomain { neg_ttl } => TtlColumn::Negative(neg_ttl),
                PtrPolicy::Unreachable => TtlColumn::Failure,
            };
            CaseRow {
                rank: i + 1,
                originator: f.originator,
                queriers: f.querier_count,
                ttl,
                dark_ips: darknet.dark_ips(f.originator),
                bls: blacklist.bls(f.originator),
                blo: blacklist.blo(f.originator),
                class: classified.get(&f.originator).copied(),
            }
        })
        .collect()
}

/// How many of the top rows are "clean": no darknet evidence and no
/// blacklist listing (the paper finds 4 of JP's top 30 clean).
pub fn clean_rows(rows: &[CaseRow]) -> usize {
    rows.iter().filter(|r| r.dark_ips == 0 && r.bls == 0 && r.blo == 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_netsim::world::WorldConfig;
    use bs_sensor::{DynamicFeatures, FeatureVector};

    struct ToyBl;
    impl BlacklistView for ToyBl {
        fn bls(&self, ip: Ipv4Addr) -> u8 {
            u8::from(ip.octets()[3].is_multiple_of(2))
        }
        fn blo(&self, _ip: Ipv4Addr) -> u8 {
            0
        }
    }
    struct ToyDn;
    impl DarknetView for ToyDn {
        fn dark_ips(&self, ip: Ipv4Addr) -> u64 {
            if ip.octets()[3] == 1 {
                49_000
            } else {
                0
            }
        }
    }

    fn feats(ips: &[(&str, usize)]) -> Vec<OriginatorFeatures> {
        ips.iter()
            .map(|(ip, q)| OriginatorFeatures {
                originator: ip.parse().unwrap(),
                querier_count: *q,
                query_count: q * 2,
                features: FeatureVector {
                    static_fractions: [0.0; 14],
                    dynamic: DynamicFeatures::default(),
                },
            })
            .collect()
    }

    #[test]
    fn table_ranks_and_correlates() {
        let world = World::new(WorldConfig::default());
        let features = feats(&[("10.0.0.1", 500), ("10.0.0.2", 300), ("10.0.0.3", 100)]);
        let mut classified = BTreeMap::new();
        classified.insert("10.0.0.1".parse().unwrap(), ApplicationClass::Scan);
        let rows = top_originator_table(&world, &features, &classified, &ToyBl, &ToyDn, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].rank, 1);
        assert_eq!(rows[0].queriers, 500);
        assert_eq!(rows[0].dark_ips, 49_000);
        assert_eq!(rows[0].class, Some(ApplicationClass::Scan));
        assert_eq!(rows[1].bls, 1);
        assert_eq!(rows[1].class, None);
    }

    #[test]
    fn clean_row_counting() {
        let world = World::new(WorldConfig::default());
        let features = feats(&[("10.0.0.3", 100), ("10.0.0.5", 80)]);
        let rows = top_originator_table(&world, &features, &BTreeMap::new(), &ToyBl, &ToyDn, 10);
        // .3 and .5 are odd → no bls, no darknet → both clean.
        assert_eq!(clean_rows(&rows), 2);
    }
}
