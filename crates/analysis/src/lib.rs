//! Analyses of classified backscatter (paper §V-A, §VI).
//!
//! Everything here consumes per-window classification results — the
//! `(originator, footprint, class)` triples the pipeline emits — and
//! produces the series behind the paper's results figures: footprint
//! distributions (Fig. 9), top-N class mixes (Fig. 10, Table V),
//! activity trends with event bursts (Fig. 11–13), scanner teams per
//! /24 (Fig. 14, §VI-B), week-over-week churn (Fig. 15), and labeled-
//! example persistence (Figs. 5–6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bursts;
pub mod cases;
pub mod churn;
pub mod footprint;
pub mod geo;
pub mod report;
pub mod teams;
pub mod topn;
pub mod trends;

pub use bursts::{detect_bursts, Burst, BurstConfig};
pub use churn::{churn_series, persistence_series, ChurnWeek};
pub use footprint::{ccdf, counts_with_at_least};
pub use report::render_report;
pub use teams::{block_series, scan_teams, TeamSummary};
pub use topn::class_mix_top_n;
pub use trends::{class_counts_per_window, footprint_boxes, BoxStats};

use bs_activity::ApplicationClass;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One classified originator in one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifiedOriginator {
    /// The originator.
    pub originator: Ipv4Addr,
    /// Unique queriers observed in the window.
    pub queriers: usize,
    /// Assigned (or ground-truth) class.
    pub class: ApplicationClass,
}

/// All classified originators of one observation window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowClassification {
    /// Window index in the dataset's window sequence.
    pub window: usize,
    /// The classified originators.
    pub entries: Vec<ClassifiedOriginator>,
}

impl WindowClassification {
    /// Entries of one class.
    pub fn of_class(&self, class: ApplicationClass) -> impl Iterator<Item = &ClassifiedOriginator> {
        self.entries.iter().filter(move |e| e.class == class)
    }
}
