//! Whole-dataset situation reports.
//!
//! Turns per-window classifications into the narrative summary an
//! operator actually reads: what kinds of activity are out there, who
//! the biggest originators are, which /24s look coordinated, and
//! whether anything is bursting — the operational use the paper's
//! introduction motivates ("knowledge of malicious activity may help
//! anticipate attacks").

use crate::bursts::{detect_bursts, BurstConfig};
use crate::teams::scan_teams;
use crate::topn::class_mix_top_n;
use crate::trends::class_counts_per_window;
use crate::WindowClassification;
use bs_activity::ApplicationClass;
use std::fmt::Write as _;

/// Render a plain-text report over a classification series.
pub fn render_report(windows: &[WindowClassification]) -> String {
    let _span = bs_telemetry::span("analysis.report");
    let mut out = String::new();
    let _ = writeln!(out, "# backscatter situation report");
    let _ = writeln!(out, "windows analyzed: {}", windows.len());
    if windows.is_empty() {
        return out;
    }

    // Totals and class mix over the whole series.
    let total_detections: usize = windows.iter().map(|w| w.entries.len()).sum();
    let _ = writeln!(out, "originator-window detections: {total_detections}");
    let all_entries: Vec<_> = windows.iter().flat_map(|w| w.entries.iter().copied()).collect();
    let mix = class_mix_top_n(&all_entries, usize::MAX);
    let _ = writeln!(out, "\n## class mix (all windows)");
    let mut mix_rows: Vec<_> = mix.iter().collect();
    mix_rows.sort_by(|a, b| b.1.cmp(a.1));
    for (class, n) in mix_rows {
        let malicious = if class.is_malicious() { "  [malicious]" } else { "" };
        let _ = writeln!(out, "  {:12} {:>6}{malicious}", class.name(), n);
    }

    // Biggest footprints in the most recent window.
    let last = windows.last().expect("non-empty");
    let mut recent = last.entries.clone();
    recent.sort_by(|a, b| b.queriers.cmp(&a.queriers).then(a.originator.cmp(&b.originator)));
    let _ = writeln!(out, "\n## largest originators (latest window)");
    for e in recent.iter().take(10) {
        let _ = writeln!(
            out,
            "  {:15} {:>7} queriers  {}",
            e.originator.to_string(),
            e.queriers,
            e.class
        );
    }

    // Scanner teams.
    let teams = scan_teams(windows, 4);
    let _ = writeln!(out, "\n## scanner teams");
    let _ = writeln!(
        out,
        "  {} scan originators across {} /24 blocks; {} blocks with ≥{} scanners ({} single-class)",
        teams.scan_originators,
        teams.blocks,
        teams.candidate_teams,
        teams.team_threshold,
        teams.single_class_teams
    );

    // Bursts per malicious class, when the series is long enough.
    if windows.len() > BurstConfig::default().baseline_windows + 1 {
        let _ = writeln!(out, "\n## bursts");
        let mut any = false;
        for class in [ApplicationClass::Scan, ApplicationClass::Spam] {
            for b in detect_bursts(windows, class, &BurstConfig::default()) {
                any = true;
                let _ = writeln!(
                    out,
                    "  {} burst: windows {}..={}, peak {} vs baseline {:.0} (+{:.0}%)",
                    class.name(),
                    b.start,
                    b.end,
                    b.peak,
                    b.baseline,
                    100.0 * b.relative_excess()
                );
            }
        }
        if !any {
            let _ = writeln!(out, "  none detected");
        }
    }

    // Trend line for scan (the paper's headline class).
    let _ = writeln!(out, "\n## scan trend (originators per window)");
    for (w, per_class, _) in class_counts_per_window(windows) {
        let n = per_class.get(&ApplicationClass::Scan).copied().unwrap_or(0);
        let _ = writeln!(out, "  w{w:<4} {n:>5} {}", "#".repeat(n.min(60)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifiedOriginator;
    use std::net::Ipv4Addr;

    fn series() -> Vec<WindowClassification> {
        (0..12usize)
            .map(|w| {
                let n = if w == 10 { 30 } else { 10 };
                WindowClassification {
                    window: w,
                    entries: (0..n)
                        .map(|i| ClassifiedOriginator {
                            originator: Ipv4Addr::new(10, w as u8, 0, i as u8),
                            queriers: 20 + i,
                            class: if i % 3 == 0 {
                                ApplicationClass::Spam
                            } else {
                                ApplicationClass::Scan
                            },
                        })
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn report_contains_all_sections() {
        let r = render_report(&series());
        for needle in [
            "situation report",
            "class mix",
            "largest originators",
            "scanner teams",
            "bursts",
            "scan trend",
        ] {
            assert!(r.contains(needle), "missing section {needle:?} in:\n{r}");
        }
        assert!(r.contains("[malicious]"));
        // The window-10 spike is detected as a burst.
        assert!(r.contains("burst: windows 10..=10"), "{r}");
    }

    #[test]
    fn empty_series_is_fine() {
        let r = render_report(&[]);
        assert!(r.contains("windows analyzed: 0"));
    }
}
