//! Burst detection on activity trends.
//!
//! The paper reads the Heartbleed surge off Fig. 11 by eye; this module
//! turns that into a detector: windows whose class count exceeds a
//! trailing-baseline prediction by a deviation threshold are flagged as
//! bursts, with contiguous flagged windows merged into episodes.
//! This is the "support detection and response" use the paper's
//! introduction motivates.

use crate::WindowClassification;
use bs_activity::ApplicationClass;
use serde::{Deserialize, Serialize};

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Trailing windows forming the baseline.
    pub baseline_windows: usize,
    /// Flag when `count > mean + threshold_sigmas · std` of the
    /// baseline (std floored at `min_std` to survive quiet baselines).
    pub threshold_sigmas: f64,
    /// Floor on the baseline standard deviation.
    pub min_std: f64,
    /// Also require a relative excess of at least this fraction over
    /// the baseline mean (guards against flagging +1 on a count of 3).
    pub min_relative_excess: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            baseline_windows: 6,
            threshold_sigmas: 2.0,
            min_std: 1.0,
            min_relative_excess: 0.2,
        }
    }
}

/// A detected burst episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// First flagged window.
    pub start: usize,
    /// Last flagged window (inclusive).
    pub end: usize,
    /// Peak count inside the episode.
    pub peak: usize,
    /// Baseline mean at the episode start.
    pub baseline: f64,
}

impl Burst {
    /// Peak excess over baseline, as a fraction.
    pub fn relative_excess(&self) -> f64 {
        if self.baseline <= 0.0 {
            f64::INFINITY
        } else {
            self.peak as f64 / self.baseline - 1.0
        }
    }
}

/// Detect bursts of `class` activity across windows.
///
/// The first `baseline_windows` windows can never be flagged (no
/// baseline exists yet). Flagged windows do not contaminate the
/// baseline of later windows (the baseline skips them), so long bursts
/// do not mask themselves.
pub fn detect_bursts(
    windows: &[WindowClassification],
    class: ApplicationClass,
    config: &BurstConfig,
) -> Vec<Burst> {
    let counts: Vec<usize> = windows.iter().map(|w| w.of_class(class).count()).collect();
    let mut flagged = vec![false; counts.len()];
    for i in 0..counts.len() {
        // Baseline: the most recent `baseline_windows` unflagged
        // windows before i.
        let base: Vec<f64> = (0..i)
            .rev()
            .filter(|&j| !flagged[j])
            .take(config.baseline_windows)
            .map(|j| counts[j] as f64)
            .collect();
        if base.len() < config.baseline_windows {
            continue;
        }
        let mean = base.iter().sum::<f64>() / base.len() as f64;
        let var = base.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / base.len() as f64;
        let std = var.sqrt().max(config.min_std);
        let c = counts[i] as f64;
        if c > mean + config.threshold_sigmas * std && c > mean * (1.0 + config.min_relative_excess)
        {
            flagged[i] = true;
        }
    }

    // Merge contiguous flagged windows into episodes.
    let mut bursts = Vec::new();
    let mut i = 0;
    while i < flagged.len() {
        if flagged[i] {
            let start = i;
            let mut end = i;
            while end + 1 < flagged.len() && flagged[end + 1] {
                end += 1;
            }
            let baseline: Vec<f64> = (0..start)
                .rev()
                .filter(|&j| !flagged[j])
                .take(config.baseline_windows)
                .map(|j| counts[j] as f64)
                .collect();
            let baseline = baseline.iter().sum::<f64>() / baseline.len().max(1) as f64;
            bursts.push(Burst {
                start: windows[start].window,
                end: windows[end].window,
                peak: (start..=end).map(|j| counts[j]).max().expect("non-empty"),
                baseline,
            });
            i = end + 1;
        } else {
            i += 1;
        }
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifiedOriginator;
    use std::net::Ipv4Addr;

    fn series(counts: &[usize]) -> Vec<WindowClassification> {
        counts
            .iter()
            .enumerate()
            .map(|(w, &n)| WindowClassification {
                window: w,
                entries: (0..n)
                    .map(|i| ClassifiedOriginator {
                        originator: Ipv4Addr::new(10, (w / 200) as u8, (w % 200) as u8, i as u8),
                        queriers: 30,
                        class: ApplicationClass::Scan,
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn flat_series_has_no_bursts() {
        let windows = series(&[10; 20]);
        assert!(detect_bursts(&windows, ApplicationClass::Scan, &BurstConfig::default()).is_empty());
    }

    #[test]
    fn single_spike_is_one_episode() {
        let mut counts = vec![10usize; 20];
        counts[12] = 25;
        counts[13] = 22;
        let windows = series(&counts);
        let bursts = detect_bursts(&windows, ApplicationClass::Scan, &BurstConfig::default());
        assert_eq!(bursts.len(), 1, "{bursts:?}");
        assert_eq!(bursts[0].start, 12);
        assert_eq!(bursts[0].end, 13);
        assert_eq!(bursts[0].peak, 25);
        assert!((bursts[0].baseline - 10.0).abs() < 1e-9);
        assert!((bursts[0].relative_excess() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn long_burst_does_not_mask_itself() {
        // A sustained doubling: flagged windows must not enter the
        // baseline, so the whole plateau is one episode.
        let mut counts = vec![10usize; 10];
        counts.extend([22; 6]);
        counts.extend([10; 4]);
        let windows = series(&counts);
        let bursts = detect_bursts(&windows, ApplicationClass::Scan, &BurstConfig::default());
        assert_eq!(bursts.len(), 1, "{bursts:?}");
        assert_eq!(bursts[0].start, 10);
        assert_eq!(bursts[0].end, 15);
    }

    #[test]
    fn early_windows_never_flagged() {
        let mut counts = vec![50usize]; // huge first window
        counts.extend([10; 10]);
        let windows = series(&counts);
        let bursts = detect_bursts(&windows, ApplicationClass::Scan, &BurstConfig::default());
        assert!(bursts.is_empty(), "no baseline → no flags: {bursts:?}");
    }

    #[test]
    fn small_absolute_wobble_is_ignored() {
        // 3 → 4 is within min_std; must not flag.
        let mut counts = vec![3usize; 10];
        counts.push(4);
        let windows = series(&counts);
        let bursts = detect_bursts(&windows, ApplicationClass::Scan, &BurstConfig::default());
        assert!(bursts.is_empty(), "{bursts:?}");
    }

    #[test]
    fn other_classes_do_not_trigger() {
        let mut windows = series(&[10; 12]);
        // A spam flood in window 11 must not flag scan bursts.
        for i in 0..40u8 {
            windows[11].entries.push(ClassifiedOriginator {
                originator: Ipv4Addr::new(11, 0, 0, i),
                queriers: 30,
                class: ApplicationClass::Spam,
            });
        }
        let bursts = detect_bursts(&windows, ApplicationClass::Scan, &BurstConfig::default());
        assert!(bursts.is_empty());
        let spam = detect_bursts(&windows, ApplicationClass::Spam, &BurstConfig::default());
        assert_eq!(spam.len(), 1);
    }
}
