//! Longitudinal trends (Figs. 11–13).

use crate::WindowClassification;
use bs_activity::ApplicationClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Per-window class counts plus the total — Fig. 11's lines.
pub fn class_counts_per_window(
    windows: &[WindowClassification],
) -> Vec<(usize, BTreeMap<ApplicationClass, usize>, usize)> {
    windows
        .iter()
        .map(|w| {
            let mut counts = BTreeMap::new();
            for e in &w.entries {
                *counts.entry(e.class).or_insert(0) += 1;
            }
            (w.window, counts, w.entries.len())
        })
        .collect()
}

/// Five-number-plus-whiskers summary of a footprint distribution
/// (Fig. 12's box plot rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Smallest footprint.
    pub min: usize,
    /// 10th percentile (lower whisker).
    pub p10: usize,
    /// Lower quartile.
    pub q1: usize,
    /// Median.
    pub median: usize,
    /// Upper quartile.
    pub q3: usize,
    /// 90th percentile (upper whisker).
    pub p90: usize,
    /// Largest footprint.
    pub max: usize,
    /// Sample count.
    pub n: usize,
}

fn percentile(sorted: &[usize], p: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

impl BoxStats {
    /// Summarize a set of footprints; `None` when empty.
    pub fn from_footprints(mut footprints: Vec<usize>) -> Option<BoxStats> {
        if footprints.is_empty() {
            return None;
        }
        footprints.sort_unstable();
        Some(BoxStats {
            min: footprints[0],
            p10: percentile(&footprints, 0.10),
            q1: percentile(&footprints, 0.25),
            median: percentile(&footprints, 0.50),
            q3: percentile(&footprints, 0.75),
            p90: percentile(&footprints, 0.90),
            max: *footprints.last().expect("non-empty"),
            n: footprints.len(),
        })
    }
}

/// Per-window footprint box stats for one class (Fig. 12: class `scan`).
pub fn footprint_boxes(
    windows: &[WindowClassification],
    class: ApplicationClass,
) -> Vec<(usize, Option<BoxStats>)> {
    windows
        .iter()
        .map(|w| {
            let fp: Vec<usize> = w.of_class(class).map(|e| e.queriers).collect();
            (w.window, BoxStats::from_footprints(fp))
        })
        .collect()
}

/// The footprint trace of chosen originators across windows (Fig. 13's
/// example scanners): `originator → [(window, queriers)]`.
pub fn originator_traces(
    windows: &[WindowClassification],
    originators: &[Ipv4Addr],
) -> BTreeMap<Ipv4Addr, Vec<(usize, usize)>> {
    let mut traces: BTreeMap<Ipv4Addr, Vec<(usize, usize)>> = BTreeMap::new();
    for w in windows {
        for e in &w.entries {
            if originators.contains(&e.originator) {
                traces.entry(e.originator).or_default().push((w.window, e.queriers));
            }
        }
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifiedOriginator;

    fn win(idx: usize, entries: Vec<(u8, usize, ApplicationClass)>) -> WindowClassification {
        WindowClassification {
            window: idx,
            entries: entries
                .into_iter()
                .map(|(i, q, class)| ClassifiedOriginator {
                    originator: Ipv4Addr::new(10, 0, 0, i),
                    queriers: q,
                    class,
                })
                .collect(),
        }
    }

    #[test]
    fn class_counts_add_up() {
        let windows = vec![
            win(0, vec![(1, 30, ApplicationClass::Scan), (2, 40, ApplicationClass::Spam)]),
            win(1, vec![(1, 35, ApplicationClass::Scan)]),
        ];
        let counts = class_counts_per_window(&windows);
        assert_eq!(counts[0].1[&ApplicationClass::Scan], 1);
        assert_eq!(counts[0].2, 2);
        assert_eq!(counts[1].2, 1);
    }

    #[test]
    fn box_stats_on_known_data() {
        let b =
            BoxStats::from_footprints(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110]).unwrap();
        assert_eq!(b.min, 10);
        assert_eq!(b.median, 60);
        assert_eq!(b.max, 110);
        assert_eq!(b.p10, 20);
        assert_eq!(b.p90, 100);
        assert_eq!(b.n, 11);
        assert!(BoxStats::from_footprints(vec![]).is_none());
    }

    #[test]
    fn footprint_boxes_filter_by_class() {
        let windows = vec![win(
            0,
            vec![
                (1, 30, ApplicationClass::Scan),
                (2, 50, ApplicationClass::Scan),
                (3, 900, ApplicationClass::Spam),
            ],
        )];
        let boxes = footprint_boxes(&windows, ApplicationClass::Scan);
        let b = boxes[0].1.unwrap();
        assert_eq!(b.n, 2);
        assert_eq!(b.max, 50, "spam footprint excluded");
    }

    #[test]
    fn traces_follow_selected_originators() {
        let windows = vec![
            win(0, vec![(1, 30, ApplicationClass::Scan), (2, 40, ApplicationClass::Scan)]),
            win(1, vec![(1, 35, ApplicationClass::Scan)]),
            win(2, vec![(1, 32, ApplicationClass::Scan), (2, 45, ApplicationClass::Scan)]),
        ];
        let traces = originator_traces(&windows, &[Ipv4Addr::new(10, 0, 0, 2)]);
        assert_eq!(traces.len(), 1);
        let t = &traces[&Ipv4Addr::new(10, 0, 0, 2)];
        assert_eq!(t, &vec![(0, 40), (2, 45)]);
    }
}
