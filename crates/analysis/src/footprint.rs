//! Footprint-size distributions (paper Fig. 9, §VI-A).

use crate::ClassifiedOriginator;

/// Complementary cumulative distribution of footprint sizes: for each
/// distinct footprint `s`, the fraction of originators with footprint
/// ≥ `s`, sorted ascending by `s`. Plotted log-log this is the paper's
/// Fig. 9 (which draws the distribution of sizes per originator).
pub fn ccdf(entries: &[ClassifiedOriginator]) -> Vec<(usize, f64)> {
    if entries.is_empty() {
        return Vec::new();
    }
    let mut sizes: Vec<usize> = entries.iter().map(|e| e.queriers).collect();
    sizes.sort_unstable();
    let n = sizes.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sizes.len() {
        let s = sizes[i];
        // Fraction with footprint >= s.
        out.push((s, (sizes.len() - i) as f64 / n));
        while i < sizes.len() && sizes[i] == s {
            i += 1;
        }
    }
    out
}

/// How many originators have at least `min` queriers (the counting rule
/// of §VI-C: "we count all originators with footprints of at least 20
/// queriers").
pub fn counts_with_at_least(entries: &[ClassifiedOriginator], min: usize) -> usize {
    entries.iter().filter(|e| e.queriers >= min).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_activity::ApplicationClass;

    fn entry(q: usize) -> ClassifiedOriginator {
        ClassifiedOriginator {
            originator: std::net::Ipv4Addr::new(10, 0, (q >> 8) as u8, q as u8),
            queriers: q,
            class: ApplicationClass::Scan,
        }
    }

    #[test]
    fn ccdf_matches_hand_computation() {
        let entries: Vec<_> = [20, 20, 50, 100].into_iter().map(entry).collect();
        let c = ccdf(&entries);
        assert_eq!(c, vec![(20, 1.0), (50, 0.5), (100, 0.25)]);
    }

    #[test]
    fn ccdf_is_monotone_decreasing() {
        let entries: Vec<_> = (0..200).map(|i| entry(20 + (i * 7) % 500)).collect();
        let c = ccdf(&entries);
        for w in c.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 >= w[1].1);
        }
        assert!((c[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert!(ccdf(&[]).is_empty());
        assert_eq!(counts_with_at_least(&[], 20), 0);
    }

    #[test]
    fn threshold_count() {
        let entries: Vec<_> = [5, 19, 20, 21, 500].into_iter().map(entry).collect();
        assert_eq!(counts_with_at_least(&entries, 20), 3);
    }
}
