//! Week-over-week churn and labeled-example persistence
//! (Figs. 5, 6, 15; §V-A, §VI-C).

use crate::WindowClassification;
use bs_activity::ApplicationClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// One window's churn relative to the previous window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnWeek {
    /// Window index.
    pub window: usize,
    /// Originators present now but not in the previous window.
    pub new: usize,
    /// Originators present in both.
    pub continuing: usize,
    /// Originators present before but gone now.
    pub departing: usize,
}

/// Week-by-week churn of one class's originator population (Fig. 15).
/// The first window reports everything as `new`.
pub fn churn_series(windows: &[WindowClassification], class: ApplicationClass) -> Vec<ChurnWeek> {
    let mut prev: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut out = Vec::with_capacity(windows.len());
    for w in windows {
        let cur: BTreeSet<Ipv4Addr> = w.of_class(class).map(|e| e.originator).collect();
        let continuing = cur.intersection(&prev).count();
        out.push(ChurnWeek {
            window: w.window,
            new: cur.len() - continuing,
            continuing,
            departing: prev.len() - continuing,
        });
        prev = cur;
    }
    out
}

/// Count, per window, how many of the `labeled` originators re-appear
/// with the expected class group — the "re-appearing labeled example
/// count" behind Figs. 5 and 6. `labeled` pairs originators with their
/// curation-time class; `malicious` selects which group to count.
pub fn persistence_series(
    windows: &[WindowClassification],
    labeled: &[(Ipv4Addr, ApplicationClass)],
    malicious: bool,
) -> Vec<(usize, usize)> {
    let wanted: BTreeSet<Ipv4Addr> =
        labeled.iter().filter(|(_, c)| c.is_malicious() == malicious).map(|(ip, _)| *ip).collect();
    windows
        .iter()
        .map(|w| {
            let present = w.entries.iter().filter(|e| wanted.contains(&e.originator)).count();
            (w.window, present)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifiedOriginator;

    fn win(idx: usize, ips: &[u8], class: ApplicationClass) -> WindowClassification {
        WindowClassification {
            window: idx,
            entries: ips
                .iter()
                .map(|i| ClassifiedOriginator {
                    originator: Ipv4Addr::new(10, 0, 0, *i),
                    queriers: 30,
                    class,
                })
                .collect(),
        }
    }

    #[test]
    fn churn_counts_follow_set_algebra() {
        let windows = vec![
            win(0, &[1, 2, 3], ApplicationClass::Scan),
            win(1, &[2, 3, 4, 5], ApplicationClass::Scan),
            win(2, &[5], ApplicationClass::Scan),
        ];
        let churn = churn_series(&windows, ApplicationClass::Scan);
        assert_eq!(churn[0], ChurnWeek { window: 0, new: 3, continuing: 0, departing: 0 });
        assert_eq!(churn[1], ChurnWeek { window: 1, new: 2, continuing: 2, departing: 1 });
        assert_eq!(churn[2], ChurnWeek { window: 2, new: 0, continuing: 1, departing: 3 });
    }

    #[test]
    fn churn_ignores_other_classes() {
        let mut w0 = win(0, &[1], ApplicationClass::Scan);
        w0.entries.push(ClassifiedOriginator {
            originator: Ipv4Addr::new(10, 0, 0, 99),
            queriers: 30,
            class: ApplicationClass::Spam,
        });
        let churn = churn_series(&[w0], ApplicationClass::Scan);
        assert_eq!(churn[0].new, 1);
    }

    #[test]
    fn persistence_splits_by_malice() {
        let labeled = vec![
            (Ipv4Addr::new(10, 0, 0, 1), ApplicationClass::Spam),
            (Ipv4Addr::new(10, 0, 0, 2), ApplicationClass::Mail),
            (Ipv4Addr::new(10, 0, 0, 3), ApplicationClass::Scan),
        ];
        let windows =
            vec![win(0, &[1, 2, 3], ApplicationClass::Scan), win(1, &[2], ApplicationClass::Scan)];
        let mal = persistence_series(&windows, &labeled, true);
        assert_eq!(mal, vec![(0, 2), (1, 0)]);
        let ben = persistence_series(&windows, &labeled, false);
        assert_eq!(ben, vec![(0, 1), (1, 1)]);
    }
}
