//! Class composition of the biggest originators (Fig. 10, Table V).

use crate::ClassifiedOriginator;
use bs_activity::ApplicationClass;
use std::collections::BTreeMap;

/// Class counts among the `n` originators with the largest footprints
/// (ties broken by address for determinism). With `n ≥ len`, this is
/// the whole-dataset mix of Table V.
pub fn class_mix_top_n(
    entries: &[ClassifiedOriginator],
    n: usize,
) -> BTreeMap<ApplicationClass, usize> {
    let mut sorted: Vec<&ClassifiedOriginator> = entries.iter().collect();
    sorted
        .sort_by(|a, b| b.queriers.cmp(&a.queriers).then_with(|| a.originator.cmp(&b.originator)));
    let mut mix = BTreeMap::new();
    for e in sorted.into_iter().take(n) {
        *mix.entry(e.class).or_insert(0) += 1;
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn entry(i: u8, q: usize, class: ApplicationClass) -> ClassifiedOriginator {
        ClassifiedOriginator { originator: Ipv4Addr::new(10, 0, 0, i), queriers: q, class }
    }

    #[test]
    fn top_n_takes_largest_footprints() {
        let entries = vec![
            entry(1, 100, ApplicationClass::Spam),
            entry(2, 90, ApplicationClass::Spam),
            entry(3, 10, ApplicationClass::Mail),
            entry(4, 5, ApplicationClass::Mail),
        ];
        let top2 = class_mix_top_n(&entries, 2);
        assert_eq!(top2[&ApplicationClass::Spam], 2);
        assert!(!top2.contains_key(&ApplicationClass::Mail));
        let all = class_mix_top_n(&entries, 10);
        assert_eq!(all[&ApplicationClass::Mail], 2);
    }

    #[test]
    fn mix_totals_are_bounded_by_n() {
        let entries: Vec<_> =
            (0..50u8).map(|i| entry(i, i as usize, ApplicationClass::Scan)).collect();
        let mix = class_mix_top_n(&entries, 10);
        assert_eq!(mix.values().sum::<usize>(), 10);
    }

    #[test]
    fn empty_entries() {
        assert!(class_mix_top_n(&[], 10).is_empty());
    }
}
