//! Geographic analysis of originators.
//!
//! The paper repeatedly reads geography off its tables: M-ditl's top
//! scanners sit in Chinese hosting space, CDN visibility follows
//! anycast placement, and JP-ditl is regional by construction. This
//! module computes per-class country distributions of classified
//! originators so those observations become queryable instead of
//! anecdotal.

use crate::WindowClassification;
use bs_activity::ApplicationClass;
use bs_netsim::types::CountryCode;
use bs_netsim::world::World;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Per-class country histogram of distinct originators.
pub type GeoBreakdown = BTreeMap<ApplicationClass, BTreeMap<CountryCode, usize>>;

/// Count distinct originators per (class, country) across windows.
/// Originators in unusable space (no country) are skipped.
pub fn geo_breakdown(world: &World, windows: &[WindowClassification]) -> GeoBreakdown {
    let mut seen: BTreeSet<(ApplicationClass, Ipv4Addr)> = BTreeSet::new();
    let mut out: GeoBreakdown = BTreeMap::new();
    for w in windows {
        for e in &w.entries {
            if !seen.insert((e.class, e.originator)) {
                continue;
            }
            if let Some(cc) = world.country_of(e.originator) {
                *out.entry(e.class).or_default().entry(cc).or_insert(0) += 1;
            }
        }
    }
    out
}

/// The top `n` countries for one class, largest first, with the
/// fraction of that class's originators they host.
pub fn top_countries(
    breakdown: &GeoBreakdown,
    class: ApplicationClass,
    n: usize,
) -> Vec<(CountryCode, usize, f64)> {
    let Some(per_country) = breakdown.get(&class) else {
        return Vec::new();
    };
    let total: usize = per_country.values().sum();
    let mut v: Vec<(CountryCode, usize)> = per_country.iter().map(|(c, k)| (*c, *k)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(n);
    v.into_iter().map(|(c, k)| (c, k, k as f64 / total.max(1) as f64)).collect()
}

/// Geographic concentration of a class: the fraction of its originators
/// hosted by its single busiest country (1.0 = fully concentrated,
/// → 1/#countries = dispersed). Scanners-for-hire cluster in hosting
/// countries; mail infrastructure spreads with population.
pub fn concentration(breakdown: &GeoBreakdown, class: ApplicationClass) -> Option<f64> {
    let per_country = breakdown.get(&class)?;
    let total: usize = per_country.values().sum();
    let max = per_country.values().copied().max()?;
    if total == 0 {
        None
    } else {
        Some(max as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifiedOriginator;
    use bs_netsim::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    fn entry(ip: Ipv4Addr, class: ApplicationClass) -> ClassifiedOriginator {
        ClassifiedOriginator { originator: ip, queriers: 30, class }
    }

    #[test]
    fn breakdown_counts_distinct_originators_once() {
        let w = world();
        let a = w.random_public_addr(1);
        let windows = vec![
            WindowClassification { window: 0, entries: vec![entry(a, ApplicationClass::Scan)] },
            WindowClassification { window: 1, entries: vec![entry(a, ApplicationClass::Scan)] },
        ];
        let g = geo_breakdown(&w, &windows);
        let total: usize = g[&ApplicationClass::Scan].values().sum();
        assert_eq!(total, 1, "same originator in two windows counts once");
    }

    #[test]
    fn top_countries_are_ordered_with_fractions() {
        let w = world();
        // Gather addresses from two known countries.
        let jp = CountryCode::new("jp").unwrap();
        let us = CountryCode::new("us").unwrap();
        let jp8 = w.slash8s_of(jp)[0];
        let us8 = w.slash8s_of(us)[0];
        let mut entries = Vec::new();
        for i in 0..6u8 {
            entries.push(entry(Ipv4Addr::new(jp8, 1, 1, i), ApplicationClass::Spam));
        }
        for i in 0..2u8 {
            entries.push(entry(Ipv4Addr::new(us8, 1, 1, i), ApplicationClass::Spam));
        }
        let g = geo_breakdown(&w, &[WindowClassification { window: 0, entries }]);
        let top = top_countries(&g, ApplicationClass::Spam, 5);
        assert_eq!(top[0].0, jp);
        assert_eq!(top[0].1, 6);
        assert!((top[0].2 - 0.75).abs() < 1e-12);
        assert_eq!(top[1].0, us);
        assert_eq!(concentration(&g, ApplicationClass::Spam), Some(0.75));
    }

    #[test]
    fn absent_class_is_empty() {
        let w = world();
        let g = geo_breakdown(&w, &[]);
        assert!(top_countries(&g, ApplicationClass::Ntp, 3).is_empty());
        assert_eq!(concentration(&g, ApplicationClass::Ntp), None);
    }
}
