//! Originator classification (paper §III-D, §III-E, §V).
//!
//! Glue between the sensor's feature vectors and the ML crate, plus the
//! paper's operational machinery:
//!
//! * [`labels`] — curated labeled sets: building ground truth from
//!   external knowledge intersected with the top originators, with
//!   per-class size targets ("typically we require about 20 examples in
//!   each class, and about 200 or more total examples");
//! * [`pipeline`] — training and applying a classifier over feature
//!   maps, including the 10-run majority vote for randomized learners;
//! * [`strategies`] — training over time: train-once, retrain-daily on
//!   fresh feature values, automatically grown label sets, and
//!   recurring manual curation, evaluated window-by-window the way
//!   Fig. 7 is;
//! * [`consistency`] — the vote-consistency ratio *r* of §V-E and its
//!   distribution across querier thresholds (Fig. 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod consistency;
pub mod labels;
pub mod pipeline;
pub mod strategies;

pub use advisor::{advise, advise_series, AdvisorConfig, CurationAdvice, LabelHealth};
pub use consistency::{consistency_cdf, consistency_ratios, vote_entropy, WeeklyVote};
pub use labels::{LabeledExample, LabeledSet};
pub use pipeline::{ClassifierPipeline, FeatureMap, TrainedClassifier};
pub use strategies::{
    evaluate_strategy, StrategyEvaluation, TrainingStrategy, WindowData, WindowScore,
};
