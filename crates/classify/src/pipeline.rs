//! Training and applying the originator classifier.

use crate::labels::LabeledSet;
use bs_activity::ApplicationClass;
use bs_ml::{Algorithm, Dataset, MajorityEnsemble, Sample};
use bs_sensor::{FeatureVector, OriginatorFeatures};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Feature vectors keyed by originator.
pub type FeatureMap = BTreeMap<Ipv4Addr, FeatureVector>;

/// Build a feature map from extracted sensor output.
pub fn feature_map(features: &[OriginatorFeatures]) -> FeatureMap {
    features.iter().map(|f| (f.originator, f.features.clone())).collect()
}

/// Configuration of one classifier: algorithm plus the run count for
/// majority voting.
#[derive(Debug, Clone)]
pub struct ClassifierPipeline {
    /// The learning algorithm.
    pub algorithm: Algorithm,
    /// Independent fits to majority-vote over (paper: 10 for randomized
    /// algorithms, 1 for CART).
    pub runs: usize,
}

impl ClassifierPipeline {
    /// The paper's preferred configuration: random forest, 10 votes.
    pub fn random_forest() -> Self {
        ClassifierPipeline {
            algorithm: Algorithm::RandomForest(bs_ml::ForestParams::default()),
            runs: 10,
        }
    }

    /// Convert labeled examples plus current features into an ML
    /// dataset. Examples without features in the map are skipped.
    pub fn to_dataset(labeled: &LabeledSet, features: &FeatureMap) -> Dataset {
        let mut d = Dataset::new(FeatureVector::names(), ApplicationClass::all_names());
        for e in &labeled.examples {
            if let Some(fv) = features.get(&e.originator) {
                d.push(Sample { features: fv.to_vec(), label: e.class.index() });
            }
        }
        d
    }

    /// Train on the labeled set with current feature values. Returns
    /// `None` when no labeled example has features (training is
    /// impossible — the condition behind the gaps in Fig. 7).
    pub fn train(
        &self,
        labeled: &LabeledSet,
        features: &FeatureMap,
        seed: u64,
    ) -> Option<TrainedClassifier> {
        let _span = bs_telemetry::span("classify.train");
        let data = Self::to_dataset(labeled, features);
        // Every labeled example is either trained on or dropped by
        // `to_dataset` for lacking features this window.
        bs_trace::ledger::record(
            "classify.train",
            labeled.examples.len() as u64,
            &[
                ("used", data.len() as u64),
                ("missing_features", (labeled.examples.len() - data.len()) as u64),
            ],
        );
        if data.is_empty() || data.present_classes().len() < 2 {
            bs_telemetry::counter_add("classify.untrainable_windows", 1);
            return None;
        }
        let ensemble = MajorityEnsemble::fit(&self.algorithm, &data, self.runs, seed);
        bs_telemetry::counter_add("classify.models_trained", 1);
        Some(TrainedClassifier { ensemble })
    }
}

/// A trained classifier ready to label originators.
pub struct TrainedClassifier {
    ensemble: MajorityEnsemble,
}

impl TrainedClassifier {
    /// Classify one feature vector.
    pub fn classify(&self, fv: &FeatureVector) -> ApplicationClass {
        let idx = self.ensemble.predict(&fv.to_vec());
        ApplicationClass::from_index(idx).expect("model trained on class schema")
    }

    /// Classify with the ensemble's vote confidence in `[0, 1]`.
    pub fn classify_with_confidence(&self, fv: &FeatureVector) -> (ApplicationClass, f64) {
        let (idx, conf) = self.ensemble.predict_with_confidence(&fv.to_vec());
        (ApplicationClass::from_index(idx).expect("model trained on class schema"), conf)
    }

    /// Classify every originator in a feature map.
    ///
    /// Originators classify in parallel chunks, each chunk served by
    /// the ensemble's batch path (every tree arena streams once per
    /// chunk instead of once per originator; within a chunk eight rows
    /// descend per tree level through the `bs-simd` lane path). The
    /// result map is identical at any thread count (it is keyed, and
    /// each prediction depends only on its own feature vector).
    pub fn classify_all(&self, features: &FeatureMap) -> BTreeMap<Ipv4Addr, ApplicationClass> {
        let entries: Vec<(&Ipv4Addr, &FeatureVector)> = features.iter().collect();
        // Spread the batch across the pool, but keep every chunk a
        // multiple of the lane width so only the final chunk of the
        // whole batch runs a ragged tail block.
        let per_thread = entries.len().div_ceil(bs_par::threads().max(1));
        let chunk_size = per_thread.next_multiple_of(bs_simd::LANES).clamp(bs_simd::LANES, 256);
        bs_par::par_chunks(&entries, chunk_size, |_, chunk| {
            let xs: Vec<Vec<f64>> = chunk.iter().map(|(_, fv)| fv.to_vec()).collect();
            chunk
                .iter()
                .zip(self.ensemble.predict_all(&xs))
                .map(|((ip, _), idx)| {
                    (
                        **ip,
                        ApplicationClass::from_index(idx).expect("model trained on class schema"),
                    )
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabeledExample;
    use bs_ml::CartParams;
    use bs_sensor::DynamicFeatures;

    /// Synthetic features: spam has mail-fraction 0.9, scan has
    /// nxdomain 0.8 — trivially separable.
    fn fv(mail: f64, nx: f64) -> FeatureVector {
        let mut s = [0.0; 14];
        s[1] = mail; // static:mail
        s[13] = nx; // static:nxdomain
        s[11] = 1.0 - mail - nx; // other
        FeatureVector { static_fractions: s, dynamic: DynamicFeatures::default() }
    }

    fn setup() -> (LabeledSet, FeatureMap) {
        let mut features = FeatureMap::new();
        let mut examples = Vec::new();
        for i in 0..15u8 {
            let ip: Ipv4Addr = format!("10.0.0.{i}").parse().unwrap();
            features.insert(ip, fv(0.9, 0.02));
            examples.push(LabeledExample { originator: ip, class: ApplicationClass::Spam });
            let ip2: Ipv4Addr = format!("10.0.1.{i}").parse().unwrap();
            features.insert(ip2, fv(0.05, 0.8));
            examples.push(LabeledExample { originator: ip2, class: ApplicationClass::Scan });
        }
        (LabeledSet { examples }, features)
    }

    #[test]
    fn train_and_classify_round_trip() {
        let (labeled, features) = setup();
        let pipe =
            ClassifierPipeline { algorithm: Algorithm::Cart(CartParams::default()), runs: 1 };
        let model = pipe.train(&labeled, &features, 1).expect("trainable");
        assert_eq!(model.classify(&fv(0.85, 0.05)), ApplicationClass::Spam);
        assert_eq!(model.classify(&fv(0.0, 0.9)), ApplicationClass::Scan);
        let all = model.classify_all(&features);
        assert_eq!(all.len(), 30);
    }

    #[test]
    fn training_fails_gracefully_without_examples() {
        let pipe = ClassifierPipeline::random_forest();
        let empty_labels = LabeledSet::default();
        let (_, features) = setup();
        assert!(pipe.train(&empty_labels, &features, 1).is_none());
        // Labels exist but no features match → also untrainable.
        let (labeled, _) = setup();
        assert!(pipe.train(&labeled, &FeatureMap::new(), 1).is_none());
    }

    #[test]
    fn single_class_is_untrainable() {
        let (labeled, features) = setup();
        let only_spam = LabeledSet {
            examples: labeled
                .examples
                .into_iter()
                .filter(|e| e.class == ApplicationClass::Spam)
                .collect(),
        };
        let pipe = ClassifierPipeline::random_forest();
        assert!(pipe.train(&only_spam, &features, 1).is_none());
    }

    /// Regression for the lane-path chunking: batch sizes whose tail
    /// block is ragged (`n % LANES != 0`) must classify identically to
    /// the per-row scalar path — padding lanes' outputs are discarded,
    /// never mixed into real rows.
    #[test]
    fn classify_all_ragged_tails_match_per_row_classify() {
        let (labeled, features) = setup();
        let pipe =
            ClassifierPipeline { algorithm: Algorithm::Cart(CartParams::default()), runs: 1 };
        let model = pipe.train(&labeled, &features, 5).expect("trainable");
        for n in [1usize, 7, 8, 9, 17, 30] {
            let subset: FeatureMap =
                features.iter().take(n).map(|(ip, fv)| (*ip, fv.clone())).collect();
            let batch = model.classify_all(&subset);
            assert_eq!(batch.len(), n);
            for (ip, fv) in &subset {
                assert_eq!(batch[ip], model.classify(fv), "n = {n}, originator {ip}");
            }
        }
    }

    #[test]
    fn dataset_conversion_skips_missing_features() {
        let (labeled, mut features) = setup();
        features.remove(&"10.0.0.0".parse::<Ipv4Addr>().unwrap());
        let d = ClassifierPipeline::to_dataset(&labeled, &features);
        assert_eq!(d.len(), 29);
        assert_eq!(d.n_features(), 22);
        assert_eq!(d.n_classes(), 12);
    }
}
