//! Curated labeled sets (paper §III-E, §IV-B).

use bs_activity::ApplicationClass;
use bs_sensor::OriginatorFeatures;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One expert-labeled originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledExample {
    /// The originator address.
    pub originator: Ipv4Addr,
    /// Its curated application class.
    pub class: ApplicationClass,
}

/// A curated set of labeled examples.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledSet {
    /// The examples, at most one per originator.
    pub examples: Vec<LabeledExample>,
}

impl LabeledSet {
    /// Curate a labeled set the way the paper's experts do: intersect
    /// external knowledge (`truth`) with the observed top originators,
    /// then cap each class at `per_class_cap` (largest footprints
    /// first) so no class swamps training.
    ///
    /// Originators with conflicting truth entries are skipped (the
    /// paper strives "for accuracy over quantity").
    pub fn curate(
        truth: &BTreeMap<Ipv4Addr, ApplicationClass>,
        observed: &[OriginatorFeatures],
        per_class_cap: usize,
    ) -> Self {
        let mut by_class: BTreeMap<ApplicationClass, Vec<(usize, Ipv4Addr)>> = BTreeMap::new();
        for f in observed {
            if let Some(class) = truth.get(&f.originator) {
                by_class.entry(*class).or_default().push((f.querier_count, f.originator));
            }
        }
        let mut examples = Vec::new();
        for (class, mut v) in by_class {
            v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            v.truncate(per_class_cap);
            examples
                .extend(v.into_iter().map(|(_, originator)| LabeledExample { originator, class }));
        }
        bs_telemetry::counter_add("classify.curated_examples", examples.len() as u64);
        LabeledSet { examples }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when no examples exist.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Per-class example counts (Table VI's rows).
    pub fn class_counts(&self) -> BTreeMap<ApplicationClass, usize> {
        let mut counts = BTreeMap::new();
        for e in &self.examples {
            *counts.entry(e.class).or_insert(0) += 1;
        }
        counts
    }

    /// Classes with at least `min` examples.
    pub fn classes_with_at_least(&self, min: usize) -> Vec<ApplicationClass> {
        self.class_counts().into_iter().filter(|(_, n)| *n >= min).map(|(c, _)| c).collect()
    }

    /// The examples whose originators appear in `features` — the
    /// "re-appearing labeled examples" used to validate over time.
    pub fn reappearing<'a>(
        &'a self,
        features: &BTreeMap<Ipv4Addr, bs_sensor::FeatureVector>,
    ) -> Vec<&'a LabeledExample> {
        self.examples.iter().filter(|e| features.contains_key(&e.originator)).collect()
    }

    /// Merge `other` into `self`, keeping existing labels on conflict.
    pub fn merge(&mut self, other: &LabeledSet) {
        use std::collections::BTreeSet;
        let have: BTreeSet<Ipv4Addr> = self.examples.iter().map(|e| e.originator).collect();
        for e in &other.examples {
            if !have.contains(&e.originator) {
                self.examples.push(*e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_sensor::{DynamicFeatures, FeatureVector};

    fn feat(ip: &str, queriers: usize) -> OriginatorFeatures {
        OriginatorFeatures {
            originator: ip.parse().unwrap(),
            querier_count: queriers,
            query_count: queriers * 2,
            features: FeatureVector {
                static_fractions: [0.0; 14],
                dynamic: DynamicFeatures::default(),
            },
        }
    }

    fn truth(entries: &[(&str, ApplicationClass)]) -> BTreeMap<Ipv4Addr, ApplicationClass> {
        entries.iter().map(|(ip, c)| (ip.parse().unwrap(), *c)).collect()
    }

    #[test]
    fn curation_intersects_truth_and_observation() {
        let t = truth(&[
            ("10.0.0.1", ApplicationClass::Spam),
            ("10.0.0.2", ApplicationClass::Scan),
            ("10.0.0.3", ApplicationClass::Spam), // not observed
        ]);
        let observed = vec![feat("10.0.0.1", 50), feat("10.0.0.2", 30), feat("10.0.0.9", 99)];
        let set = LabeledSet::curate(&t, &observed, 10);
        assert_eq!(set.len(), 2);
        assert_eq!(set.class_counts()[&ApplicationClass::Spam], 1);
        assert_eq!(set.class_counts()[&ApplicationClass::Scan], 1);
    }

    #[test]
    fn per_class_cap_keeps_largest_footprints() {
        let t = truth(&[
            ("10.0.0.1", ApplicationClass::Spam),
            ("10.0.0.2", ApplicationClass::Spam),
            ("10.0.0.3", ApplicationClass::Spam),
        ]);
        let observed = vec![feat("10.0.0.1", 10), feat("10.0.0.2", 99), feat("10.0.0.3", 50)];
        let set = LabeledSet::curate(&t, &observed, 2);
        assert_eq!(set.len(), 2);
        let ips: Vec<Ipv4Addr> = set.examples.iter().map(|e| e.originator).collect();
        assert!(ips.contains(&"10.0.0.2".parse().unwrap()));
        assert!(ips.contains(&"10.0.0.3".parse().unwrap()));
    }

    #[test]
    fn reappearing_filters_by_feature_presence() {
        let t =
            truth(&[("10.0.0.1", ApplicationClass::Spam), ("10.0.0.2", ApplicationClass::Scan)]);
        let observed = vec![feat("10.0.0.1", 50), feat("10.0.0.2", 30)];
        let set = LabeledSet::curate(&t, &observed, 10);
        let mut fmap = BTreeMap::new();
        fmap.insert(
            "10.0.0.1".parse().unwrap(),
            FeatureVector { static_fractions: [0.0; 14], dynamic: DynamicFeatures::default() },
        );
        let re = set.reappearing(&fmap);
        assert_eq!(re.len(), 1);
        assert_eq!(re[0].class, ApplicationClass::Spam);
    }

    #[test]
    fn merge_prefers_existing_labels() {
        let mut a = LabeledSet {
            examples: vec![LabeledExample {
                originator: "10.0.0.1".parse().unwrap(),
                class: ApplicationClass::Spam,
            }],
        };
        let b = LabeledSet {
            examples: vec![
                LabeledExample {
                    originator: "10.0.0.1".parse().unwrap(),
                    class: ApplicationClass::Mail, // conflict: ignored
                },
                LabeledExample {
                    originator: "10.0.0.2".parse().unwrap(),
                    class: ApplicationClass::Scan,
                },
            ],
        };
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.examples[0].class, ApplicationClass::Spam);
    }

    #[test]
    fn classes_with_at_least_threshold() {
        let t = truth(&[
            ("10.0.0.1", ApplicationClass::Spam),
            ("10.0.0.2", ApplicationClass::Spam),
            ("10.0.0.3", ApplicationClass::Scan),
        ]);
        let observed = vec![feat("10.0.0.1", 9), feat("10.0.0.2", 8), feat("10.0.0.3", 7)];
        let set = LabeledSet::curate(&t, &observed, 10);
        assert_eq!(set.classes_with_at_least(2), vec![ApplicationClass::Spam]);
    }
}
