//! The curation advisor (paper §V-F).
//!
//! "Meanwhile labeled examples re-appearance count informs about next
//! expert curation." — the paper's recommended operation watches how
//! many curated examples are still active and calls the expert back
//! when the classifier is about to starve. This module implements that
//! watch: per-window re-appearance fractions, split by class group
//! (malicious labels churn an order of magnitude faster), with a
//! recommendation when either group falls below its floor.

use crate::labels::LabeledSet;
use crate::pipeline::FeatureMap;
use serde::{Deserialize, Serialize};

/// Advisor thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Re-curate when the active fraction of malicious labels falls
    /// below this (the paper sees malicious halve within a month).
    pub malicious_floor: f64,
    /// Re-curate when the active fraction of benign labels falls below
    /// this.
    pub benign_floor: f64,
    /// Minimum *absolute* active examples per group regardless of
    /// fractions (the paper wants ~20 per class, ~200 total; per group
    /// we default to 15).
    pub min_active: usize,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig { malicious_floor: 0.5, benign_floor: 0.6, min_active: 15 }
    }
}

/// One window's label-health reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabelHealth {
    /// Curated malicious examples still active (re-appearing).
    pub malicious_active: usize,
    /// Curated malicious examples total.
    pub malicious_total: usize,
    /// Curated benign examples still active.
    pub benign_active: usize,
    /// Curated benign examples total.
    pub benign_total: usize,
}

impl LabelHealth {
    /// Measure how much of `labels` re-appears in a window's features.
    pub fn measure(labels: &LabeledSet, features: &FeatureMap) -> LabelHealth {
        let mut h = LabelHealth {
            malicious_active: 0,
            malicious_total: 0,
            benign_active: 0,
            benign_total: 0,
        };
        for e in &labels.examples {
            let active = features.contains_key(&e.originator);
            if e.class.is_malicious() {
                h.malicious_total += 1;
                h.malicious_active += active as usize;
            } else {
                h.benign_total += 1;
                h.benign_active += active as usize;
            }
        }
        h
    }

    /// Active fraction of malicious labels (1.0 when none were curated).
    pub fn malicious_fraction(&self) -> f64 {
        if self.malicious_total == 0 {
            1.0
        } else {
            self.malicious_active as f64 / self.malicious_total as f64
        }
    }

    /// Active fraction of benign labels.
    pub fn benign_fraction(&self) -> f64 {
        if self.benign_total == 0 {
            1.0
        } else {
            self.benign_active as f64 / self.benign_total as f64
        }
    }
}

/// The advisor's verdict for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CurationAdvice {
    /// The labeled set is healthy; keep retraining daily.
    Healthy,
    /// Malicious labels have churned out: schedule an expert pass.
    RecurateMalicious,
    /// Benign labels have decayed too: full re-curation.
    RecurateAll,
}

/// Judge a window's label health.
pub fn advise(health: &LabelHealth, config: &AdvisorConfig) -> CurationAdvice {
    let benign_bad = health.benign_fraction() < config.benign_floor
        || health.benign_active < config.min_active.min(health.benign_total);
    let malicious_bad = health.malicious_fraction() < config.malicious_floor
        || health.malicious_active < config.min_active.min(health.malicious_total);
    match (malicious_bad, benign_bad) {
        (_, true) => CurationAdvice::RecurateAll,
        (true, false) => CurationAdvice::RecurateMalicious,
        (false, false) => CurationAdvice::Healthy,
    }
}

/// Scan a window sequence and return, for each window, the advice —
/// plus the first window where re-curation became necessary (what the
/// operator would actually schedule).
pub fn advise_series(
    labels: &LabeledSet,
    windows: &[FeatureMap],
    config: &AdvisorConfig,
) -> (Vec<CurationAdvice>, Option<usize>) {
    let advice: Vec<CurationAdvice> =
        windows.iter().map(|w| advise(&LabelHealth::measure(labels, w), config)).collect();
    let first = advice.iter().position(|a| *a != CurationAdvice::Healthy);
    (advice, first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabeledExample;
    use bs_activity::ApplicationClass;
    use bs_sensor::{DynamicFeatures, FeatureVector};
    use std::net::Ipv4Addr;

    fn fv() -> FeatureVector {
        FeatureVector { static_fractions: [0.0; 14], dynamic: DynamicFeatures::default() }
    }

    fn labels(n_mal: u8, n_ben: u8) -> LabeledSet {
        let mut examples = Vec::new();
        for i in 0..n_mal {
            examples.push(LabeledExample {
                originator: Ipv4Addr::new(10, 0, 0, i),
                class: ApplicationClass::Spam,
            });
        }
        for i in 0..n_ben {
            examples.push(LabeledExample {
                originator: Ipv4Addr::new(10, 0, 1, i),
                class: ApplicationClass::Mail,
            });
        }
        LabeledSet { examples }
    }

    fn window(mal_active: u8, ben_active: u8) -> FeatureMap {
        let mut m = FeatureMap::new();
        for i in 0..mal_active {
            m.insert(Ipv4Addr::new(10, 0, 0, i), fv());
        }
        for i in 0..ben_active {
            m.insert(Ipv4Addr::new(10, 0, 1, i), fv());
        }
        m
    }

    #[test]
    fn health_fractions() {
        let l = labels(20, 20);
        let h = LabelHealth::measure(&l, &window(10, 18));
        assert_eq!(h.malicious_active, 10);
        assert!((h.malicious_fraction() - 0.5).abs() < 1e-12);
        assert!((h.benign_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn advice_tracks_group_decay() {
        let l = labels(20, 20);
        let cfg = AdvisorConfig::default();
        // Fresh: everything active.
        assert_eq!(
            advise(&LabelHealth::measure(&l, &window(20, 20)), &cfg),
            CurationAdvice::Healthy
        );
        // Malicious halved-minus-one: malicious-only recuration.
        assert_eq!(
            advise(&LabelHealth::measure(&l, &window(9, 19)), &cfg),
            CurationAdvice::RecurateMalicious
        );
        // Benign decayed too: full pass.
        assert_eq!(
            advise(&LabelHealth::measure(&l, &window(9, 8)), &cfg),
            CurationAdvice::RecurateAll
        );
    }

    #[test]
    fn absolute_floor_triggers_even_at_good_fractions() {
        // Tiny curated set: 4 of 5 malicious active is an 0.8 fraction
        // but only 4 absolute — below min_active.min(total)=5.
        let l = labels(5, 20);
        let cfg = AdvisorConfig { min_active: 15, ..Default::default() };
        let advice = advise(&LabelHealth::measure(&l, &window(4, 20)), &cfg);
        assert_eq!(advice, CurationAdvice::RecurateMalicious);
    }

    #[test]
    fn series_reports_first_trigger() {
        let l = labels(20, 20);
        let windows = vec![window(20, 20), window(15, 20), window(9, 20), window(5, 18)];
        let (advice, first) = advise_series(&l, &windows, &AdvisorConfig::default());
        assert_eq!(advice[0], CurationAdvice::Healthy);
        assert_eq!(advice[1], CurationAdvice::Healthy);
        assert_eq!(advice[2], CurationAdvice::RecurateMalicious);
        assert_eq!(first, Some(2));
    }

    #[test]
    fn empty_label_set_is_trivially_healthy() {
        let l = LabeledSet::default();
        let (advice, first) = advise_series(&l, &[window(0, 0)], &AdvisorConfig::default());
        assert_eq!(advice, vec![CurationAdvice::Healthy]);
        assert_eq!(first, None);
    }
}
