//! Training over time (paper §III-E, §V).
//!
//! Who carries out activity and how they act changes over time, so a
//! classifier trained once decays. The paper compares four strategies:
//!
//! * **train-once** — curate and train at the start, never again
//!   (accuracy decays immediately, §V-B);
//! * **retrain-daily** — keep the labeled *identities* fixed but refit
//!   on each window's fresh feature values (holds up while enough
//!   labeled examples remain active, §V-C);
//! * **auto-grow** — feed each window's classifier output back in as
//!   the next window's labels (classification error compounds and the
//!   boundary collapses, §V-D);
//! * **recurring manual curation** — re-curate from expert knowledge on
//!   a schedule, retraining daily in between (the gold standard, §V-E).
//!
//! [`evaluate_strategy`] replays any of these over a window sequence
//! and scores each window on the re-appearing labeled examples, exactly
//! how Fig. 7 is drawn.

use crate::labels::{LabeledExample, LabeledSet};
use crate::pipeline::{ClassifierPipeline, FeatureMap};
use bs_activity::ApplicationClass;
use bs_ml::ConfusionMatrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One observation window's extracted data.
#[derive(Debug, Clone, Default)]
pub struct WindowData {
    /// Feature vectors for this window's analyzable originators.
    pub features: FeatureMap,
    /// Ground truth for originators active in this window (available to
    /// the *evaluator* always, and to the *strategy* only at curation
    /// points).
    pub truth: BTreeMap<Ipv4Addr, ApplicationClass>,
    /// Observed footprints (unique queriers), for curation ranking.
    pub querier_counts: BTreeMap<Ipv4Addr, usize>,
}

/// A training-over-time strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainingStrategy {
    /// Train on window 0, reuse the model forever.
    TrainOnce,
    /// Fixed label set, refit on each window's fresh features.
    RetrainDaily,
    /// Yesterday's classifications become today's labels.
    AutoGrow,
    /// Re-curate from ground truth every `every` windows, refit daily.
    ManualRecurring {
        /// Curation period in windows.
        every: usize,
        /// Per-class cap at each curation.
        per_class_cap: usize,
    },
}

impl TrainingStrategy {
    /// Short name for tables and plots.
    pub fn name(&self) -> &'static str {
        match self {
            TrainingStrategy::TrainOnce => "train-once",
            TrainingStrategy::RetrainDaily => "train-daily",
            TrainingStrategy::AutoGrow => "auto-grow",
            TrainingStrategy::ManualRecurring { .. } => "manual-recurring",
        }
    }
}

/// Per-window evaluation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowScore {
    /// Window index.
    pub window: usize,
    /// Macro F1 on the re-appearing evaluation examples, `None` when
    /// training failed (not enough active labeled examples) or nothing
    /// re-appeared to evaluate.
    pub f1: Option<f64>,
    /// How many evaluation examples re-appeared.
    pub evaluated: usize,
    /// Size of the label set used for this window's model.
    pub label_set_size: usize,
}

/// A full strategy replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyEvaluation {
    /// The strategy evaluated.
    pub strategy: TrainingStrategy,
    /// One score per window.
    pub scores: Vec<WindowScore>,
}

impl StrategyEvaluation {
    /// Mean F1 over windows where evaluation was possible.
    pub fn mean_f1(&self) -> f64 {
        let v: Vec<f64> = self.scores.iter().filter_map(|s| s.f1).collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Number of windows with a usable model.
    pub fn usable_windows(&self) -> usize {
        self.scores.iter().filter(|s| s.f1.is_some()).count()
    }
}

/// Replay `strategy` over `windows`. Window 0 always curates an initial
/// label set from its ground truth (the expert's first pass);
/// evaluation in every window scores the *current reference labels* on
/// the examples that re-appear.
pub fn evaluate_strategy(
    strategy: TrainingStrategy,
    windows: &[WindowData],
    pipeline: &ClassifierPipeline,
    per_class_cap: usize,
    seed: u64,
) -> StrategyEvaluation {
    assert!(!windows.is_empty());
    // Initial curation from window 0 (the paper's curation days).
    let initial = curate_from_window(&windows[0], per_class_cap);
    // The evaluation reference is the initial expert set (the paper
    // validates against "re-appearing labeled examples" from curation).
    let reference = initial.clone();

    let mut labels = initial;
    let mut model = pipeline.train(&labels, &windows[0].features, seed);
    let mut scores = Vec::with_capacity(windows.len());

    for (w, data) in windows.iter().enumerate() {
        // Strategy-specific label/model maintenance.
        match strategy {
            TrainingStrategy::TrainOnce => {
                // Model from window 0 is kept as-is.
            }
            TrainingStrategy::RetrainDaily => {
                if w > 0 {
                    model = pipeline.train(&labels, &data.features, seed ^ (w as u64) << 8);
                }
            }
            TrainingStrategy::AutoGrow => {
                if w > 0 {
                    // Previous window's classifications become labels.
                    if let Some(m) = &model {
                        let prev = &windows[w - 1];
                        let classified = m.classify_all(&prev.features);
                        labels = cap_labels(&classified, &prev.querier_counts, per_class_cap);
                    }
                    model = pipeline.train(&labels, &data.features, seed ^ (w as u64) << 8);
                }
            }
            TrainingStrategy::ManualRecurring { every, per_class_cap: cap } => {
                if w > 0 && every > 0 && w % every == 0 {
                    let fresh = curate_from_window(data, cap);
                    labels = fresh;
                }
                if w > 0 {
                    model = pipeline.train(&labels, &data.features, seed ^ (w as u64) << 8);
                }
            }
        }

        // Evaluate on re-appearing reference examples.
        let eval: Vec<&LabeledExample> = reference.reappearing(&data.features);
        let f1 = match (&model, eval.is_empty()) {
            (Some(m), false) => {
                let truth: Vec<usize> = eval.iter().map(|e| e.class.index()).collect();
                let predicted: Vec<usize> = eval
                    .iter()
                    .map(|e| m.classify(&data.features[&e.originator]).index())
                    .collect();
                let cm = ConfusionMatrix::from_predictions(12, &truth, &predicted);
                Some(cm.metrics().f1)
            }
            _ => None,
        };
        scores.push(WindowScore {
            window: w,
            f1,
            evaluated: eval.len(),
            label_set_size: labels.len(),
        });
    }
    StrategyEvaluation { strategy, scores }
}

fn curate_from_window(data: &WindowData, per_class_cap: usize) -> LabeledSet {
    // Build pseudo-OriginatorFeatures ranking from querier counts.
    let mut by_class: BTreeMap<ApplicationClass, Vec<(usize, Ipv4Addr)>> = BTreeMap::new();
    for (ip, class) in &data.truth {
        if data.features.contains_key(ip) {
            let q = data.querier_counts.get(ip).copied().unwrap_or(0);
            by_class.entry(*class).or_default().push((q, *ip));
        }
    }
    let mut examples = Vec::new();
    for (class, mut v) in by_class {
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.truncate(per_class_cap);
        examples.extend(v.into_iter().map(|(_, originator)| LabeledExample { originator, class }));
    }
    LabeledSet { examples }
}

fn cap_labels(
    classified: &BTreeMap<Ipv4Addr, ApplicationClass>,
    querier_counts: &BTreeMap<Ipv4Addr, usize>,
    per_class_cap: usize,
) -> LabeledSet {
    let mut by_class: BTreeMap<ApplicationClass, Vec<(usize, Ipv4Addr)>> = BTreeMap::new();
    for (ip, class) in classified {
        let q = querier_counts.get(ip).copied().unwrap_or(0);
        by_class.entry(*class).or_default().push((q, *ip));
    }
    let mut examples = Vec::new();
    for (class, mut v) in by_class {
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.truncate(per_class_cap);
        examples.extend(v.into_iter().map(|(_, originator)| LabeledExample { originator, class }));
    }
    LabeledSet { examples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_ml::{Algorithm, CartParams};
    use bs_sensor::{DynamicFeatures, FeatureVector};

    /// Synthetic world: two classes, spam features drift over windows,
    /// and spam originators churn (new IPs) while mail stays put.
    fn make_windows(n: usize, churn_spam: bool) -> Vec<WindowData> {
        let fv = |mail: f64, nx: f64| {
            let mut s = [0.0; 14];
            s[1] = mail;
            s[13] = nx;
            s[11] = (1.0 - mail - nx).max(0.0);
            FeatureVector { static_fractions: s, dynamic: DynamicFeatures::default() }
        };
        (0..n)
            .map(|w| {
                let mut features = FeatureMap::new();
                let mut truth = BTreeMap::new();
                let mut querier_counts = BTreeMap::new();
                // Mail: stable identities and features.
                for i in 0..10u8 {
                    let ip: Ipv4Addr = format!("10.0.0.{i}").parse().unwrap();
                    features.insert(ip, fv(0.9, 0.0));
                    truth.insert(ip, ApplicationClass::Mail);
                    querier_counts.insert(ip, 50);
                }
                // Spam: churns to new addresses each window when asked.
                let spam_octet = if churn_spam { w as u8 } else { 0 };
                for i in 0..10u8 {
                    let ip: Ipv4Addr = format!("10.1.{spam_octet}.{i}").parse().unwrap();
                    features.insert(ip, fv(0.1, 0.7));
                    truth.insert(ip, ApplicationClass::Spam);
                    querier_counts.insert(ip, 40);
                }
                WindowData { features, truth, querier_counts }
            })
            .collect()
    }

    fn cart() -> ClassifierPipeline {
        ClassifierPipeline { algorithm: Algorithm::Cart(CartParams::default()), runs: 1 }
    }

    #[test]
    fn stable_world_keeps_all_strategies_high() {
        let windows = make_windows(5, false);
        for strat in [
            TrainingStrategy::TrainOnce,
            TrainingStrategy::RetrainDaily,
            TrainingStrategy::ManualRecurring { every: 2, per_class_cap: 10 },
        ] {
            let eval = evaluate_strategy(strat, &windows, &cart(), 10, 1);
            assert!(eval.mean_f1() > 0.95, "{} f1 {}", strat.name(), eval.mean_f1());
            assert_eq!(eval.usable_windows(), 5);
        }
    }

    #[test]
    fn churn_shrinks_reappearing_evaluation_set() {
        let windows = make_windows(4, true);
        let eval = evaluate_strategy(TrainingStrategy::RetrainDaily, &windows, &cart(), 10, 1);
        // Window 0 evaluates all 20 reference examples; later windows
        // only the stable mail half.
        assert_eq!(eval.scores[0].evaluated, 20);
        for s in &eval.scores[1..] {
            assert_eq!(s.evaluated, 10, "only mail persists");
        }
    }

    #[test]
    fn manual_recuration_refreshes_label_set() {
        let windows = make_windows(6, true);
        let eval = evaluate_strategy(
            TrainingStrategy::ManualRecurring { every: 2, per_class_cap: 10 },
            &windows,
            &cart(),
            10,
            1,
        );
        // After each curation the label set regains both classes (20
        // examples); train-once/retrain-daily would hold the initial set.
        assert!(eval.scores[2].label_set_size == 20);
        assert!(eval.scores[4].label_set_size == 20);
    }

    #[test]
    fn auto_grow_tracks_previous_window_output() {
        let windows = make_windows(4, false);
        let eval = evaluate_strategy(TrainingStrategy::AutoGrow, &windows, &cart(), 10, 1);
        // With a separable, stable world auto-grow stays usable; label
        // sets come from classifier output (both classes, capped).
        for s in &eval.scores[1..] {
            assert!(s.label_set_size >= 10, "labels {}", s.label_set_size);
        }
        assert!(eval.mean_f1() > 0.9);
    }

    #[test]
    fn single_window_sequence_works() {
        let windows = make_windows(1, false);
        let eval = evaluate_strategy(TrainingStrategy::TrainOnce, &windows, &cart(), 10, 1);
        assert_eq!(eval.scores.len(), 1);
        assert!(eval.scores[0].f1.is_some());
    }
}
