//! Classification consistency over time (paper §V-E, Fig. 8).
//!
//! Classifying the same originator week after week, the paper measures
//! *r*: the fraction of weeks in which the originator's most common
//! class was assigned. High *r* means stable, trustworthy votes; *r*
//! ≤ 0.5 suggests an originator doing two things or a weak classifier.

use bs_activity::ApplicationClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One week's classification of one originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeeklyVote {
    /// The originator.
    pub originator: Ipv4Addr,
    /// Week index.
    pub week: usize,
    /// Assigned class.
    pub class: ApplicationClass,
    /// Footprint that week (unique queriers), for the q threshold.
    pub queriers: usize,
}

/// Compute `r` per originator over all votes, keeping originators with
/// at least `min_weeks` votes whose *every* counted vote has ≥ `q`
/// queriers.
///
/// Returns `(originator, r, majority_class, weeks)` tuples.
pub fn consistency_ratios(
    votes: &[WeeklyVote],
    q: usize,
    min_weeks: usize,
) -> Vec<(Ipv4Addr, f64, ApplicationClass, usize)> {
    let mut per_orig: BTreeMap<Ipv4Addr, Vec<ApplicationClass>> = BTreeMap::new();
    for v in votes {
        if v.queriers >= q {
            per_orig.entry(v.originator).or_default().push(v.class);
        }
    }
    per_orig
        .into_iter()
        .filter(|(_, classes)| classes.len() >= min_weeks)
        .map(|(ip, classes)| {
            let mut counts: BTreeMap<ApplicationClass, usize> = BTreeMap::new();
            for c in &classes {
                *counts.entry(*c).or_insert(0) += 1;
            }
            let (majority, n) =
                counts.into_iter().max_by_key(|(_, n)| *n).expect("non-empty votes");
            (ip, n as f64 / classes.len() as f64, majority, classes.len())
        })
        .collect()
}

/// Normalized Shannon entropy of one originator's class votes, in
/// `[0, 1]` (0 = one class only, 1 = uniform over observed classes).
///
/// §V-E uses this to check the plurality cases: "we find that usually
/// there is a single dominant class and multiple others, not two nearly
/// equally common classes" — i.e. low entropy even when r ≤ 0.5.
pub fn vote_entropy(votes: &[WeeklyVote], originator: Ipv4Addr, q: usize) -> Option<f64> {
    let classes: Vec<ApplicationClass> = votes
        .iter()
        .filter(|v| v.originator == originator && v.queriers >= q)
        .map(|v| v.class)
        .collect();
    if classes.len() < 2 {
        return None;
    }
    let mut counts: BTreeMap<ApplicationClass, usize> = BTreeMap::new();
    for c in &classes {
        *counts.entry(*c).or_insert(0) += 1;
    }
    if counts.len() < 2 {
        return Some(0.0);
    }
    let n = classes.len() as f64;
    let h: f64 = counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();
    Some(h / (counts.len() as f64).ln())
}

/// The cumulative distribution of `r` values: sorted `(r, cdf)` points.
pub fn consistency_cdf(ratios: &[f64]) -> Vec<(f64, f64)> {
    if ratios.is_empty() {
        return Vec::new();
    }
    let mut sorted = ratios.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let n = sorted.len() as f64;
    sorted.iter().enumerate().map(|(i, r)| (*r, (i + 1) as f64 / n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vote(ip: &str, week: usize, class: ApplicationClass, q: usize) -> WeeklyVote {
        WeeklyVote { originator: ip.parse().unwrap(), week, class, queriers: q }
    }

    #[test]
    fn perfectly_consistent_originator_has_r_one() {
        let votes: Vec<WeeklyVote> =
            (0..8).map(|w| vote("10.0.0.1", w, ApplicationClass::Scan, 30)).collect();
        let r = consistency_ratios(&votes, 20, 4);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, 1.0);
        assert_eq!(r[0].2, ApplicationClass::Scan);
        assert_eq!(r[0].3, 8);
    }

    #[test]
    fn split_votes_give_fractional_r() {
        let mut votes = Vec::new();
        for w in 0..6 {
            let class = if w < 4 { ApplicationClass::Spam } else { ApplicationClass::Mail };
            votes.push(vote("10.0.0.2", w, class, 25));
        }
        let r = consistency_ratios(&votes, 20, 4);
        assert_eq!(r.len(), 1);
        assert!((r[0].1 - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(r[0].2, ApplicationClass::Spam);
    }

    #[test]
    fn q_threshold_filters_low_footprint_weeks() {
        let mut votes = Vec::new();
        for w in 0..6 {
            votes.push(vote("10.0.0.3", w, ApplicationClass::Scan, if w < 3 { 100 } else { 10 }));
        }
        // With q=50 only 3 weeks count — below min_weeks=4.
        assert!(consistency_ratios(&votes, 50, 4).is_empty());
        // With q=5 all 6 weeks count.
        assert_eq!(consistency_ratios(&votes, 5, 4).len(), 1);
    }

    #[test]
    fn min_weeks_excludes_sparse_originators() {
        let votes = vec![
            vote("10.0.0.4", 0, ApplicationClass::Cdn, 30),
            vote("10.0.0.4", 1, ApplicationClass::Cdn, 30),
        ];
        assert!(consistency_ratios(&votes, 20, 4).is_empty());
        assert_eq!(consistency_ratios(&votes, 20, 2).len(), 1);
    }

    #[test]
    fn vote_entropy_reflects_dominance() {
        // 6 scan, 1 spam, 1 mail: dominant class, low entropy.
        let mut votes = Vec::new();
        for w in 0..6 {
            votes.push(vote("10.0.0.5", w, ApplicationClass::Scan, 30));
        }
        votes.push(vote("10.0.0.5", 6, ApplicationClass::Spam, 30));
        votes.push(vote("10.0.0.5", 7, ApplicationClass::Mail, 30));
        let dominant = vote_entropy(&votes, "10.0.0.5".parse().unwrap(), 20).unwrap();

        // 4 scan, 4 spam: two equal classes, maximal entropy.
        let mut even = Vec::new();
        for w in 0..4 {
            even.push(vote("10.0.0.6", w, ApplicationClass::Scan, 30));
            even.push(vote("10.0.0.6", w + 4, ApplicationClass::Spam, 30));
        }
        let balanced = vote_entropy(&even, "10.0.0.6".parse().unwrap(), 20).unwrap();
        assert!(dominant < balanced, "dominant {dominant} vs balanced {balanced}");
        assert!((balanced - 1.0).abs() < 1e-12, "two equal classes → entropy 1");

        // Single-vote or unknown originators: undefined.
        assert!(vote_entropy(&votes, "10.0.0.99".parse().unwrap(), 20).is_none());
        // All same class → zero.
        let same: Vec<WeeklyVote> =
            (0..5).map(|w| vote("10.0.0.7", w, ApplicationClass::Cdn, 30)).collect();
        assert_eq!(vote_entropy(&same, "10.0.0.7".parse().unwrap(), 20), Some(0.0));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let ratios = [0.5, 1.0, 0.75, 0.5, 1.0];
        let cdf = consistency_cdf(&ratios);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!(consistency_cdf(&[]).is_empty());
    }
}
