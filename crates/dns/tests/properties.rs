//! Property-based tests for the DNS substrate.

use bs_dns::message::{Message, QType, Rcode, RecordData, ResourceRecord};
use bs_dns::name::{DomainName, Label};
use bs_dns::reverse::{parse_reverse_v4, reverse_name, ReverseZone};
use bs_dns::{Cache, CacheConfig, CacheOutcome, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9_-]{0,20}[a-z0-9])?").unwrap()
}

fn arb_name() -> impl Strategy<Value = DomainName> {
    proptest::collection::vec(arb_label(), 0..6).prop_map(|labels| {
        let labels = labels.into_iter().map(|l| Label::new(&l).unwrap()).collect();
        DomainName::from_labels(labels).unwrap()
    })
}

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    /// reverse_name is a left inverse of parse_reverse_v4 for every address.
    #[test]
    fn reverse_name_round_trips(addr in arb_addr()) {
        prop_assert_eq!(parse_reverse_v4(&reverse_name(addr)), Some(addr));
    }

    /// IPv6 reverse names round-trip for every address.
    #[test]
    fn reverse_v6_round_trips(raw in any::<u128>()) {
        let addr = std::net::Ipv6Addr::from(raw);
        prop_assert_eq!(
            bs_dns::reverse::parse_reverse_v6(&bs_dns::reverse::reverse_name_v6(addr)),
            Some(addr)
        );
    }

    /// Name parse/display round-trips for arbitrary valid names.
    #[test]
    fn name_display_parse_round_trips(name in arb_name()) {
        let s = name.to_string();
        prop_assert_eq!(DomainName::parse(&s).unwrap(), name);
    }

    /// Every name is a subdomain of each of its ancestors.
    #[test]
    fn ancestors_contain_name(name in arb_name()) {
        let mut anc = Some(name.clone());
        while let Some(a) = anc {
            prop_assert!(name.is_subdomain_of(&a));
            anc = a.parent();
        }
    }

    /// Wire round-trip for arbitrary PTR queries.
    #[test]
    fn query_wire_round_trips(addr in arb_addr(), id in any::<u16>()) {
        let q = Message::query(id, reverse_name(addr), QType::Ptr);
        let decoded = Message::decode(&q.encode()).unwrap();
        prop_assert_eq!(decoded, q);
    }

    /// Wire round-trip for responses carrying PTR answers with arbitrary
    /// targets and TTLs.
    #[test]
    fn response_wire_round_trips(
        addr in arb_addr(),
        target in arb_name(),
        ttl in any::<u32>(),
        nx in any::<bool>(),
    ) {
        let q = Message::query(7, reverse_name(addr), QType::Ptr);
        let answers = if nx {
            vec![]
        } else {
            vec![ResourceRecord { name: q.questions[0].qname.clone(), ttl, data: RecordData::Ptr(target) }]
        };
        let rcode = if nx { Rcode::NxDomain } else { Rcode::NoError };
        let r = Message::response(&q, rcode, answers);
        let decoded = Message::decode(&r.encode()).unwrap();
        prop_assert_eq!(decoded, r);
    }

    /// The decoder never panics on arbitrary byte soup.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// A cache never serves an entry at or past its expiry, and always
    /// serves it before.
    #[test]
    fn cache_respects_ttl(addr in arb_addr(), ttl in 1u32..10_000, probe in 0u64..20_000) {
        let mut c = Cache::new(CacheConfig::default());
        let n = reverse_name(addr);
        let t = DomainName::parse("x.example.com").unwrap();
        c.insert_positive(&n, QType::Ptr, t.clone(), ttl, SimTime(0));
        let got = c.lookup(&n, QType::Ptr, SimTime(probe));
        if probe < ttl as u64 {
            prop_assert_eq!(got, CacheOutcome::Positive(t));
        } else {
            prop_assert_eq!(got, CacheOutcome::Miss);
        }
    }

    /// Zone containment is consistent: an address is in a /24 zone iff it
    /// shares the top three octets, and any covering zone also contains it.
    #[test]
    fn zone_containment_consistent(addr in arb_addr()) {
        let z24 = ReverseZone::new(addr, 24).unwrap();
        let z16 = ReverseZone::new(addr, 16).unwrap();
        let z8 = ReverseZone::new(addr, 8).unwrap();
        prop_assert!(z24.contains(addr));
        prop_assert!(z16.contains(addr));
        prop_assert!(z8.contains(addr));
        prop_assert!(z8.covers_zone(&z16));
        prop_assert!(z16.covers_zone(&z24));
        prop_assert!(ReverseZone::whole_tree().covers_zone(&z8));
        let o = addr.octets();
        let sibling = Ipv4Addr::new(o[0], o[1], o[2].wrapping_add(1), o[3]);
        prop_assert!(!z24.contains(sibling));
    }
}
