//! Domain names.
//!
//! A [`DomainName`] is an ordered sequence of [`Label`]s, stored
//! left-to-right (host-most label first), excluding the implicit root
//! label. Names compare case-insensitively, as required by RFC 1035 §2.3.3
//! and relied on throughout the sensor's keyword matching.
//!
//! Length limits (labels ≤ 63 bytes, whole name ≤ 255 bytes on the wire)
//! are enforced at construction time so that invalid names cannot exist.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum length of a single label in bytes (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;

/// Maximum wire length of a whole name in bytes, including length octets
/// and the terminating root byte (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Errors from constructing names or labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (only the root label may be empty, and it is
    /// implicit).
    EmptyLabel,
    /// A label exceeded [`MAX_LABEL_LEN`] bytes.
    LabelTooLong(usize),
    /// The whole name exceeded [`MAX_NAME_LEN`] bytes in wire form.
    NameTooLong(usize),
    /// A label contained a byte we do not accept (we allow ASCII
    /// letters, digits, `-` and `_`; `_` occurs in real reverse trees).
    BadCharacter(char),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(n) => write!(f, "label of {n} bytes exceeds 63"),
            NameError::NameTooLong(n) => write!(f, "name of {n} wire bytes exceeds 255"),
            NameError::BadCharacter(c) => write!(f, "character {c:?} not allowed in a label"),
        }
    }
}

impl std::error::Error for NameError {}

/// A single DNS label: 1–63 bytes of `[A-Za-z0-9_-]`, compared
/// case-insensitively.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct Label(String);

impl Label {
    /// Construct a label, validating length and character set.
    pub fn new(s: &str) -> Result<Self, NameError> {
        if s.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if s.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(s.len()));
        }
        for c in s.chars() {
            if !(c.is_ascii_alphanumeric() || c == '-' || c == '_') {
                return Err(NameError::BadCharacter(c));
            }
        }
        Ok(Label(s.to_string()))
    }

    /// The label text as given (original case preserved).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The label lowercased, for canonical comparison and keyword matching.
    pub fn to_lowercase(&self) -> String {
        self.0.to_ascii_lowercase()
    }

    /// Wire length: one length octet plus the label bytes.
    pub fn wire_len(&self) -> usize {
        1 + self.0.len()
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_ignore_ascii_case(&other.0)
    }
}

impl std::hash::Hash for Label {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for b in self.0.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A fully-qualified domain name (without the trailing dot).
///
/// The empty sequence of labels is the DNS root. Labels are ordered
/// host-first: `mail.example.com` is `["mail", "example", "com"]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DomainName {
    labels: Vec<Label>,
}

impl DomainName {
    /// The DNS root (zero labels).
    pub fn root() -> Self {
        DomainName { labels: Vec::new() }
    }

    /// Build a name from pre-validated labels.
    ///
    /// Fails if the resulting name would exceed the 255-byte wire limit.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, NameError> {
        let name = DomainName { labels };
        let wl = name.wire_len();
        if wl > MAX_NAME_LEN {
            return Err(NameError::NameTooLong(wl));
        }
        Ok(name)
    }

    /// Parse a dotted name such as `"mail.example.com"`.
    ///
    /// An empty string or `"."` parses as the root. A single trailing dot
    /// is accepted and ignored.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Self::root());
        }
        let labels = s.split('.').map(Label::new).collect::<Result<Vec<_>, _>>()?;
        Self::from_labels(labels)
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the DNS root.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels, host-most first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The left-most (host-most) label, if any.
    ///
    /// The sensor's static-feature matcher favours this label: the paper
    /// classifies `mail.ns.example.com` as `mail`, not `ns`.
    pub fn leftmost(&self) -> Option<&Label> {
        self.labels.first()
    }

    /// Wire length: sum of label wire lengths plus the terminating root
    /// octet.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(Label::wire_len).sum::<usize>() + 1
    }

    /// The parent name (all but the left-most label); `None` at the root.
    pub fn parent(&self) -> Option<DomainName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DomainName { labels: self.labels[1..].to_vec() })
        }
    }

    /// True if `self` equals `suffix` or ends with `suffix`'s labels.
    ///
    /// Every name is a subdomain of the root. Comparison is
    /// case-insensitive. `example.com` is a subdomain of `com` and of
    /// itself, but not of `ample.com`.
    pub fn is_subdomain_of(&self, suffix: &DomainName) -> bool {
        if suffix.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - suffix.labels.len();
        self.labels[skip..].iter().zip(suffix.labels.iter()).all(|(a, b)| a == b)
    }

    /// Prepend a label, producing a child name.
    pub fn child(&self, label: Label) -> Result<DomainName, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label);
        labels.extend(self.labels.iter().cloned());
        DomainName::from_labels(labels)
    }

    /// Lowercased dotted representation, for canonical map keys.
    pub fn to_lowercase_string(&self) -> String {
        if self.is_root() {
            return ".".to_string();
        }
        let mut out = String::with_capacity(self.wire_len());
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            out.push_str(&l.to_lowercase());
        }
        out
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl FromStr for DomainName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["mail.example.com", "a.b.c.d.e", "x", "ns1-cache.isp.net", "4.3.2.1.in-addr.arpa"]
        {
            let n = DomainName::parse(s).unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn root_forms() {
        assert!(DomainName::parse("").unwrap().is_root());
        assert!(DomainName::parse(".").unwrap().is_root());
        assert_eq!(DomainName::root().to_string(), ".");
        assert_eq!(DomainName::root().wire_len(), 1);
    }

    #[test]
    fn trailing_dot_accepted() {
        let a = DomainName::parse("example.com.").unwrap();
        let b = DomainName::parse("example.com").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        let a = DomainName::parse("Mail.EXAMPLE.com").unwrap();
        let b = DomainName::parse("mail.example.COM").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn label_validation() {
        assert!(Label::new("").is_err());
        assert!(Label::new(&"a".repeat(63)).is_ok());
        assert!(Label::new(&"a".repeat(64)).is_err());
        assert!(Label::new("with space").is_err());
        assert!(Label::new("ok-label_1").is_ok());
        assert!(matches!(Label::new("é"), Err(NameError::BadCharacter(_))));
    }

    #[test]
    fn name_length_limit() {
        // 4 labels of 63 bytes = 4*64 + 1 = 257 wire bytes > 255.
        let l = "a".repeat(63);
        let long = format!("{l}.{l}.{l}.{l}");
        assert!(matches!(DomainName::parse(&long), Err(NameError::NameTooLong(_))));
        // 3 labels of 63 + one of 61 = 3*64 + 62 + 1 = 255: exactly at limit.
        let ok = format!("{l}.{l}.{l}.{}", "a".repeat(61));
        assert!(DomainName::parse(&ok).is_ok());
    }

    #[test]
    fn subdomain_relation() {
        let n = DomainName::parse("mail.example.com").unwrap();
        let com = DomainName::parse("com").unwrap();
        let example = DomainName::parse("example.com").unwrap();
        let other = DomainName::parse("ample.com").unwrap();
        assert!(n.is_subdomain_of(&com));
        assert!(n.is_subdomain_of(&example));
        assert!(n.is_subdomain_of(&n));
        assert!(n.is_subdomain_of(&DomainName::root()));
        assert!(!n.is_subdomain_of(&other));
        assert!(!example.is_subdomain_of(&n));
    }

    #[test]
    fn leftmost_and_parent() {
        let n = DomainName::parse("mail.ns.example.com").unwrap();
        assert_eq!(n.leftmost().unwrap().as_str(), "mail");
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "ns.example.com");
        assert!(DomainName::root().parent().is_none());
    }

    #[test]
    fn child_builds_fqdn() {
        let base = DomainName::parse("example.com").unwrap();
        let c = base.child(Label::new("www").unwrap()).unwrap();
        assert_eq!(c.to_string(), "www.example.com");
    }

    #[test]
    fn lowercase_string_is_canonical() {
        let n = DomainName::parse("MaIl.Example.COM").unwrap();
        assert_eq!(n.to_lowercase_string(), "mail.example.com");
    }
}
