//! DNS substrate for the `dns-backscatter` system.
//!
//! This crate implements the slice of the DNS that the backscatter sensor
//! depends on: domain names and their syntax rules, the reverse
//! (`in-addr.arpa`) namespace, query/response messages with an RFC 1035
//! wire codec (including name compression), and a TTL-driven resolver
//! cache with negative caching.
//!
//! The backscatter paper observes *reverse DNS queries* (`QTYPE = PTR`
//! against `in-addr.arpa`) arriving at authoritative servers. Everything
//! in this crate exists so the simulator in `bs-netsim` can move those
//! queries through a realistic resolver hierarchy, and so the sensor in
//! `bs-sensor` can parse what arrives.
//!
//! # Design notes
//!
//! * **Simulated time.** All TTL arithmetic runs on [`SimTime`], an
//!   integer count of seconds since the start of a simulation. Nothing in
//!   this crate reads a wall clock, which keeps every experiment
//!   deterministic and replayable.
//! * **No I/O.** The wire codec encodes to and decodes from byte buffers
//!   only. Transport is the simulator's job.
//! * **Strictness.** Name length limits (63-byte labels, 255-byte names)
//!   are enforced at construction so invalid names are unrepresentable.
//!
//! # Example
//!
//! ```
//! use bs_dns::{reverse::reverse_name, name::DomainName, message::{Message, QType}};
//!
//! // The PTR query a firewall sends when it logs a probe from 192.0.2.77:
//! let qname = reverse_name("192.0.2.77".parse().unwrap());
//! assert_eq!(qname.to_string(), "77.2.0.192.in-addr.arpa");
//!
//! let query = Message::query(0x1234, qname, QType::Ptr);
//! let bytes = query.encode();
//! let decoded = Message::decode(&bytes).unwrap();
//! assert_eq!(decoded, query);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod message;
pub mod name;
pub mod reverse;
pub mod time;
pub mod wire;

pub use cache::{Cache, CacheConfig, CacheOutcome, CacheStats};
pub use message::{Message, QClass, QType, Rcode, RecordData, ResourceRecord};
pub use name::{DomainName, Label, NameError};
pub use reverse::{parse_reverse_v4, parse_reverse_v6, reverse_name, reverse_name_v6, ReverseZone};
pub use time::{SimDuration, SimTime};
