//! Simulated time.
//!
//! Every component of the backscatter system — resolver caches, diurnal
//! activity models, the sensor's 30-second deduplication window — measures
//! time in whole seconds since the start of a simulation scenario. Using a
//! dedicated newtype instead of `std::time` keeps simulations deterministic
//! (no wall clock anywhere) and makes unit confusion a type error.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time: seconds since the scenario epoch.
///
/// The scenario epoch is whatever instant a dataset generator declares as
/// second zero (e.g. `2014-04-15 11:00 UTC` for the JP-ditl replica).
/// Ordering and arithmetic behave like plain integers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The scenario epoch (second zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since the scenario epoch.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Construct from a count of whole minutes.
    #[inline]
    pub fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60)
    }

    /// Construct from a count of whole hours.
    #[inline]
    pub fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3600)
    }

    /// Construct from a count of whole days.
    #[inline]
    pub fn from_days(days: u64) -> Self {
        SimTime(days * 86_400)
    }

    /// The day index (0-based) this instant falls in.
    #[inline]
    pub fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// The second-of-day in `[0, 86_400)`.
    #[inline]
    pub fn second_of_day(self) -> u64 {
        self.0 % 86_400
    }

    /// The hour-of-day in `[0, 24)`, useful for diurnal models.
    #[inline]
    pub fn hour_of_day(self) -> u64 {
        self.second_of_day() / 3600
    }

    /// The week index (0-based, 7-day weeks from the epoch).
    #[inline]
    pub fn week(self) -> u64 {
        self.0 / (7 * 86_400)
    }

    /// Saturating subtraction; clamps at the epoch.
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Span of `secs` seconds.
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Span of `mins` minutes.
    #[inline]
    pub fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Span of `hours` hours.
    #[inline]
    pub fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// Span of `days` days.
    #[inline]
    pub fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// The span in whole seconds.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day(),
            self.hour_of_day(),
            (self.second_of_day() / 60) % 60,
            self.second_of_day() % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_days(2).secs(), 172_800);
        assert_eq!(SimTime::from_hours(3).secs(), 10_800);
        assert_eq!(SimTime::from_mins(5).secs(), 300);
        let t = SimTime::from_days(1) + SimDuration::from_hours(13) + SimDuration::from_mins(30);
        assert_eq!(t.day(), 1);
        assert_eq!(t.hour_of_day(), 13);
        assert_eq!(t.second_of_day(), 13 * 3600 + 30 * 60);
    }

    #[test]
    fn week_index() {
        assert_eq!(SimTime::from_days(6).week(), 0);
        assert_eq!(SimTime::from_days(7).week(), 1);
        assert_eq!(SimTime::from_days(20).week(), 2);
    }

    #[test]
    fn arithmetic_saturates_at_epoch() {
        let t = SimTime(10);
        assert_eq!(t.saturating_sub(SimDuration(20)), SimTime::ZERO);
        assert_eq!(SimTime(5) - SimTime(9), SimDuration::ZERO);
        assert_eq!(SimTime(9) - SimTime(5), SimDuration(4));
    }

    #[test]
    fn since_behaves_like_sub() {
        assert_eq!(SimTime(100).since(SimTime(40)), SimDuration(60));
        assert_eq!(SimTime(40).since(SimTime(100)), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(3) + SimDuration::from_secs(3723);
        assert_eq!(t.to_string(), "d3+01:02:03");
        assert_eq!(SimDuration::from_mins(2).to_string(), "120s");
    }
}
