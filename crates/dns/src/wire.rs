//! RFC 1035 wire codec.
//!
//! Encodes and decodes [`Message`]s to the standard binary format,
//! including name compression (§4.1.4) on both paths. The decoder is
//! defensive: truncated buffers, unknown type codes, compression-pointer
//! loops, and over-long names all produce a typed [`WireError`] instead
//! of a panic, because the sensor must survive malformed packets.

use crate::message::{Message, QClass, QType, Question, Rcode, RecordData, ResourceRecord};
use crate::name::{DomainName, Label, MAX_NAME_LEN};
use bytes::{Buf, BufMut, BytesMut};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure did.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label length byte used the reserved `0b10`/`0b01` prefixes.
    BadLabelType(u8),
    /// A decoded name exceeded the 255-byte limit.
    NameTooLong,
    /// A label contained invalid characters.
    BadLabel,
    /// Unknown TYPE code in a question or record.
    UnknownType(u16),
    /// Unknown CLASS code.
    UnknownClass(u16),
    /// Unknown RCODE.
    UnknownRcode(u8),
    /// RDLENGTH disagreed with the actual RDATA size.
    BadRdLength,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabelType(b) => write!(f, "reserved label type byte {b:#04x}"),
            WireError::NameTooLong => write!(f, "decoded name exceeds 255 bytes"),
            WireError::BadLabel => write!(f, "label contains invalid bytes"),
            WireError::UnknownType(t) => write!(f, "unknown TYPE {t}"),
            WireError::UnknownClass(c) => write!(f, "unknown CLASS {c}"),
            WireError::UnknownRcode(r) => write!(f, "unknown RCODE {r}"),
            WireError::BadRdLength => write!(f, "RDLENGTH mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Incremental encoder with name compression.
struct Encoder {
    buf: BytesMut,
    /// Lowercased dotted name → offset of its first encoding.
    seen: HashMap<String, u16>,
}

impl Encoder {
    fn new() -> Self {
        Encoder { buf: BytesMut::with_capacity(512), seen: HashMap::new() }
    }

    fn put_name(&mut self, name: &DomainName) {
        // Emit labels until we hit a suffix we've already encoded, then a
        // pointer; record offsets of each new suffix for later reuse.
        let mut suffix = name.clone();
        loop {
            if suffix.is_root() {
                self.buf.put_u8(0);
                return;
            }
            let key = suffix.to_lowercase_string();
            if let Some(&off) = self.seen.get(&key) {
                self.buf.put_u16(0xC000 | off);
                return;
            }
            let off = self.buf.len();
            // Pointers only address the first 16 KiB - offsets beyond
            // 0x3FFF are not recorded (messages we build never get there,
            // but stay correct if they do).
            if off <= 0x3FFF {
                self.seen.insert(key, off as u16);
            }
            let label = suffix.labels()[0].clone();
            self.buf.put_u8(label.as_str().len() as u8);
            self.buf.put_slice(label.as_str().as_bytes());
            suffix = suffix.parent().expect("non-root has parent");
        }
    }

    fn put_question(&mut self, q: &Question) {
        self.put_name(&q.qname);
        self.buf.put_u16(q.qtype.code());
        self.buf.put_u16(q.qclass.code());
    }

    fn put_record(&mut self, rr: &ResourceRecord) {
        self.put_name(&rr.name);
        self.buf.put_u16(rr.data.qtype().code());
        self.buf.put_u16(QClass::In.code());
        self.buf.put_u32(rr.ttl);
        // Reserve RDLENGTH, encode RDATA, then backfill.
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let start = self.buf.len();
        match &rr.data {
            RecordData::A(a) => self.buf.put_slice(&a.octets()),
            RecordData::Ns(n) | RecordData::Cname(n) | RecordData::Ptr(n) => self.put_name(n),
            RecordData::Soa { mname, rname, serial, minimum } => {
                self.put_name(mname);
                self.put_name(rname);
                self.buf.put_u32(*serial);
                self.buf.put_u32(0); // refresh
                self.buf.put_u32(0); // retry
                self.buf.put_u32(0); // expire
                self.buf.put_u32(*minimum);
            }
        }
        let rdlen = (self.buf.len() - start) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }
}

impl Message {
    /// Encode to wire format with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.buf.put_u16(self.id);
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000;
        }
        // OPCODE 0 (standard query) always.
        if self.authoritative {
            flags |= 0x0400;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        if self.recursion_available {
            flags |= 0x0080;
        }
        flags |= self.rcode.code() as u16;
        e.buf.put_u16(flags);
        e.buf.put_u16(self.questions.len() as u16);
        e.buf.put_u16(self.answers.len() as u16);
        e.buf.put_u16(self.authority.len() as u16);
        e.buf.put_u16(self.additional.len() as u16);
        for q in &self.questions {
            e.put_question(q);
        }
        for rr in &self.answers {
            e.put_record(rr);
        }
        for rr in &self.authority {
            e.put_record(rr);
        }
        for rr in &self.additional {
            e.put_record(rr);
        }
        bs_telemetry::counter_add("dns.wire.encoded", 1);
        e.buf.to_vec()
    }

    /// Decode from wire format.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder { full: bytes, cur: bytes };
        let msg = d.message();
        if msg.is_ok() {
            bs_telemetry::counter_add("dns.wire.decoded", 1);
        } else {
            bs_telemetry::counter_add("dns.wire.decode_errors", 1);
        }
        msg
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    full: &'a [u8],
    cur: &'a [u8],
}

impl<'a> Decoder<'a> {
    fn pos(&self) -> usize {
        self.full.len() - self.cur.len()
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.cur.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        Ok(self.cur.get_u16())
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.cur.get_u32())
    }

    /// Decode a (possibly compressed) name starting at the cursor.
    fn name(&mut self) -> Result<DomainName, WireError> {
        let mut labels: Vec<Label> = Vec::new();
        let mut wire_len = 1usize; // terminating root byte
                                   // Follow the label chain; once we take a pointer we read from
                                   // `full` at decreasing offsets only, bounding the walk.
        let mut jumped = false;
        let mut limit_pos = self.pos(); // pointers must target strictly before here
        let mut view: &[u8] = self.cur;
        loop {
            if view.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            let len = view.get_u8();
            if !jumped {
                self.cur = view; // keep cursor in sync until first jump
            }
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        break;
                    }
                    let n = len as usize;
                    if view.remaining() < n {
                        return Err(WireError::Truncated);
                    }
                    let raw = &view[..n];
                    view.advance(n);
                    if !jumped {
                        self.cur = view;
                    }
                    wire_len += 1 + n;
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    let s = std::str::from_utf8(raw).map_err(|_| WireError::BadLabel)?;
                    labels.push(Label::new(s).map_err(|_| WireError::BadLabel)?);
                }
                0xC0 => {
                    if view.remaining() < 1 {
                        return Err(WireError::Truncated);
                    }
                    let lo = view.get_u8();
                    if !jumped {
                        self.cur = view;
                    }
                    let target = ((len as usize & 0x3F) << 8) | lo as usize;
                    // Pointers must point strictly backwards; this both
                    // matches RFC practice and rules out loops.
                    if target >= limit_pos {
                        return Err(WireError::BadPointer);
                    }
                    limit_pos = target;
                    view = &self.full[target..];
                    jumped = true;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }
        DomainName::from_labels(labels).map_err(|_| WireError::NameTooLong)
    }

    fn question(&mut self) -> Result<Question, WireError> {
        let qname = self.name()?;
        let t = self.u16()?;
        let c = self.u16()?;
        Ok(Question {
            qname,
            qtype: QType::from_code(t).ok_or(WireError::UnknownType(t))?,
            qclass: QClass::from_code(c).ok_or(WireError::UnknownClass(c))?,
        })
    }

    fn record(&mut self) -> Result<ResourceRecord, WireError> {
        let name = self.name()?;
        let t = self.u16()?;
        let _class = self.u16()?;
        let ttl = self.u32()?;
        let rdlen = self.u16()? as usize;
        self.need(rdlen)?;
        let rd_end = self.pos() + rdlen;
        let qtype = QType::from_code(t).ok_or(WireError::UnknownType(t))?;
        let data = match qtype {
            QType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdLength);
                }
                let mut o = [0u8; 4];
                o.copy_from_slice(&self.cur[..4]);
                self.cur.advance(4);
                RecordData::A(Ipv4Addr::from(o))
            }
            QType::Ns => RecordData::Ns(self.name()?),
            QType::Cname => RecordData::Cname(self.name()?),
            QType::Ptr => RecordData::Ptr(self.name()?),
            QType::Soa => {
                let mname = self.name()?;
                let rname = self.name()?;
                let serial = self.u32()?;
                let _refresh = self.u32()?;
                let _retry = self.u32()?;
                let _expire = self.u32()?;
                let minimum = self.u32()?;
                RecordData::Soa { mname, rname, serial, minimum }
            }
            other => return Err(WireError::UnknownType(other.code())),
        };
        if self.pos() != rd_end {
            return Err(WireError::BadRdLength);
        }
        Ok(ResourceRecord { name, ttl, data })
    }

    fn message(&mut self) -> Result<Message, WireError> {
        let id = self.u16()?;
        let flags = self.u16()?;
        let rcode_raw = (flags & 0x000F) as u8;
        let qd = self.u16()? as usize;
        let an = self.u16()? as usize;
        let ns = self.u16()? as usize;
        let ar = self.u16()? as usize;
        let mut questions = Vec::with_capacity(qd.min(16));
        for _ in 0..qd {
            questions.push(self.question()?);
        }
        let section = |n: usize, d: &mut Self| -> Result<Vec<ResourceRecord>, WireError> {
            let mut v = Vec::with_capacity(n.min(32));
            for _ in 0..n {
                v.push(d.record()?);
            }
            Ok(v)
        };
        let answers = section(an, self)?;
        let authority = section(ns, self)?;
        let additional = section(ar, self)?;
        Ok(Message {
            id,
            is_response: flags & 0x8000 != 0,
            authoritative: flags & 0x0400 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            rcode: Rcode::from_code(rcode_raw).ok_or(WireError::UnknownRcode(rcode_raw))?,
            questions,
            answers,
            authority,
            additional,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::reverse_name;

    fn sample_response() -> Message {
        let q = Message::query(0xBEEF, reverse_name("192.0.2.77".parse().unwrap()), QType::Ptr);
        let mut r = Message::response(
            &q,
            Rcode::NoError,
            vec![ResourceRecord {
                name: q.questions[0].qname.clone(),
                ttl: 3600,
                data: RecordData::Ptr(DomainName::parse("fw1.example.com").unwrap()),
            }],
        );
        r.authority.push(ResourceRecord {
            name: DomainName::parse("2.0.192.in-addr.arpa").unwrap(),
            ttl: 900,
            data: RecordData::Ns(DomainName::parse("ns.example.com").unwrap()),
        });
        r.additional.push(ResourceRecord {
            name: DomainName::parse("ns.example.com").unwrap(),
            ttl: 900,
            data: RecordData::A("192.0.2.53".parse().unwrap()),
        });
        r
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(1, reverse_name("10.9.8.7".parse().unwrap()), QType::Ptr);
        let bytes = q.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), q);
    }

    #[test]
    fn full_response_round_trip() {
        let r = sample_response();
        let bytes = r.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn soa_negative_answer_round_trip() {
        let q = Message::query(9, reverse_name("198.51.100.1".parse().unwrap()), QType::Ptr);
        let mut r = Message::response(&q, Rcode::NxDomain, vec![]);
        r.authority.push(ResourceRecord {
            name: DomainName::parse("100.51.198.in-addr.arpa").unwrap(),
            ttl: 600,
            data: RecordData::Soa {
                mname: DomainName::parse("ns.example.net").unwrap(),
                rname: DomainName::parse("hostmaster.example.net").unwrap(),
                serial: 2014041500,
                minimum: 900,
            },
        });
        let bytes = r.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let r = sample_response();
        let bytes = r.encode();
        // Sum of raw name bytes exceeds the compressed message body; a
        // crude but effective check: the QNAME appears once only.
        let needle = b"\x07in-addr\x04arpa"[..].to_vec();
        let count = bytes.windows(needle.len()).filter(|w| *w == &needle[..]).count();
        assert_eq!(count, 1, "in-addr.arpa should be encoded once and pointed to");
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let bytes = sample_response().encode();
        for cut in 0..bytes.len() {
            // Every strict prefix must fail (some suffix structures are
            // optional only when counts say so, which they don't here).
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes should not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_pointer_loops() {
        // Header with one question, then a name that points at itself.
        let mut bytes =
            vec![0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00];
        bytes.extend_from_slice(&[0xC0, 0x0C]); // pointer to offset 12 = itself
        bytes.extend_from_slice(&[0x00, 0x0C, 0x00, 0x01]);
        assert_eq!(Message::decode(&bytes), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_forward_pointers() {
        let mut bytes =
            vec![0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00];
        bytes.extend_from_slice(&[0xC0, 0x20]); // points past itself
        bytes.extend_from_slice(&[0x00, 0x0C, 0x00, 0x01]);
        bytes.resize(64, 0);
        assert_eq!(Message::decode(&bytes), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        let mut bytes =
            vec![0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00];
        bytes.push(0x80); // reserved 0b10 prefix
        bytes.extend_from_slice(&[0x00, 0x0C, 0x00, 0x01]);
        assert!(matches!(Message::decode(&bytes), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn flags_round_trip() {
        let mut m = Message::query(0xABCD, DomainName::parse("example.com").unwrap(), QType::A);
        m.is_response = true;
        m.authoritative = true;
        m.recursion_available = true;
        m.rcode = Rcode::Refused;
        let d = Message::decode(&m.encode()).unwrap();
        assert!(d.is_response && d.authoritative && d.recursion_available && d.recursion_desired);
        assert_eq!(d.rcode, Rcode::Refused);
        assert_eq!(d.id, 0xABCD);
    }
}
