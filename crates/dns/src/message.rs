//! DNS messages.
//!
//! A subset of RFC 1035 sufficient for reverse-DNS traffic: queries and
//! responses with a 12-byte header, question section, and resource
//! records carrying `A`, `PTR`, `NS`, `CNAME`, or `SOA` data. The paper's
//! sensor only ever inspects `PTR` questions, but authorities also emit
//! referrals (`NS`) and negative answers (`SOA` in the authority section),
//! so the simulator needs the rest.

use crate::name::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Query type (a subset of RR types plus `ANY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer — the reverse-DNS record type this whole
    /// system revolves around.
    Ptr,
    /// Mail exchanger.
    Mx,
    /// Text record.
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// Any type (`*`).
    Any,
}

impl QType {
    /// Wire value (RFC 1035 §3.2.2 / §3.2.3).
    pub fn code(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Ns => 2,
            QType::Cname => 5,
            QType::Soa => 6,
            QType::Ptr => 12,
            QType::Mx => 15,
            QType::Txt => 16,
            QType::Aaaa => 28,
            QType::Any => 255,
        }
    }

    /// Decode a wire value.
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => QType::A,
            2 => QType::Ns,
            5 => QType::Cname,
            6 => QType::Soa,
            12 => QType::Ptr,
            15 => QType::Mx,
            16 => QType::Txt,
            28 => QType::Aaaa,
            255 => QType::Any,
            _ => return None,
        })
    }
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QType::A => "A",
            QType::Ns => "NS",
            QType::Cname => "CNAME",
            QType::Soa => "SOA",
            QType::Ptr => "PTR",
            QType::Mx => "MX",
            QType::Txt => "TXT",
            QType::Aaaa => "AAAA",
            QType::Any => "ANY",
        };
        f.write_str(s)
    }
}

/// Query class. Only `IN` occurs in practice; we keep the field to stay
/// honest to the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QClass {
    /// The Internet.
    In,
    /// CHAOS (seen in `version.bind` probes).
    Ch,
}

impl QClass {
    /// Wire value.
    pub fn code(self) -> u16 {
        match self {
            QClass::In => 1,
            QClass::Ch => 3,
        }
    }

    /// Decode a wire value.
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => QClass::In,
            3 => QClass::Ch,
            _ => return None,
        })
    }
}

/// Response code (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure. The paper's querier feature `unreach` corresponds
    /// to authorities answering `SERVFAIL` or not at all.
    ServFail,
    /// Name does not exist. Drives the `nxdomain` static feature.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
}

impl Rcode {
    /// Wire value (low 4 bits of the header flags).
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    /// Decode a wire value.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => return None,
        })
    }
}

/// A question: name, type, class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// The name being asked about (for backscatter: a reverse name).
    pub qname: DomainName,
    /// The record type requested.
    pub qtype: QType,
    /// The class (`IN` everywhere that matters).
    pub qclass: QClass,
}

/// Typed record data for the RR types the simulator produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Name-server referral target.
    Ns(DomainName),
    /// Alias target.
    Cname(DomainName),
    /// Reverse-pointer target: the originator's domain name.
    Ptr(DomainName),
    /// Start of authority; carried on negative answers. `minimum` caps
    /// negative-cache TTLs (RFC 2308).
    Soa {
        /// Primary name server.
        mname: DomainName,
        /// Responsible mailbox, encoded as a name.
        rname: DomainName,
        /// Zone serial.
        serial: u32,
        /// Negative-caching TTL (the `MINIMUM` field).
        minimum: u32,
    },
}

impl RecordData {
    /// The RR type of this data.
    pub fn qtype(&self) -> QType {
        match self {
            RecordData::A(_) => QType::A,
            RecordData::Ns(_) => QType::Ns,
            RecordData::Cname(_) => QType::Cname,
            RecordData::Ptr(_) => QType::Ptr,
            RecordData::Soa { .. } => QType::Soa,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DomainName,
    /// Time to live in seconds. Authorities for fast-flux or ad-tracker
    /// names deliberately use tiny TTLs; the controlled-scan experiment
    /// uses zero to defeat caching.
    pub ttl: u32,
    /// The typed record data.
    pub data: RecordData,
}

/// A DNS message: header fields plus the four record sections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// True for responses (header QR bit).
    pub is_response: bool,
    /// Authoritative-answer bit.
    pub authoritative: bool,
    /// Recursion-desired bit (set by stub resolvers and queriers).
    pub recursion_desired: bool,
    /// Recursion-available bit (set by recursive resolvers).
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Questions (exactly one in all traffic we model).
    pub questions: Vec<Question>,
    /// Answer records.
    pub answers: Vec<ResourceRecord>,
    /// Authority records (referrals, SOAs on negative answers).
    pub authority: Vec<ResourceRecord>,
    /// Additional records (glue).
    pub additional: Vec<ResourceRecord>,
}

impl Message {
    /// Build a standard recursive query for `qname`/`qtype` in class `IN`.
    pub fn query(id: u16, qname: DomainName, qtype: QType) -> Self {
        Message {
            id,
            is_response: false,
            authoritative: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
            questions: vec![Question { qname, qtype, qclass: QClass::In }],
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Build a response to `query` with the given rcode and answers.
    pub fn response(query: &Message, rcode: Rcode, answers: Vec<ResourceRecord>) -> Self {
        Message {
            id: query.id,
            is_response: true,
            authoritative: true,
            recursion_desired: query.recursion_desired,
            recursion_available: false,
            rcode,
            questions: query.questions.clone(),
            answers,
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// The sole question, if the message has exactly one.
    pub fn question(&self) -> Option<&Question> {
        if self.questions.len() == 1 {
            self.questions.first()
        } else {
            None
        }
    }

    /// Is this a reverse (PTR-over-`in-addr.arpa`) query? This is the
    /// exact filter the paper applies at data collection (§III-A).
    pub fn is_reverse_query(&self) -> bool {
        !self.is_response
            && self.question().is_some_and(|q| {
                q.qtype == QType::Ptr && crate::reverse::parse_reverse_v4(&q.qname).is_some()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::reverse_name;

    #[test]
    fn qtype_codes_round_trip() {
        for qt in [
            QType::A,
            QType::Ns,
            QType::Cname,
            QType::Soa,
            QType::Ptr,
            QType::Mx,
            QType::Txt,
            QType::Aaaa,
            QType::Any,
        ] {
            assert_eq!(QType::from_code(qt.code()), Some(qt));
        }
        assert_eq!(QType::from_code(999), None);
        assert_eq!(QType::Ptr.code(), 12);
    }

    #[test]
    fn rcode_round_trip() {
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
        ] {
            assert_eq!(Rcode::from_code(rc.code()), Some(rc));
        }
        assert_eq!(Rcode::from_code(15), None);
    }

    #[test]
    fn reverse_query_detection() {
        let q = Message::query(1, reverse_name("1.2.3.4".parse().unwrap()), QType::Ptr);
        assert!(q.is_reverse_query());

        // Forward PTR-looking name is not a reverse query.
        let fwd = Message::query(2, DomainName::parse("mail.example.com").unwrap(), QType::Ptr);
        assert!(!fwd.is_reverse_query());

        // A query for an address (A record) is not reverse.
        let a = Message::query(3, DomainName::parse("mail.example.com").unwrap(), QType::A);
        assert!(!a.is_reverse_query());

        // Responses never count.
        let resp = Message::response(&q, Rcode::NoError, vec![]);
        assert!(!resp.is_reverse_query());
    }

    #[test]
    fn response_copies_question_and_id() {
        let q = Message::query(77, reverse_name("9.8.7.6".parse().unwrap()), QType::Ptr);
        let r = Message::response(&q, Rcode::NxDomain, vec![]);
        assert_eq!(r.id, 77);
        assert!(r.is_response);
        assert_eq!(r.questions, q.questions);
        assert_eq!(r.rcode, Rcode::NxDomain);
    }

    #[test]
    fn record_data_type_mapping() {
        assert_eq!(RecordData::A(Ipv4Addr::LOCALHOST).qtype(), QType::A);
        let n = DomainName::parse("ns.example.com").unwrap();
        assert_eq!(RecordData::Ns(n.clone()).qtype(), QType::Ns);
        assert_eq!(RecordData::Cname(n.clone()).qtype(), QType::Cname);
        assert_eq!(RecordData::Ptr(n.clone()).qtype(), QType::Ptr);
        assert_eq!(
            RecordData::Soa { mname: n.clone(), rname: n, serial: 1, minimum: 900 }.qtype(),
            QType::Soa
        );
    }
}
