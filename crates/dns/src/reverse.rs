//! The reverse (`in-addr.arpa`) namespace.
//!
//! Reverse DNS maps an IPv4 address back to a domain name: the address
//! `1.2.3.4` is looked up as a `PTR` query for `4.3.2.1.in-addr.arpa`.
//! The backscatter sensor identifies the *originator* of network-wide
//! activity from exactly this QNAME, and the simulated DNS hierarchy
//! delegates portions of the reverse tree ([`ReverseZone`]) to the
//! authorities that the paper instruments (root, national, final).

use crate::name::{DomainName, Label};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Build the reverse name for an IPv4 address:
/// `192.0.2.77` → `77.2.0.192.in-addr.arpa`.
pub fn reverse_name(addr: Ipv4Addr) -> DomainName {
    let o = addr.octets();
    // Labels are at most 3 digits and the whole name is far below the
    // 255-byte limit, so these constructions cannot fail.
    let labels = vec![
        Label::new(&o[3].to_string()).expect("octet label"),
        Label::new(&o[2].to_string()).expect("octet label"),
        Label::new(&o[1].to_string()).expect("octet label"),
        Label::new(&o[0].to_string()).expect("octet label"),
        Label::new("in-addr").expect("in-addr"),
        Label::new("arpa").expect("arpa"),
    ];
    DomainName::from_labels(labels).expect("reverse name fits")
}

/// Parse a (possibly partial) reverse name back to the IPv4 address it
/// refers to. Returns `None` unless the name is exactly a full 4-octet
/// reverse name under `in-addr.arpa`.
pub fn parse_reverse_v4(name: &DomainName) -> Option<Ipv4Addr> {
    let labels = name.labels();
    if labels.len() != 6 {
        return None;
    }
    if !labels[4].as_str().eq_ignore_ascii_case("in-addr")
        || !labels[5].as_str().eq_ignore_ascii_case("arpa")
    {
        return None;
    }
    let mut octets = [0u8; 4];
    for i in 0..4 {
        let s = labels[i].as_str();
        // Reject leading zeros ("01") and non-numeric labels outright;
        // real resolvers send them occasionally, but they never name a
        // canonical address.
        if s.len() > 1 && s.starts_with('0') {
            return None;
        }
        let v: u32 = s.parse().ok()?;
        if v > 255 {
            return None;
        }
        // QNAME is reversed: first label is the last octet.
        octets[3 - i] = v as u8;
    }
    Some(Ipv4Addr::from(octets))
}

/// Build the reverse name for an IPv6 address under `ip6.arpa`:
/// thirty-two nibble labels, least-significant first (RFC 3596 §2.5).
///
/// `2001:db8::1` →
/// `1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6.arpa`.
///
/// The paper's sensor is IPv4-only (its vantage points saw 2014-era
/// traffic), but the technique carries over directly: IPv6 backscatter
/// arrives as PTR queries against `ip6.arpa`, and — as the paper notes
/// when dismissing IPv6 darknets — passive backscatter is one of the
/// few network-wide sensors that still works in the huge v6 space.
pub fn reverse_name_v6(addr: Ipv6Addr) -> DomainName {
    let octets = addr.octets();
    let mut labels: Vec<Label> = Vec::with_capacity(34);
    for o in octets.iter().rev() {
        // Low nibble first, then high nibble.
        for nibble in [o & 0x0F, o >> 4] {
            let c = char::from_digit(nibble as u32, 16).expect("nibble is hex");
            labels.push(Label::new(&c.to_string()).expect("hex label"));
        }
    }
    labels.push(Label::new("ip6").expect("ip6"));
    labels.push(Label::new("arpa").expect("arpa"));
    DomainName::from_labels(labels).expect("ip6.arpa name fits in 255 bytes")
}

/// Parse a full 32-nibble `ip6.arpa` name back to its IPv6 address.
pub fn parse_reverse_v6(name: &DomainName) -> Option<Ipv6Addr> {
    let labels = name.labels();
    if labels.len() != 34 {
        return None;
    }
    if !labels[32].as_str().eq_ignore_ascii_case("ip6")
        || !labels[33].as_str().eq_ignore_ascii_case("arpa")
    {
        return None;
    }
    let mut octets = [0u8; 16];
    for (i, label) in labels.iter().enumerate().take(32) {
        let s = label.as_str();
        if s.len() != 1 {
            return None;
        }
        let nibble = s.chars().next()?.to_digit(16)? as u8;
        // Label i is nibble 31-i of the address (low nibble first).
        let pos = 31 - i;
        let byte = pos / 2;
        if pos % 2 == 1 {
            octets[byte] |= nibble; // low nibble of the byte
        } else {
            octets[byte] |= nibble << 4; // high nibble
        }
    }
    Some(Ipv6Addr::from(octets))
}

/// A delegated slice of the reverse tree: all reverse names for addresses
/// inside an IPv4 prefix with length 0, 8, 16, or 24.
///
/// These are the only prefix lengths that map onto whole-label boundaries
/// in `in-addr.arpa`, and the only delegations the simulated hierarchy
/// uses: the root effectively serves `/0` (i.e. `in-addr.arpa` itself), a
/// national registry a set of `/8`s or `/16`s, and a final authority the
/// `/24` (or `/16`) enclosing the originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReverseZone {
    prefix: Ipv4Addr,
    plen: u8,
}

impl ReverseZone {
    /// Create a zone for `prefix/plen`. `plen` must be 0, 8, 16, or 24;
    /// host bits of `prefix` below the prefix length are cleared.
    pub fn new(prefix: Ipv4Addr, plen: u8) -> Option<Self> {
        if !matches!(plen, 0 | 8 | 16 | 24) {
            return None;
        }
        let raw = u32::from(prefix);
        let mask = if plen == 0 { 0 } else { u32::MAX << (32 - plen) };
        Some(ReverseZone { prefix: Ipv4Addr::from(raw & mask), plen })
    }

    /// The whole reverse tree (`in-addr.arpa`), which the root serves.
    pub fn whole_tree() -> Self {
        ReverseZone { prefix: Ipv4Addr::UNSPECIFIED, plen: 0 }
    }

    /// The covering prefix address.
    pub fn prefix(&self) -> Ipv4Addr {
        self.prefix
    }

    /// The prefix length (0, 8, 16, or 24).
    pub fn plen(&self) -> u8 {
        self.plen
    }

    /// Does this zone cover `addr`?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.plen == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.plen as u32);
        (u32::from(addr) & mask) == u32::from(self.prefix)
    }

    /// Is `other` a (non-strict) sub-zone of `self`?
    pub fn covers_zone(&self, other: &ReverseZone) -> bool {
        self.plen <= other.plen && self.contains(other.prefix)
    }

    /// The zone apex as a domain name, e.g. `2.0.192.in-addr.arpa` for
    /// `192.0.2.0/24`, or `in-addr.arpa` for `/0`.
    pub fn zone_name(&self) -> DomainName {
        let o = self.prefix.octets();
        let mut labels: Vec<Label> = Vec::new();
        let significant = (self.plen / 8) as usize;
        for i in (0..significant).rev() {
            labels.push(Label::new(&o[i].to_string()).expect("octet label"));
        }
        labels.push(Label::new("in-addr").expect("in-addr"));
        labels.push(Label::new("arpa").expect("arpa"));
        DomainName::from_labels(labels).expect("zone name fits")
    }
}

impl fmt::Display for ReverseZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.prefix, self.plen)
    }
}

impl FromStr for ReverseZone {
    type Err = String;
    /// Parse `"192.0.2.0/24"` notation.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (p, l) = s.split_once('/').ok_or_else(|| format!("missing '/' in {s:?}"))?;
        let prefix: Ipv4Addr = p.parse().map_err(|e| format!("bad prefix: {e}"))?;
        let plen: u8 = l.parse().map_err(|e| format!("bad plen: {e}"))?;
        ReverseZone::new(prefix, plen).ok_or_else(|| format!("plen {plen} not in {{0,8,16,24}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_name_matches_paper_example() {
        // Figure 1 of the paper: originator 1.2.3.4 → PTR? 4.3.2.1.in-addr.arpa
        let n = reverse_name(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(n.to_string(), "4.3.2.1.in-addr.arpa");
    }

    #[test]
    fn reverse_round_trip() {
        for addr in [
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(255, 255, 255, 255),
            Ipv4Addr::new(192, 0, 2, 77),
            Ipv4Addr::new(10, 20, 30, 40),
        ] {
            assert_eq!(parse_reverse_v4(&reverse_name(addr)), Some(addr));
        }
    }

    #[test]
    fn parse_rejects_non_reverse_names() {
        for s in [
            "mail.example.com",
            "4.3.2.1.in-addr.arpa.extra", // too deep — parses as 7 labels
            "3.2.1.in-addr.arpa",         // partial (zone apex, not a host)
            "256.3.2.1.in-addr.arpa",     // octet out of range
            "04.3.2.1.in-addr.arpa",      // leading zero
            "x.3.2.1.in-addr.arpa",       // non-numeric
            "4.3.2.1.ip6.arpa",           // wrong tree
        ] {
            let n = DomainName::parse(s).unwrap();
            assert_eq!(parse_reverse_v4(&n), None, "should reject {s}");
        }
    }

    #[test]
    fn reverse_v6_matches_rfc3596_example() {
        // RFC 3596 §2.5's worked example.
        let addr: Ipv6Addr = "4321:0:1:2:3:4:567:89ab".parse().unwrap();
        assert_eq!(
            reverse_name_v6(addr).to_string(),
            "b.a.9.8.7.6.5.0.4.0.0.0.3.0.0.0.2.0.0.0.1.0.0.0.0.0.0.0.1.2.3.4.ip6.arpa"
        );
    }

    #[test]
    fn reverse_v6_round_trips() {
        for s in [
            "::",
            "::1",
            "2001:db8::1",
            "fe80::dead:beef",
            "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
        ] {
            let addr: Ipv6Addr = s.parse().unwrap();
            assert_eq!(parse_reverse_v6(&reverse_name_v6(addr)), Some(addr), "{s}");
        }
    }

    #[test]
    fn parse_v6_rejects_malformed() {
        for s in [
            "b.a.9.8.ip6.arpa",     // too short
            "4.3.2.1.in-addr.arpa", // wrong tree
            "mail.example.com",
        ] {
            let n = DomainName::parse(s).unwrap();
            assert_eq!(parse_reverse_v6(&n), None, "{s}");
        }
        // Non-hex nibble.
        let mut labels = "z".to_string();
        for _ in 0..31 {
            labels.push_str(".0");
        }
        labels.push_str(".ip6.arpa");
        let n = DomainName::parse(&labels).unwrap();
        assert_eq!(parse_reverse_v6(&n), None);
    }

    #[test]
    fn zone_apex_names() {
        let z24 = ReverseZone::new(Ipv4Addr::new(192, 0, 2, 9), 24).unwrap();
        assert_eq!(z24.zone_name().to_string(), "2.0.192.in-addr.arpa");
        assert_eq!(z24.prefix(), Ipv4Addr::new(192, 0, 2, 0));
        let z8 = ReverseZone::new(Ipv4Addr::new(10, 1, 2, 3), 8).unwrap();
        assert_eq!(z8.zone_name().to_string(), "10.in-addr.arpa");
        assert_eq!(ReverseZone::whole_tree().zone_name().to_string(), "in-addr.arpa");
    }

    #[test]
    fn zone_containment() {
        let z16 = ReverseZone::new(Ipv4Addr::new(172, 16, 0, 0), 16).unwrap();
        assert!(z16.contains(Ipv4Addr::new(172, 16, 200, 1)));
        assert!(!z16.contains(Ipv4Addr::new(172, 17, 0, 1)));
        let z24 = ReverseZone::new(Ipv4Addr::new(172, 16, 5, 0), 24).unwrap();
        assert!(z16.covers_zone(&z24));
        assert!(!z24.covers_zone(&z16));
        assert!(ReverseZone::whole_tree().covers_zone(&z16));
    }

    #[test]
    fn invalid_plens_rejected() {
        for plen in [1, 7, 9, 23, 25, 32, 33] {
            assert!(ReverseZone::new(Ipv4Addr::new(1, 2, 3, 4), plen).is_none(), "plen {plen}");
        }
    }

    #[test]
    fn zone_parse_display_round_trip() {
        let z: ReverseZone = "192.0.2.0/24".parse().unwrap();
        assert_eq!(z.to_string(), "192.0.2.0/24");
        assert!("192.0.2.0/20".parse::<ReverseZone>().is_err());
        assert!("banana/24".parse::<ReverseZone>().is_err());
    }
}
