//! Resolver cache with positive and negative entries.
//!
//! Caching is the force that *attenuates* DNS backscatter: a recursive
//! resolver shared by many targets asks the authority only once per TTL,
//! so authorities high in the hierarchy see a sampled, shrunken view of
//! an originator's footprint (paper §II, §IV-D). Getting TTL semantics
//! right is therefore load-bearing for the whole reproduction:
//!
//! * positive answers cache for their record TTL;
//! * negative answers (NXDOMAIN) cache for the SOA `MINIMUM` (RFC 2308);
//! * TTL 0 means "do not cache", except that resolvers may enforce a
//!   configurable minimum (the paper notes "some resolvers force a short
//!   minimum caching period");
//! * expired entries are never served.

use crate::message::QType;
use crate::name::DomainName;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a cache lookup produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A cached positive answer (the PTR target name).
    Positive(DomainName),
    /// A cached negative answer (name does not exist).
    Negative,
    /// Nothing cached (or entry expired): the resolver must recurse.
    Miss,
}

/// Tuning knobs for a resolver cache.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Floor applied to *positive* TTLs, in seconds. Zero honours TTL 0
    /// exactly; some real resolvers clamp to a few seconds.
    pub min_positive_ttl: u32,
    /// Ceiling applied to positive TTLs (resolvers commonly cap at 1–7
    /// days to bound staleness).
    pub max_positive_ttl: u32,
    /// Floor applied to negative TTLs.
    pub min_negative_ttl: u32,
    /// Ceiling applied to negative TTLs (RFC 2308 suggests ≤ 3 hours).
    pub max_negative_ttl: u32,
    /// Entry-count bound; oldest-expiring entries are evicted beyond it.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            min_positive_ttl: 0,
            max_positive_ttl: 86_400,
            min_negative_ttl: 0,
            max_negative_ttl: 10_800,
            capacity: 1_000_000,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    expires: SimTime,
    value: CachedValue,
}

#[derive(Debug, Clone)]
enum CachedValue {
    Positive(DomainName),
    Negative,
}

/// Running hit/miss counters, exposed so experiments can report
/// attenuation factors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from cache (positive or negative).
    pub hits: u64,
    /// Lookups that had to recurse.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A TTL cache keyed by `(name, qtype)`.
///
/// The cache is passive about time: callers pass `now` explicitly, so the
/// same code serves both the discrete-event simulator and tests.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    entries: HashMap<(String, QType), Entry>,
    stats: CacheStats,
}

impl Cache {
    /// Create an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        Cache { config, entries: HashMap::new(), stats: CacheStats::default() }
    }

    /// Look up `(name, qtype)` at time `now`.
    pub fn lookup(&mut self, name: &DomainName, qtype: QType, now: SimTime) -> CacheOutcome {
        let key = (name.to_lowercase_string(), qtype);
        match self.entries.get(&key) {
            Some(e) if e.expires > now => {
                self.stats.hits += 1;
                match &e.value {
                    CachedValue::Positive(target) => CacheOutcome::Positive(target.clone()),
                    CachedValue::Negative => CacheOutcome::Negative,
                }
            }
            Some(_) => {
                // Expired: drop it and miss.
                self.entries.remove(&key);
                self.stats.misses += 1;
                CacheOutcome::Miss
            }
            None => {
                self.stats.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Insert a positive answer with the authority-provided TTL.
    ///
    /// A TTL of zero (after the configured floor) is not cached at all.
    pub fn insert_positive(
        &mut self,
        name: &DomainName,
        qtype: QType,
        target: DomainName,
        ttl: u32,
        now: SimTime,
    ) {
        let ttl = ttl.max(self.config.min_positive_ttl).min(self.config.max_positive_ttl);
        if ttl == 0 {
            return;
        }
        self.insert(
            (name.to_lowercase_string(), qtype),
            Entry {
                expires: now + SimDuration::from_secs(ttl as u64),
                value: CachedValue::Positive(target),
            },
        );
    }

    /// Insert a negative answer; `soa_minimum` is the negative TTL from
    /// the zone's SOA record.
    pub fn insert_negative(
        &mut self,
        name: &DomainName,
        qtype: QType,
        soa_minimum: u32,
        now: SimTime,
    ) {
        let ttl = soa_minimum.max(self.config.min_negative_ttl).min(self.config.max_negative_ttl);
        if ttl == 0 {
            return;
        }
        self.insert(
            (name.to_lowercase_string(), qtype),
            Entry {
                expires: now + SimDuration::from_secs(ttl as u64),
                value: CachedValue::Negative,
            },
        );
    }

    fn insert(&mut self, key: (String, QType), entry: Entry) {
        if self.entries.len() >= self.config.capacity && !self.entries.contains_key(&key) {
            // Evict the entry expiring soonest; O(n) but eviction is rare
            // at the capacities we configure.
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, e)| e.expires).map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key, entry);
        self.stats.inserts += 1;
    }

    /// Number of live entries (including not-yet-collected expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all entries (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drop entries that expired at or before `now`; returns how many.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires > now);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::reverse_name;

    fn name(i: u8) -> DomainName {
        reverse_name(std::net::Ipv4Addr::new(192, 0, 2, i))
    }

    fn target() -> DomainName {
        DomainName::parse("host.example.com").unwrap()
    }

    #[test]
    fn miss_then_hit_then_expiry() {
        let mut c = Cache::new(CacheConfig::default());
        let n = name(1);
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(0)), CacheOutcome::Miss);
        c.insert_positive(&n, QType::Ptr, target(), 60, SimTime(0));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(59)), CacheOutcome::Positive(target()));
        // At exactly TTL seconds the entry is dead (expires > now fails).
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(60)), CacheOutcome::Miss);
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(61)), CacheOutcome::Miss);
    }

    #[test]
    fn ttl_zero_is_not_cached() {
        let mut c = Cache::new(CacheConfig::default());
        let n = name(2);
        c.insert_positive(&n, QType::Ptr, target(), 0, SimTime(0));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(0)), CacheOutcome::Miss);
        assert!(c.is_empty());
    }

    #[test]
    fn min_positive_ttl_overrides_zero() {
        // "some resolvers force a short minimum caching period" (§IV-D)
        let mut c = Cache::new(CacheConfig { min_positive_ttl: 5, ..CacheConfig::default() });
        let n = name(3);
        c.insert_positive(&n, QType::Ptr, target(), 0, SimTime(0));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(4)), CacheOutcome::Positive(target()));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(5)), CacheOutcome::Miss);
    }

    #[test]
    fn max_positive_ttl_caps() {
        let mut c = Cache::new(CacheConfig { max_positive_ttl: 100, ..CacheConfig::default() });
        let n = name(4);
        c.insert_positive(&n, QType::Ptr, target(), 1_000_000, SimTime(0));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(99)), CacheOutcome::Positive(target()));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(100)), CacheOutcome::Miss);
    }

    #[test]
    fn negative_caching_uses_soa_minimum() {
        let mut c = Cache::new(CacheConfig::default());
        let n = name(5);
        c.insert_negative(&n, QType::Ptr, 900, SimTime(0));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(899)), CacheOutcome::Negative);
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(900)), CacheOutcome::Miss);
    }

    #[test]
    fn negative_ttl_capped() {
        let mut c = Cache::new(CacheConfig { max_negative_ttl: 50, ..CacheConfig::default() });
        let n = name(6);
        c.insert_negative(&n, QType::Ptr, 100_000, SimTime(0));
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(49)), CacheOutcome::Negative);
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(50)), CacheOutcome::Miss);
    }

    #[test]
    fn qtype_distinguishes_entries() {
        let mut c = Cache::new(CacheConfig::default());
        let n = name(7);
        c.insert_positive(&n, QType::Ptr, target(), 60, SimTime(0));
        assert_eq!(c.lookup(&n, QType::A, SimTime(1)), CacheOutcome::Miss);
        assert_eq!(c.lookup(&n, QType::Ptr, SimTime(1)), CacheOutcome::Positive(target()));
    }

    #[test]
    fn case_insensitive_keying() {
        let mut c = Cache::new(CacheConfig::default());
        let lower = DomainName::parse("77.2.0.192.in-addr.arpa").unwrap();
        let upper = DomainName::parse("77.2.0.192.IN-ADDR.ARPA").unwrap();
        c.insert_positive(&lower, QType::Ptr, target(), 60, SimTime(0));
        assert_eq!(c.lookup(&upper, QType::Ptr, SimTime(1)), CacheOutcome::Positive(target()));
    }

    #[test]
    fn capacity_eviction_picks_soonest_expiry() {
        let mut c = Cache::new(CacheConfig { capacity: 2, ..CacheConfig::default() });
        c.insert_positive(&name(1), QType::Ptr, target(), 10, SimTime(0));
        c.insert_positive(&name(2), QType::Ptr, target(), 100, SimTime(0));
        c.insert_positive(&name(3), QType::Ptr, target(), 50, SimTime(0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        // name(1) (expiring soonest) was the victim.
        assert_eq!(c.lookup(&name(1), QType::Ptr, SimTime(1)), CacheOutcome::Miss);
        assert_eq!(c.lookup(&name(2), QType::Ptr, SimTime(1)), CacheOutcome::Positive(target()));
        assert_eq!(c.lookup(&name(3), QType::Ptr, SimTime(1)), CacheOutcome::Positive(target()));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = Cache::new(CacheConfig::default());
        let n = name(8);
        c.lookup(&n, QType::Ptr, SimTime(0));
        c.insert_positive(&n, QType::Ptr, target(), 60, SimTime(0));
        c.lookup(&n, QType::Ptr, SimTime(1));
        c.lookup(&n, QType::Ptr, SimTime(2));
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 1);
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn expire_sweeps_dead_entries() {
        let mut c = Cache::new(CacheConfig::default());
        c.insert_positive(&name(1), QType::Ptr, target(), 10, SimTime(0));
        c.insert_positive(&name(2), QType::Ptr, target(), 100, SimTime(0));
        assert_eq!(c.expire(SimTime(10)), 1);
        assert_eq!(c.len(), 1);
    }
}
