//! `backscatter-core` — the public face of the dns-backscatter system.
//!
//! DNS backscatter is the stream of reverse (`PTR`) queries that
//! firewalls, mail servers, and middleboxes near the *targets* of
//! network-wide activity send while looking up the activity's source.
//! Observed at an authoritative DNS server, that stream identifies and
//! classifies the *originators* — spammers, scanners, CDNs, crawlers —
//! without any cooperation from them (Fukuda & Heidemann, IMC 2015 /
//! IEEE-ToN 2017).
//!
//! This crate re-exports the whole system and adds the high-level
//! [`pipeline::DatasetPipeline`] that runs the paper's recommended
//! operation end to end: curate labels once, retrain daily on fresh
//! features, classify every analyzable originator per window.
//!
//! # Crate map
//!
//! | module | crate | what it holds |
//! |---|---|---|
//! | [`dns`] | `bs-dns` | names, `in-addr.arpa`, wire codec, TTL caches |
//! | [`netsim`] | `bs-netsim` | the procedural Internet + backscatter simulator |
//! | [`activity`] | `bs-activity` | generative models of the 12 activity classes |
//! | [`sensor`] | `bs-sensor` | log ingestion + static/dynamic features |
//! | [`ml`] | `bs-ml` | CART, random forest, kernel SVM, metrics |
//! | [`classify`] | `bs-classify` | labels, training strategies, consistency |
//! | [`datasets`] | `bs-datasets` | the seven paper datasets + oracles |
//! | [`analysis`] | `bs-analysis` | footprints, trends, churn, teams |
//! | [`telemetry`] | `bs-telemetry` | counters, spans, structured logging, exporters |
//! | [`live`] | `bs-live` | windowed rates, scrape endpoint, health watchdog |
//! | [`par`] | `bs-par` | deterministic work-stealing parallelism (`BS_THREADS`) |
//! | [`trace`] | `bs-trace` | causal tracing, flight recorder, drop-accounting ledger |
//!
//! # Quickstart
//!
//! ```
//! use backscatter_core::prelude::*;
//!
//! // A small world and a two-day JP-style observation.
//! let world = World::new(WorldConfig::default());
//! let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 7);
//! let built = build_dataset(&world, spec);
//!
//! // Sense, curate, train, classify.
//! let pipeline = DatasetPipeline::default();
//! let run = pipeline.run(&world, &built);
//! assert!(!run.windows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bs_activity as activity;
pub use bs_analysis as analysis;
pub use bs_classify as classify;
pub use bs_datasets as datasets;
pub use bs_dns as dns;
pub use bs_live as live;
pub use bs_ml as ml;
pub use bs_netsim as netsim;
pub use bs_par as par;
pub use bs_prof as prof;
pub use bs_sensor as sensor;
pub use bs_telemetry as telemetry;
pub use bs_trace as trace;

pub mod pipeline;
pub mod stream;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use crate::pipeline::{DatasetPipeline, PipelineRun};
    pub use bs_activity::{ApplicationClass, Scenario, ScenarioConfig, ScenarioEvent};
    pub use bs_analysis::{ClassifiedOriginator, WindowClassification};
    pub use bs_classify::{ClassifierPipeline, LabeledSet, TrainingStrategy};
    pub use bs_datasets::{build_dataset, BuiltDataset, DatasetId, DatasetSpec, Scale};
    pub use bs_dns::{SimDuration, SimTime};
    pub use bs_ml::{Algorithm, CartParams, ForestParams, SvmParams};
    pub use bs_netsim::hierarchy::{AuthorityId, RootServer};
    pub use bs_netsim::world::{World, WorldConfig};
    pub use bs_netsim::{Simulator, SimulatorConfig};
    pub use bs_sensor::{
        extract_features, extract_with_meta_cache, FeatureConfig, OriginatorFeatures,
        QuerierMetaCache,
    };
}
