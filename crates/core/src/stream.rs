//! The live streaming driver: a long-running sensor process with the
//! bs-live observability stack attached.
//!
//! [`run_live_stream`] feeds a query log through a streaming sensor
//! one record at a time — optionally *paced* to a target
//! records-per-second so a replayed log exercises the system the way a
//! real tap would — while a [`bs_live::LiveHandle`] (when attached)
//! samples the registry, serves scrapes, and runs the health watchdog.
//! The watchdog's shared [`bs_live::HealthState`] is wired into the
//! sensor as its pressure hook, closing the graceful-degradation loop:
//! an eviction storm trips the watchdog, the sensor tightens its
//! probation decay, the storm's memory footprint drains, and the
//! watchdog clears. With more than one shard the hook broadcasts to
//! every lane.
//!
//! The `shards` parameter picks the engine: `1` keeps the plain
//! [`StreamingSensor`] (the retained single-shard path), `> 1` runs
//! the hash-sharded [`ShardedStreamingSensor`] for multi-core scaling,
//! and `0` sizes automatically from the `bs-par` pool (`BS_THREADS` /
//! core count). Output is identical either way — the shard topology
//! guarantees it, and the proptests in `bs-sensor` pin it down.

use bs_netsim::log::QueryLogRecord;
use bs_sensor::qmeta::QuerierMetaCache;
use bs_sensor::{
    extract_with_meta_cache, FeatureConfig, OriginatorFeatures, QuerierInfo,
    ShardedStreamingSensor, StreamConfig, StreamingSensor, WindowSummary,
};
use std::time::{Duration, Instant};

/// What one [`run_live_stream`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRunStats {
    /// Records fed to the sensor.
    pub records: u64,
    /// Completed windows emitted (including the final partial one).
    pub windows: usize,
    /// Originators evicted across all windows.
    pub evicted: usize,
}

/// Between pacing sleeps, feed this many records. Sleeping per record
/// would turn pacing into a syscall benchmark; batches keep the duty
/// cycle honest at any realistic rate.
const PACE_BATCH: u64 = 64;

/// Resolve a requested shard count: `0` = auto-size from the `bs-par`
/// pool (`BS_THREADS` override, else core count), anything else is
/// clamped to `1..=SHARD_SLICES`.
pub fn resolve_shards(requested: usize) -> usize {
    let n = if requested == 0 { bs_par::threads() } else { requested };
    n.clamp(1, bs_sensor::SHARD_SLICES)
}

/// The two ingest engines behind one driver loop.
enum Engine {
    Single(Box<StreamingSensor>),
    Sharded(Box<ShardedStreamingSensor>),
}

impl Engine {
    fn push(&mut self, r: QueryLogRecord) -> Option<WindowSummary> {
        match self {
            Engine::Single(s) => s.push(r),
            Engine::Sharded(s) => s.push(r),
        }
    }

    fn finish(self) -> Option<WindowSummary> {
        match self {
            Engine::Single(s) => s.finish(),
            Engine::Sharded(s) => s.finish(),
        }
    }
}

/// Stream `records` through a sensor configured by `config`, invoking
/// `on_window` for every completed window (and the final partial one).
///
/// * `shards`: ingest lanes — see [`resolve_shards`]; `1` is the plain
///   single sensor, `0` auto-sizes.
/// * `live`: when given, its health state becomes the sensor's
///   pressure hook and a sample is forced at every window boundary so
///   scrapes see fresh window counters immediately.
/// * `pace_rps`: target ingest rate in records/second; `0` replays as
///   fast as possible.
///
/// Records must be in time order (the streaming sensor's contract;
/// late records are counted and dropped, never reordered).
pub fn run_live_stream<F>(
    records: &[QueryLogRecord],
    config: StreamConfig,
    shards: usize,
    live: Option<&bs_live::LiveHandle>,
    pace_rps: u64,
    mut on_window: F,
) -> StreamRunStats
where
    F: FnMut(&WindowSummary),
{
    let _span = bs_telemetry::span("core.stream");
    let mut engine = match resolve_shards(shards) {
        1 => {
            let mut sensor = StreamingSensor::new(config);
            if let Some(handle) = live {
                sensor.set_pressure_hook(handle.health_state());
            }
            Engine::Single(Box::new(sensor))
        }
        n => {
            let mut sensor = ShardedStreamingSensor::new(config, n);
            if let Some(handle) = live {
                sensor.set_pressure_hook(handle.health_state());
            }
            Engine::Sharded(Box::new(sensor))
        }
    };

    let started = Instant::now();
    let mut stats = StreamRunStats { records: 0, windows: 0, evicted: 0 };
    for r in records {
        if pace_rps > 0 && stats.records.is_multiple_of(PACE_BATCH) {
            // Sleep off any lead over the pace schedule.
            let due = Duration::from_nanos(stats.records.saturating_mul(1_000_000_000) / pace_rps);
            let elapsed = started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        stats.records += 1;
        if let Some(w) = engine.push(*r) {
            stats.windows += 1;
            stats.evicted += w.evicted;
            if let Some(handle) = live {
                handle.sample_now(started.elapsed().as_millis() as u64);
            }
            on_window(&w);
        }
    }
    if let Some(w) = engine.finish() {
        stats.windows += 1;
        stats.evicted += w.evicted;
        on_window(&w);
    }
    if let Some(handle) = live {
        handle.sample_now(started.elapsed().as_millis() as u64);
    }
    stats
}

/// [`run_live_stream`] plus per-window feature extraction through the
/// querier metadata plane: every completed window runs
/// [`extract_with_meta_cache`] against `info`, with one
/// [`QuerierMetaCache`] persisting across windows so queriers that
/// recur between windows skip re-resolution (the ROADMAP item-3
/// online-serving posture: resolve metadata once, serve features per
/// window). The caller owns the cache, so successive calls — or a
/// restart-with-state — keep their warmth; `on_window` receives each
/// window summary together with its extracted features.
///
/// Extraction output is cache-invariant and bit-identical to the
/// batch fast path (and therefore to the retained per-pair
/// reference); the proptests in `bs-sensor` pin this down.
#[allow(clippy::too_many_arguments)]
pub fn run_live_stream_extracting<F>(
    records: &[QueryLogRecord],
    config: StreamConfig,
    shards: usize,
    live: Option<&bs_live::LiveHandle>,
    pace_rps: u64,
    info: &(impl QuerierInfo + Sync),
    feature_config: &FeatureConfig,
    cache: &mut QuerierMetaCache,
    mut on_window: F,
) -> StreamRunStats
where
    F: FnMut(&WindowSummary, &[OriginatorFeatures]),
{
    run_live_stream(records, config, shards, live, pace_rps, |w| {
        let features = extract_with_meta_cache(&w.observations, info, feature_config, Some(cache));
        on_window(w, &features);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::{SimDuration, SimTime};
    use bs_netsim::log::QueryLogRecord;
    use bs_sensor::{ReferenceShardedStreamingSensor, ReferenceStreamingSensor};

    fn rec(t: u64, q: u32, o: u32) -> QueryLogRecord {
        QueryLogRecord {
            time: SimTime(t),
            querier: std::net::Ipv4Addr::from(0x0A00_0000 | q),
            originator: std::net::Ipv4Addr::from(0xCB00_0000 | o),
            rcode: bs_dns::Rcode::NoError,
        }
    }

    fn sample_records() -> Vec<QueryLogRecord> {
        // Three windows of 100 s: two originators, several queriers.
        let mut out = Vec::new();
        for w in 0..3u64 {
            for i in 0..50u32 {
                out.push(rec(w * 100 + (i % 90) as u64, i % 7, i % 2));
            }
        }
        out
    }

    #[test]
    fn driver_matches_reference_sensor_windows() {
        let records = sample_records();
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };

        let mut driven = Vec::new();
        let stats = run_live_stream(&records, cfg, 1, None, 0, |w| driven.push(w.clone()));
        assert_eq!(stats.records, records.len() as u64);
        assert_eq!(stats.windows, driven.len());

        let mut reference = ReferenceStreamingSensor::new(cfg);
        let mut expect = Vec::new();
        for r in &records {
            if let Some(w) = reference.push(*r) {
                expect.push(w);
            }
        }
        if let Some(w) = reference.finish() {
            expect.push(w);
        }
        assert_eq!(driven, expect, "driver must not change sensor semantics");
    }

    #[test]
    fn sharded_driver_matches_sharded_reference() {
        let records = sample_records();
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };

        let mut reference = ReferenceShardedStreamingSensor::new(cfg);
        let mut expect = Vec::new();
        for r in &records {
            if let Some(w) = reference.push(*r) {
                expect.push(w);
            }
        }
        if let Some(w) = reference.finish() {
            expect.push(w);
        }

        for shards in [2, 4, 8] {
            let mut driven = Vec::new();
            let stats = run_live_stream(&records, cfg, shards, None, 0, |w| driven.push(w.clone()));
            assert_eq!(stats.records, records.len() as u64);
            assert_eq!(driven, expect, "shards={shards}: output must be shard-count invariant");
        }
    }

    #[test]
    fn extracting_driver_matches_reference_extraction_per_window() {
        use bs_netsim::types::{AsId, CountryCode, NameOutcome};

        struct ToyInfo;
        impl QuerierInfo for ToyInfo {
            fn querier_name(&self, addr: std::net::Ipv4Addr) -> NameOutcome {
                if addr.octets()[3].is_multiple_of(2) {
                    NameOutcome::Name(bs_dns::DomainName::parse("mail.example.com").unwrap())
                } else {
                    NameOutcome::NxDomain
                }
            }
            fn querier_as(&self, addr: std::net::Ipv4Addr) -> Option<AsId> {
                Some(AsId(addr.octets()[3] as u32 % 3))
            }
            fn querier_country(&self, _addr: std::net::Ipv4Addr) -> Option<CountryCode> {
                Some(CountryCode::new("jp").unwrap())
            }
        }

        let records = sample_records();
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
        let fc = FeatureConfig { min_queriers: 1, top_n: None };

        let mut cache = QuerierMetaCache::default();
        let mut windows = Vec::new();
        let stats = run_live_stream_extracting(
            &records,
            cfg,
            1,
            None,
            0,
            &ToyInfo,
            &fc,
            &mut cache,
            |w, f| {
                windows.push((w.clone(), f.to_vec()));
            },
        );
        assert_eq!(stats.windows, windows.len());
        assert!(!windows.is_empty());
        assert!(
            cache.hits() > 0,
            "queriers recur across the sample windows: the cache must serve hits"
        );

        for (w, features) in &windows {
            let expect =
                bs_sensor::extract_from_observations_reference(&w.observations, &ToyInfo, &fc);
            assert_eq!(features, &expect, "warm-cache extraction must equal the reference");
        }
    }

    #[test]
    fn shard_resolution_clamps_and_autosizes() {
        assert_eq!(resolve_shards(1), 1);
        assert_eq!(resolve_shards(4), 4);
        assert_eq!(resolve_shards(10_000), bs_sensor::SHARD_SLICES);
        let auto = resolve_shards(0);
        assert!((1..=bs_sensor::SHARD_SLICES).contains(&auto));
        assert_eq!(auto, bs_par::threads().clamp(1, bs_sensor::SHARD_SLICES));
    }

    #[test]
    fn pacing_slows_replay_to_the_target_rate() {
        let records = sample_records();
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
        let started = Instant::now();
        // 150 records at 1000 rps ≥ 150 ms of wall clock.
        let stats = run_live_stream(&records, cfg, 1, None, 1_000, |_| {});
        assert_eq!(stats.records, 150);
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(80),
            "pacing had no effect: {elapsed:?} for 150 records at 1000 rps"
        );
    }
}
