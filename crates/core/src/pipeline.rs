//! The end-to-end operational pipeline.
//!
//! This is the paper's recommended deployment (§V-F): curate a labeled
//! set from expert knowledge once, then, window by window, recompute
//! feature vectors, retrain on the fixed labels with fresh features,
//! and classify every analyzable originator.

use bs_analysis::{ClassifiedOriginator, WindowClassification};
use bs_classify::{pipeline::feature_map, ClassifierPipeline, LabeledSet};
use bs_datasets::BuiltDataset;
use bs_netsim::world::World;
use bs_sensor::FeatureConfig;

/// Configuration of the end-to-end pipeline.
pub struct DatasetPipeline {
    /// Sensor thresholds.
    pub feature_config: FeatureConfig,
    /// Learner configuration (defaults to the paper's RF with 10-run
    /// majority voting).
    pub classifier: ClassifierPipeline,
    /// Per-class cap at curation.
    pub per_class_cap: usize,
    /// Which windows the expert curates from. `[0]` is the single-pass
    /// default; for long feeds the paper merges several curations
    /// ("a single labeled dataset with candidates taken from three
    /// dates, each about a month apart").
    pub curation_windows: Vec<usize>,
    /// Training seed.
    pub seed: u64,
}

impl Default for DatasetPipeline {
    fn default() -> Self {
        DatasetPipeline {
            feature_config: FeatureConfig::default(),
            classifier: ClassifierPipeline::random_forest(),
            per_class_cap: 140,
            curation_windows: vec![0],
            seed: 0x9_0210,
        }
    }
}

/// The output of one pipeline run.
pub struct PipelineRun {
    /// Per-window classifications (ground-truth-free output).
    pub windows: Vec<WindowClassification>,
    /// The curated label set used throughout.
    pub labels: LabeledSet,
}

impl DatasetPipeline {
    /// Run over every window of a built dataset: curate on window 0,
    /// retrain per window on fresh features, classify all analyzable
    /// originators.
    pub fn run(&self, world: &World, built: &BuiltDataset) -> PipelineRun {
        let windows = built.windows();
        assert!(!windows.is_empty());

        // Expert curation, possibly merged over several dates.
        let mut labels = LabeledSet::default();
        {
            let _span = bs_telemetry::span("core.curate");
            for &cw in &self.curation_windows {
                let Some(window) = windows.get(cw) else { continue };
                // Sensor-stage ledger entries from curation land in the
                // curated window's cell, not the ambient one.
                let _w = bs_trace::ledger::window_scope(cw as u64);
                let feats = built.features_for_window(world, *window, &self.feature_config);
                let truth = built.truth_for_window(*window);
                labels.merge(&LabeledSet::curate(&truth, &feats, self.per_class_cap));
            }
        }
        bs_telemetry::info!(
            "core.pipeline",
            "curated label set";
            examples = labels.len(),
            windows = windows.len(),
        );

        // Windows are independent given the fixed label set: each
        // re-extracts features, retrains on a window-derived seed, and
        // classifies its own originators. They run in parallel on the
        // bs-par pool; with a single window the parallelism moves down
        // into training and extraction instead (nested regions run
        // sequentially inside pool workers). Extraction goes through
        // the qmeta metadata plane — each window builds its own
        // per-window table (windows run concurrently, so no shared
        // cross-window cache here; the streaming driver is the
        // cache's home).
        let out: Vec<WindowClassification> = bs_par::par_map(&windows, |w, window| {
            let _wscope = bs_trace::ledger::window_scope(w as u64);
            let _cost = bs_prof::stage("core.window", w as u64);
            let feats = built.features_for_window(world, *window, &self.feature_config);
            let fmap = feature_map(&feats);
            let model = {
                let _span = bs_telemetry::span("core.retrain");
                self.classifier.train(&labels, &fmap, self.seed ^ (w as u64) << 16)
            };
            let entries = match model {
                Some(model) => {
                    let _span = bs_telemetry::span("core.classify");
                    let entries: Vec<ClassifiedOriginator> =
                        bs_par::par_map(&feats, |_, f| ClassifiedOriginator {
                            originator: f.originator,
                            queriers: f.querier_count,
                            class: model.classify(&f.features),
                        });
                    bs_telemetry::counter_add("core.originators_classified", entries.len() as u64);
                    entries
                }
                None => {
                    bs_telemetry::warn!(
                        "core.pipeline",
                        "window untrainable, emitting no classifications";
                        window = w,
                    );
                    Vec::new()
                }
            };
            bs_telemetry::counter_add("core.windows", 1);
            // Conservation per window: every analyzable originator is
            // either classified or lost to an untrainable window.
            bs_trace::ledger::record(
                "core.window",
                feats.len() as u64,
                &[
                    ("classified", entries.len() as u64),
                    ("untrainable", (feats.len() - entries.len()) as u64),
                ],
            );
            WindowClassification { window: w, entries }
        });
        PipelineRun { windows: out, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_datasets::{build_dataset, DatasetId, DatasetSpec, Scale};
    use bs_netsim::world::WorldConfig;

    #[test]
    fn pipeline_classifies_a_smoke_dataset() {
        let world = World::new(WorldConfig::default());
        let built = build_dataset(&world, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 9));
        let mut pipeline = DatasetPipeline::default();
        pipeline.feature_config.min_queriers = 10;
        // Cheap learner for the test.
        pipeline.classifier = ClassifierPipeline {
            algorithm: bs_ml::Algorithm::Cart(bs_ml::CartParams::default()),
            runs: 1,
        };
        let run = pipeline.run(&world, &built);
        assert_eq!(run.windows.len(), 1);
        assert!(!run.labels.is_empty());
        assert!(!run.windows[0].entries.is_empty());
        // Classified classes are plausible: mostly ones with labels.
        let labeled_classes: std::collections::BTreeSet<_> =
            run.labels.examples.iter().map(|e| e.class).collect();
        let hit =
            run.windows[0].entries.iter().filter(|e| labeled_classes.contains(&e.class)).count();
        assert!(hit * 10 >= run.windows[0].entries.len() * 9);
    }
}
