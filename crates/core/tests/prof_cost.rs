//! The ns-per-record cost table must reconcile with the conservation
//! ledger: for every profiled stage+window, the record count the cost
//! row reports is exactly what the ledger booked there.

use backscatter_core::stream::run_live_stream;
use bs_dns::{Rcode, SimDuration, SimTime};
use bs_netsim::log::QueryLogRecord;
use bs_sensor::StreamConfig;

fn rec(t: u64, q: u32, o: u32) -> QueryLogRecord {
    QueryLogRecord {
        time: SimTime(t),
        querier: std::net::Ipv4Addr::from(0x0A00_0000 | q),
        originator: std::net::Ipv4Addr::from(0xCB00_0000 | o),
        rcode: Rcode::NoError,
    }
}

fn records() -> Vec<QueryLogRecord> {
    let mut out = Vec::new();
    for w in 0..4u64 {
        for i in 0..80u32 {
            out.push(rec(w * 100 + (i % 90) as u64, i % 11, i % 3));
        }
    }
    out
}

#[test]
fn cost_table_reconciles_with_ledger_per_window() {
    // Profiling only — no tracing, no sampler thread: the cost/ledger
    // join is exact bookkeeping, independent of sampling.
    bs_trace::enable_profiling();
    bs_trace::ledger::reset();
    bs_prof::cost::reset();

    let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
    let stats = run_live_stream(&records(), cfg, 1, None, 0, |_| {});
    assert_eq!(stats.records, 320);
    assert!(stats.windows >= 4);

    bs_trace::disable_profiling();

    let ledger = bs_trace::ledger::snapshot();
    let rows: Vec<_> =
        bs_prof::cost::rows().into_iter().filter(|r| r.stage == "sensor.stream").collect();
    assert!(rows.len() >= 4, "one cost row per flushed window, got {}", rows.len());

    let mut cost_records = 0u64;
    for r in &rows {
        let flow = ledger
            .get(&("sensor.stream".to_string(), r.window))
            .unwrap_or_else(|| panic!("ledger has no cell for window {}", r.window));
        assert_eq!(
            r.records, flow.records_in,
            "window {}: cost row must carry the ledger's record count",
            r.window
        );
        assert_eq!(r.calls, 1, "each window flushes once");
        assert!(r.ns > 0, "wall time was measured");
        assert!(r.records == 0 || r.ns_per_record == r.ns / r.records, "unit cost is ns/records");
        cost_records += r.records;
    }
    assert_eq!(cost_records, 320, "every streamed record appears in exactly one cost row");

    // The rendered table carries the same reconciliation.
    let table = bs_prof::cost::render();
    assert!(table.contains("sensor.stream"), "render names the stage:\n{table}");

    bs_trace::ledger::reset();
    bs_prof::cost::reset();
}
