//! Property-tested equivalence between the bs-mlcore fast paths and
//! the retained reference implementations (DESIGN.md §12).
//!
//! The claims here are **bit-identity**, not approximate agreement:
//! the columnar presorted-index CART must choose the same splits,
//! accumulate the same importances and predict the same classes as the
//! boxed re-sorting reference; the Gram-cached SMO must produce equal
//! machines to the nested-`Vec` reference; and persisted models must
//! serialize to identical bytes whichever grower built them.

use bs_ml::dataset::{Dataset, Sample};
use bs_ml::forest::{Forest, ForestParams};
use bs_ml::svm::{Svm, SvmParams};
use bs_ml::tree::{CartParams, DecisionTree, ReferenceTree};
use proptest::prelude::*;

/// 2–4 classes, 1–5 features, 10–50 samples; values drawn from a
/// coarse grid so duplicate feature values (the stable-sort stress
/// case) are common.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..=4, 1usize..=5).prop_flat_map(|(n_classes, n_features)| {
        proptest::collection::vec(
            (proptest::collection::vec(-8i64..8, n_features), 0usize..n_classes),
            10..50,
        )
        .prop_map(move |rows| {
            let mut d = Dataset::new(
                (0..n_features).map(|i| format!("f{i}")).collect(),
                (0..n_classes).map(|i| format!("c{i}")).collect(),
            );
            for (grid, label) in rows {
                d.push(Sample {
                    features: grid.into_iter().map(|g| g as f64 * 0.5).collect(),
                    label,
                });
            }
            d
        })
    })
}

fn arb_cart_params() -> impl Strategy<Value = CartParams> {
    // `max_features` is drawn from 0..=3 with 0 meaning "no cap".
    (1usize..=12, 2usize..=6, 1usize..=3, 0usize..=3).prop_map(
        |(max_depth, min_samples_split, min_samples_leaf, cap)| CartParams {
            max_depth,
            min_samples_split,
            min_samples_leaf,
            max_features: if cap == 0 { None } else { Some(cap) },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Columnar CART ≡ reference CART: same arena node for node (same
    /// splits, same thresholds), bitwise-equal raw importances, and
    /// identical predictions on every training row and on off-grid
    /// probes.
    #[test]
    fn cart_fast_path_matches_reference(
        d in arb_dataset(),
        params in arb_cart_params(),
        seed in any::<u64>(),
    ) {
        let fast = DecisionTree::fit(&d, &params, seed);
        let reference = ReferenceTree::fit(&d, &params, seed);
        let fast_imp: Vec<u64> = fast.raw_importances().iter().map(|v| v.to_bits()).collect();
        let ref_imp: Vec<u64> = reference.raw_importances().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fast_imp, ref_imp, "importances must match bitwise");
        prop_assert_eq!(&fast, &reference.flatten(), "identical flat arenas");
        for s in &d.samples {
            prop_assert_eq!(fast.predict(&s.features), reference.predict(&s.features));
        }
        let probe: Vec<f64> = (0..d.n_features()).map(|f| f as f64 * 0.25 - 1.0).collect();
        prop_assert_eq!(fast.predict(&probe), reference.predict(&probe));
    }

    /// Flat-arena iterative predict ≡ boxed recursive predict, for the
    /// same tree (the reference flattened), including the batch API.
    #[test]
    fn flat_predict_matches_boxed_predict(
        d in arb_dataset(),
        params in arb_cart_params(),
        seed in any::<u64>(),
    ) {
        let boxed = ReferenceTree::fit(&d, &params, seed);
        let flat = boxed.flatten();
        let xs: Vec<Vec<f64>> = d.samples.iter().map(|s| s.features.clone()).collect();
        let batch = flat.predict_all(&xs);
        for (x, b) in xs.iter().zip(&batch) {
            prop_assert_eq!(boxed.predict(x), flat.predict(x));
            prop_assert_eq!(flat.predict(x), *b, "batch path must equal scalar path");
        }
    }

    /// Bootstrap fits (the forest's base-learner configuration,
    /// duplicate indices included) agree between the two growers.
    #[test]
    fn cart_fast_path_matches_reference_on_bootstrap_indices(
        d in arb_dataset(),
        seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u64>(), 10..40),
    ) {
        let indices: Vec<usize> = picks.iter().map(|&p| p as usize % d.len()).collect();
        let params = CartParams { max_features: Some(2), ..CartParams::default() };
        let fast = DecisionTree::fit_on_indices(&d, &indices, &params, seed);
        let reference = ReferenceTree::fit_on_indices(&d, &indices, &params, seed);
        prop_assert_eq!(&fast, &reference.flatten());
        let fast_imp: Vec<u64> = fast.raw_importances().iter().map(|v| v.to_bits()).collect();
        let ref_imp: Vec<u64> = reference.raw_importances().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fast_imp, ref_imp);
    }

    /// Forests grown by the two growers serialize to byte-identical
    /// `bs-forest v1` text, and the persisted text round-trips to the
    /// same canonical bytes — the wire format is unchanged by the
    /// flat-arena representation.
    #[test]
    fn forest_persistence_is_grower_independent(
        d in arb_dataset(),
        seed in any::<u64>(),
        n_trees in 1usize..=6,
    ) {
        let p = ForestParams { n_trees, ..ForestParams::default() };
        let fast = Forest::fit(&d, &p, seed);
        let reference = Forest::fit_reference(&d, &p, seed);
        let text = fast.to_text();
        prop_assert_eq!(&text, &reference.to_text(), "byte-identical persisted models");
        let loaded = Forest::from_text(&text).expect("round-trip parses");
        prop_assert_eq!(&loaded.to_text(), &text, "round-trip is byte-identical");
        for s in &d.samples {
            prop_assert_eq!(fast.predict(&s.features), loaded.predict(&s.features));
        }
    }
}

proptest! {
    // SMO is the expensive fit; fewer cases keep the suite fast while
    // still exercising full-Gram and lazy-row modes below.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Gram-cached SMO ≡ reference SMO: equal machines (support
    /// vectors, coefficients, biases — `Svm` derives `PartialEq`), in
    /// both full-matrix and lazy-row cache modes.
    #[test]
    fn svm_fast_path_matches_reference(d in arb_dataset(), seed in any::<u64>()) {
        let params = SvmParams { max_iters: 40, ..SvmParams::default() };
        let fast = Svm::fit(&d, &params, seed);
        let reference = Svm::fit_reference(&d, &params, seed);
        prop_assert_eq!(&fast, &reference, "bit-identical machines");

        // Force the bounded row cache: every pairwise problem exceeds
        // gram_limit, so rows are cached lazily and recomputed past the
        // cap. Same machines either way.
        let lazy = Svm::fit(&d, &SvmParams { gram_limit: 4, ..params }, seed);
        prop_assert_eq!(&fast, &lazy, "cache mode must not leak into results");
    }
}
