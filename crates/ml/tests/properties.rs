//! Property-based tests for the ML crate.

use bs_ml::dataset::{Dataset, Sample};
use bs_ml::forest::{Forest, ForestParams};
use bs_ml::metrics::ConfusionMatrix;
use bs_ml::tree::{CartParams, DecisionTree};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 2–4 classes, 2–5 features, 10–60 samples with finite values.
    (2usize..=4, 2usize..=5).prop_flat_map(|(n_classes, n_features)| {
        proptest::collection::vec(
            (proptest::collection::vec(-100.0f64..100.0, n_features), 0usize..n_classes),
            10..60,
        )
        .prop_map(move |rows| {
            let mut d = Dataset::new(
                (0..n_features).map(|i| format!("f{i}")).collect(),
                (0..n_classes).map(|i| format!("c{i}")).collect(),
            );
            for (features, label) in rows {
                d.push(Sample { features, label });
            }
            d
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A tree always predicts a class that exists in its training data.
    #[test]
    fn tree_predicts_seen_classes(d in arb_dataset(), probe in proptest::collection::vec(-200.0f64..200.0, 5)) {
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        let x: Vec<f64> = probe.iter().copied().take(d.n_features()).collect();
        if x.len() == d.n_features() {
            let pred = t.predict(&x);
            prop_assert!(d.present_classes().contains(&pred));
        }
    }

    /// Training accuracy of an unconstrained tree is at least as good as
    /// always guessing the majority class.
    #[test]
    fn tree_beats_or_ties_majority_on_training_data(d in arb_dataset()) {
        let params = CartParams { max_depth: 30, min_samples_split: 2, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &params, 0);
        let correct = d.samples.iter().filter(|s| t.predict(&s.features) == s.label).count();
        let majority = d.class_counts().into_iter().max().unwrap_or(0);
        prop_assert!(correct >= majority, "correct={correct} majority={majority}");
    }

    /// Forest importances are a probability vector (or all zero).
    #[test]
    fn forest_importances_normalized(d in arb_dataset()) {
        let f = Forest::fit(&d, &ForestParams { n_trees: 10, ..Default::default() }, 1);
        let sum: f64 = f.importances().iter().sum();
        prop_assert!(f.importances().iter().all(|v| *v >= 0.0));
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    /// Metrics always land in [0, 1] and accuracy matches the diagonal.
    #[test]
    fn metrics_bounds(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..100)
    ) {
        let truth: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let pred: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let cm = ConfusionMatrix::from_predictions(4, &truth, &pred);
        let m = cm.metrics();
        for v in [m.accuracy, m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v), "{m:?}");
        }
        let diag: usize = (0..4).map(|c| cm.tp(c)).sum();
        prop_assert!((m.accuracy - diag as f64 / pairs.len() as f64).abs() < 1e-12);
    }

    /// Stratified splits partition the dataset exactly.
    #[test]
    fn split_partitions(d in arb_dataset(), seed in any::<u64>()) {
        let (train, test) = d.stratified_split(0.6, seed);
        prop_assert_eq!(train.len() + test.len(), d.len());
        // Per-class totals preserved.
        let tc = train.class_counts();
        let sc = test.class_counts();
        let dc = d.class_counts();
        for c in 0..d.n_classes() {
            prop_assert_eq!(tc[c] + sc[c], dc[c]);
        }
    }
}
