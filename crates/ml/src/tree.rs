//! CART decision trees (Breiman et al., 1984).
//!
//! Binary trees grown by exhaustive search for the split minimizing
//! weighted Gini impurity, with the usual stopping controls. The same
//! implementation serves stand-alone CART and the forest's base
//! learners (which add per-split feature subsampling).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Growth controls for a CART tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CartParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a node must hold to be split.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Features examined per split: `None` = all (CART);
    /// `Some(k)` = a random subset of k (random-forest mode).
    pub max_features: Option<usize>,
}

impl Default for CartParams {
    fn default() -> Self {
        CartParams { max_depth: 12, min_samples_split: 4, min_samples_leaf: 1, max_features: None }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A trained CART classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
    n_features: usize,
    /// Total Gini-impurity decrease attributed to each feature during
    /// growth (unnormalized). The forest aggregates these into the
    /// importances of the paper's Table IV.
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Grow a tree on `data`. The seed only matters when
    /// `max_features` subsampling is active.
    pub fn fit(data: &Dataset, params: &CartParams, seed: u64) -> Self {
        Self::fit_on_indices(data, &(0..data.len()).collect::<Vec<_>>(), params, seed)
    }

    /// Grow on a subset of sample indices (bootstrap support for the
    /// forest).
    pub fn fit_on_indices(
        data: &Dataset,
        indices: &[usize],
        params: &CartParams,
        seed: u64,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert!(data.n_classes() >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut importances = vec![0.0; data.n_features()];
        let root = grow(data, indices.to_vec(), params, 0, &mut rng, &mut importances);
        DecisionTree {
            root,
            n_classes: data.n_classes(),
            n_features: data.n_features(),
            importances,
        }
    }

    /// Predict the class of one feature vector.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.n_features, "feature arity mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Raw (unnormalized) per-feature impurity decreases.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Tree depth (leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        fn l(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => l(left) + l(right),
            }
        }
        l(&self.root)
    }

    /// Write the tree's nodes in pre-order (`S <feature> <threshold>` /
    /// `L <class>` lines) for the persistence format.
    pub(crate) fn write_nodes(&self, out: &mut String) {
        fn rec(n: &Node, out: &mut String) {
            match n {
                Node::Leaf { class } => out.push_str(&format!("L {class}\n")),
                Node::Split { feature, threshold, left, right } => {
                    out.push_str(&format!("S {feature} {:x}\n", threshold.to_bits()));
                    rec(left, out);
                    rec(right, out);
                }
            }
        }
        rec(&self.root, out);
    }

    /// Rebuild a tree from pre-order node lines (persistence format).
    /// Raw importances are not persisted per tree (the forest stores the
    /// aggregate), so they reload as zeros.
    pub(crate) fn read_nodes<'a>(
        lines: &mut impl Iterator<Item = (usize, &'a str)>,
        n_classes: usize,
        n_features: usize,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        fn rec<'a>(
            lines: &mut impl Iterator<Item = (usize, &'a str)>,
            n_classes: usize,
            n_features: usize,
            depth: usize,
        ) -> Result<Node, PersistError> {
            let e = |line: usize, what: String| PersistError { line, what };
            if depth > 64 {
                return Err(e(0, "tree deeper than 64: refusing".to_string()));
            }
            let (ln, line) =
                lines.next().ok_or_else(|| e(0, "unexpected end of input in tree".to_string()))?;
            let mut f = line.split_whitespace();
            match f.next() {
                Some("L") => {
                    let class: usize = f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| e(ln, format!("bad leaf {line:?}")))?;
                    if class >= n_classes {
                        return Err(e(ln, format!("leaf class {class} out of range")));
                    }
                    Ok(Node::Leaf { class })
                }
                Some("S") => {
                    let feature: usize = f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| e(ln, format!("bad split {line:?}")))?;
                    if feature >= n_features {
                        return Err(e(ln, format!("split feature {feature} out of range")));
                    }
                    let threshold = f
                        .next()
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .map(f64::from_bits)
                        .ok_or_else(|| e(ln, format!("bad threshold in {line:?}")))?;
                    let left = rec(lines, n_classes, n_features, depth + 1)?;
                    let right = rec(lines, n_classes, n_features, depth + 1)?;
                    Ok(Node::Split {
                        feature,
                        threshold,
                        left: Box::new(left),
                        right: Box::new(right),
                    })
                }
                _ => Err(e(ln, format!("expected node line, got {line:?}"))),
            }
        }
        let root = rec(lines, n_classes, n_features, 0)?;
        Ok(DecisionTree { root, n_classes, n_features, importances: vec![0.0; n_features] })
    }
}

/// Gini impurity of a class histogram.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    counts.iter().enumerate().max_by_key(|(_, c)| **c).map(|(i, _)| i).unwrap_or(0)
}

fn grow(
    data: &Dataset,
    indices: Vec<usize>,
    params: &CartParams,
    depth: usize,
    rng: &mut StdRng,
    importances: &mut [f64],
) -> Node {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in &indices {
        counts[data.samples[i].label] += 1;
    }
    let node_gini = gini(&counts, indices.len());
    let stop =
        depth >= params.max_depth || indices.len() < params.min_samples_split || node_gini == 0.0;
    if stop {
        return Node::Leaf { class: majority(&counts) };
    }

    // Candidate features (possibly a random subset).
    let mut features: Vec<usize> = (0..data.n_features()).collect();
    if let Some(k) = params.max_features {
        features.shuffle(rng);
        features.truncate(k.max(1).min(data.n_features()));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
    let n = indices.len() as f64;
    let mut sorted = indices.clone();
    for &f in &features {
        // Sort once per feature; sweep thresholds between distinct values.
        sorted.sort_by(|&a, &b| {
            data.samples[a].features[f]
                .partial_cmp(&data.samples[b].features[f])
                .expect("finite features")
        });
        let mut left_counts = vec![0usize; data.n_classes()];
        let mut right_counts = counts.clone();
        for k in 0..sorted.len() - 1 {
            let label = data.samples[sorted[k]].label;
            left_counts[label] += 1;
            right_counts[label] -= 1;
            let v = data.samples[sorted[k]].features[f];
            let v_next = data.samples[sorted[k + 1]].features[f];
            if v == v_next {
                continue; // can't split between equal values
            }
            let n_left = k + 1;
            let n_right = sorted.len() - n_left;
            if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                continue;
            }
            let w = (n_left as f64 / n) * gini(&left_counts, n_left)
                + (n_right as f64 / n) * gini(&right_counts, n_right);
            if best.map(|(_, _, bw)| w < bw).unwrap_or(true) {
                best = Some((f, (v + v_next) / 2.0, w));
            }
        }
    }

    // Accept zero-improvement splits (like scikit-learn): XOR-style
    // structure yields no first-level Gini gain, yet splitting still
    // makes progress because both children are strictly smaller.
    match best {
        Some((feature, threshold, w)) if w <= node_gini + 1e-12 => {
            // Importance: impurity decrease weighted by node size.
            importances[feature] += (node_gini - w) * n;
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.into_iter().partition(|&i| data.samples[i].features[feature] <= threshold);
            let left = grow(data, left_idx, params, depth + 1, rng, importances);
            let right = grow(data, right_idx, params, depth + 1, rng, importances);
            Node::Split { feature, threshold, left: Box::new(left), right: Box::new(right) }
        }
        _ => Node::Leaf { class: majority(&counts) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    fn two_blob_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["lo".into(), "hi".into()]);
        for i in 0..20 {
            d.push(Sample { features: vec![i as f64 * 0.01, 0.3], label: 0 });
            d.push(Sample { features: vec![1.0 + i as f64 * 0.01, 0.7], label: 1 });
        }
        d
    }

    #[test]
    fn separable_data_classifies_perfectly() {
        let d = two_blob_dataset();
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        for s in &d.samples {
            assert_eq!(t.predict(&s.features), s.label);
        }
        assert_eq!(t.depth(), 1, "one split suffices");
        assert_eq!(t.leaves(), 2);
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        let d = two_blob_dataset();
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        let imp = t.raw_importances();
        assert!(imp[0] > 0.0, "feature x carries all signal");
        assert_eq!(imp[1], 0.0, "feature y is constant-ish and unused");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(vec!["x".into()], vec!["only".into()]);
        for i in 0..10 {
            d.push(Sample { features: vec![i as f64], label: 0 });
        }
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.predict(&[3.0]), 0);
    }

    #[test]
    fn max_depth_zero_yields_majority_stump() {
        let mut d = two_blob_dataset();
        // Unbalance it: add extra class-1 samples.
        for i in 0..10 {
            d.push(Sample { features: vec![2.0 + i as f64, 0.5], label: 1 });
        }
        let p = CartParams { max_depth: 0, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &p, 0);
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.predict(&[0.0, 0.3]), 1, "majority class wins");
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = two_blob_dataset();
        let p = CartParams { min_samples_leaf: 25, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &p, 0);
        // 40 samples, each child would need ≥25: impossible, so no split.
        assert_eq!(t.leaves(), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["zero".into(), "one".into()]);
        for (a, b, l) in [(0.0, 0.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)] {
            for _ in 0..5 {
                d.push(Sample { features: vec![a, b], label: l });
            }
        }
        let p = CartParams { min_samples_split: 2, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &p, 0);
        for s in &d.samples {
            assert_eq!(t.predict(&s.features), s.label);
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn duplicate_feature_values_never_split_between_equals() {
        // All x equal: no split possible on x; tree must fall back to leaf.
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(Sample { features: vec![5.0], label: i % 2 });
        }
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        assert_eq!(t.leaves(), 1);
    }

    #[test]
    fn feature_subsampling_is_seed_deterministic() {
        let d = two_blob_dataset();
        let p = CartParams { max_features: Some(1), ..CartParams::default() };
        let t1 = DecisionTree::fit(&d, &p, 9);
        let t2 = DecisionTree::fit(&d, &p, 9);
        for s in &d.samples {
            assert_eq!(t1.predict(&s.features), t2.predict(&s.features));
        }
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn predict_checks_arity() {
        let d = two_blob_dataset();
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        t.predict(&[1.0]);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
        let g = gini(&[3, 3, 3], 9);
        assert!((g - (1.0 - 3.0 * (1.0 / 9.0))).abs() < 1e-12);
    }
}
