//! CART decision trees (Breiman et al., 1984).
//!
//! Binary trees grown by exhaustive search for the split minimizing
//! weighted Gini impurity, with the usual stopping controls. The same
//! implementation serves stand-alone CART and the forest's base
//! learners (which add per-split feature subsampling).
//!
//! Two implementations live here (DESIGN.md §12):
//!
//! * [`DecisionTree`] — the **columnar fast path**: training reads a
//!   [`bs_mlcore::ColumnarView`] over the deduplicated, weighted
//!   bootstrap rows, arg-sorts every feature column once per fit and
//!   maintains per-node index segments by stable in-place partition
//!   (`O(features · n log n + nodes · features · n)` instead of the
//!   reference's `O(nodes · features · n log n)`) while many features
//!   are candidates, switching to node-local candidate sorts below a
//!   cost crossover; the grown tree is a [`bs_mlcore::FlatTree`] arena
//!   with iterative `predict`.
//! * [`ReferenceTree`] — the retained boxed-node reference: per-node
//!   re-sorting, `Box` recursion. Property tests
//!   (`crates/ml/tests/mlcore_equivalence.rs`) prove the fast path
//!   produces bit-identical splits, importances and predictions.
//!
//! Both share the split-quality arithmetic ([`gini`] in integer
//! sum-of-squares form) and the RNG discipline (one feature shuffle
//! per candidate node, pre-order), which is what makes bit-equality
//! achievable rather than merely approximate.

use crate::dataset::Dataset;
use bs_mlcore::{argmax_first, ColumnarView, FlatTree, LaneBlocks, PresortedColumns, LEAF};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Growth controls for a CART tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CartParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a node must hold to be split.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Features examined per split: `None` = all (CART);
    /// `Some(k)` = a random subset of k (random-forest mode).
    pub max_features: Option<usize>,
}

impl Default for CartParams {
    fn default() -> Self {
        CartParams { max_depth: 12, min_samples_split: 4, min_samples_leaf: 1, max_features: None }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A trained CART classifier (flat-arena representation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    flat: FlatTree,
    n_classes: usize,
    n_features: usize,
    /// Total Gini-impurity decrease attributed to each feature during
    /// growth (unnormalized). The forest aggregates these into the
    /// importances of the paper's Table IV.
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Grow a tree on `data` via the columnar fast path. The seed only
    /// matters when `max_features` subsampling is active.
    pub fn fit(data: &Dataset, params: &CartParams, seed: u64) -> Self {
        bs_telemetry::counter_add("ml.fit.cart", 1);
        Self::fit_on_indices(data, &(0..data.len()).collect::<Vec<_>>(), params, seed)
    }

    /// Grow on a subset of sample indices (bootstrap support for the
    /// forest; duplicate indices are distinct training rows).
    pub fn fit_on_indices(
        data: &Dataset,
        indices: &[usize],
        params: &CartParams,
        seed: u64,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert!(data.n_classes() >= 1);
        let (view, weights) = data.columnar_weighted(indices);
        let mut grower = ColumnarGrower {
            presort: None,
            view: &view,
            params,
            weights: &weights,
            n_classes: data.n_classes(),
            rng: StdRng::seed_from_u64(seed),
            importances: vec![0.0; data.n_features()],
            flat: FlatTree::new(),
        };
        // Arg-sorting every column only pays when the root itself will
        // grow in global mode; a node-local root never reads it.
        if view.n_features() > 0 && !grower.local_mode(view.rows()) {
            grower.presort = Some(PresortedColumns::new(&view));
        }
        grower.grow(0, view.rows(), 0);
        bs_telemetry::counter_add("ml.fit.nodes", grower.flat.len() as u64);
        DecisionTree {
            flat: grower.flat,
            n_classes: data.n_classes(),
            n_features: data.n_features(),
            importances: grower.importances,
        }
    }

    /// Predict the class of one feature vector (iterative descent, no
    /// pointer chasing).
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.n_features, "feature arity mismatch");
        self.flat.predict(x) as usize
    }

    /// Predict many feature vectors through the lane-parallel blocked
    /// descent ([`FlatTree::predict_lanes`]): transpose once, then
    /// eight rows walk the arena per tree level. Bit-identical to
    /// [`DecisionTree::predict_all_rows`], the retained row-at-a-time
    /// reference.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let blocks = LaneBlocks::from_rows(xs, self.n_features);
        self.flat.predict_blocked(&blocks).into_iter().map(|c| c as usize).collect()
    }

    /// Row-at-a-time batch prediction — the executable reference the
    /// lane path is property-tested against (`tests/simd_equivalence.rs`).
    pub fn predict_all_rows(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        for x in xs {
            assert_eq!(x.len(), self.n_features, "feature arity mismatch");
        }
        self.flat.predict_all(xs).into_iter().map(|c| c as usize).collect()
    }

    /// Predict each block of a pre-transposed batch, appending into a
    /// caller-owned buffer (forest voting support: the forest
    /// transposes once and reuses the buffer across trees).
    pub(crate) fn predict_blocked_into(&self, blocks: &LaneBlocks, out: &mut Vec<u32>) {
        assert_eq!(blocks.n_features(), self.n_features, "feature arity mismatch");
        self.flat.predict_blocked_into(blocks, out);
    }

    /// Feature arity this tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Raw (unnormalized) per-feature impurity decreases.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Tree depth (leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        self.flat.depth()
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.flat.leaves()
    }

    /// Write the tree's nodes in pre-order (`S <feature> <threshold>` /
    /// `L <class>` lines) for the persistence format. The arena is
    /// already pre-order, so this is a linear scan — the wire format is
    /// unchanged from the boxed representation.
    pub(crate) fn write_nodes(&self, out: &mut String) {
        for node in self.flat.nodes() {
            if node.feature == LEAF {
                out.push_str(&format!("L {}\n", node.right));
            } else {
                out.push_str(&format!("S {} {:x}\n", node.feature, node.threshold.to_bits()));
            }
        }
    }

    /// Rebuild a tree from pre-order node lines (persistence format),
    /// unflattening directly into the arena. Raw importances are not
    /// persisted per tree (the forest stores the aggregate), so they
    /// reload as zeros.
    pub(crate) fn read_nodes<'a>(
        lines: &mut impl Iterator<Item = (usize, &'a str)>,
        n_classes: usize,
        n_features: usize,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        fn rec<'a>(
            lines: &mut impl Iterator<Item = (usize, &'a str)>,
            n_classes: usize,
            n_features: usize,
            depth: usize,
            flat: &mut FlatTree,
        ) -> Result<(), PersistError> {
            let e = |line: usize, what: String| PersistError { line, what };
            if depth > 64 {
                return Err(e(0, "tree deeper than 64: refusing".to_string()));
            }
            let (ln, line) =
                lines.next().ok_or_else(|| e(0, "unexpected end of input in tree".to_string()))?;
            let mut f = line.split_whitespace();
            match f.next() {
                Some("L") => {
                    let class: usize = f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| e(ln, format!("bad leaf {line:?}")))?;
                    if class >= n_classes {
                        return Err(e(ln, format!("leaf class {class} out of range")));
                    }
                    flat.push_leaf(class as u32);
                    Ok(())
                }
                Some("S") => {
                    let feature: usize = f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| e(ln, format!("bad split {line:?}")))?;
                    if feature >= n_features {
                        return Err(e(ln, format!("split feature {feature} out of range")));
                    }
                    let threshold = f
                        .next()
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .map(f64::from_bits)
                        .ok_or_else(|| e(ln, format!("bad threshold in {line:?}")))?;
                    let idx = flat.begin_split(feature as u32, threshold);
                    rec(lines, n_classes, n_features, depth + 1, flat)?;
                    flat.finish_split(idx);
                    rec(lines, n_classes, n_features, depth + 1, flat)?;
                    Ok(())
                }
                _ => Err(e(ln, format!("expected node line, got {line:?}"))),
            }
        }
        let mut flat = FlatTree::new();
        rec(lines, n_classes, n_features, 0, &mut flat)?;
        Ok(DecisionTree { flat, n_classes, n_features, importances: vec![0.0; n_features] })
    }
}

/// The retained boxed-node reference implementation: per-node
/// re-sorting during growth, `Box` recursion during prediction.
///
/// This is the executable specification the columnar fast path is
/// property-tested against; [`ReferenceTree::flatten`] converts to a
/// [`DecisionTree`] for wire-format comparisons.
#[derive(Debug, Clone)]
pub struct ReferenceTree {
    root: Node,
    n_classes: usize,
    n_features: usize,
    importances: Vec<f64>,
}

impl ReferenceTree {
    /// Grow a reference tree on `data`.
    pub fn fit(data: &Dataset, params: &CartParams, seed: u64) -> Self {
        Self::fit_on_indices(data, &(0..data.len()).collect::<Vec<_>>(), params, seed)
    }

    /// Grow a reference tree on a subset of sample indices.
    pub fn fit_on_indices(
        data: &Dataset,
        indices: &[usize],
        params: &CartParams,
        seed: u64,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        assert!(data.n_classes() >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut importances = vec![0.0; data.n_features()];
        let root = grow(data, indices.to_vec(), params, 0, &mut rng, &mut importances);
        ReferenceTree {
            root,
            n_classes: data.n_classes(),
            n_features: data.n_features(),
            importances,
        }
    }

    /// Predict by recursive descent through the boxed nodes.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.n_features, "feature arity mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Raw (unnormalized) per-feature impurity decreases.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Convert to the flat-arena representation (pre-order walk).
    pub fn flatten(&self) -> DecisionTree {
        fn rec(n: &Node, flat: &mut FlatTree) {
            match n {
                Node::Leaf { class } => {
                    flat.push_leaf(*class as u32);
                }
                Node::Split { feature, threshold, left, right } => {
                    let idx = flat.begin_split(*feature as u32, *threshold);
                    rec(left, flat);
                    flat.finish_split(idx);
                    rec(right, flat);
                }
            }
        }
        let mut flat = FlatTree::new();
        rec(&self.root, &mut flat);
        DecisionTree {
            flat,
            n_classes: self.n_classes,
            n_features: self.n_features,
            importances: self.importances.clone(),
        }
    }
}

/// Gini impurity of a class histogram, in integer sum-of-squares form:
/// `1 - Σc²/t²`. The numerator is exact integer arithmetic, so the
/// columnar sweep can maintain `Σc²` incrementally (`O(1)` per
/// threshold candidate instead of `O(classes)`) and still produce the
/// same bits as this function computed from scratch.
fn gini(counts: &[usize], total: usize) -> f64 {
    let sq: u64 = counts.iter().map(|&c| (c as u64) * (c as u64)).sum();
    gini_from_sq(sq, total)
}

/// Gini impurity from a precomputed `Σc²`. Shared by [`gini`] and the
/// incremental sweep so both paths round identically.
fn gini_from_sq(sq: u64, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as u64;
    1.0 - sq as f64 / ((t * t) as f64)
}

/// Majority class: ties break to the **first** (smallest) class index.
fn majority(counts: &[usize]) -> usize {
    argmax_first(counts)
}

/// Sweep one feature's value-sorted position list for the best
/// threshold, maintaining `Σc²` on both sides incrementally. Shared by
/// the global (presorted-segment) and node-local growers so both
/// produce bit-identical split decisions.
///
/// `seg` holds **distinct** rows; `weights[p]` is row `p`'s bootstrap
/// multiplicity and `total` the node's weighted size. Moving a row of
/// weight `w` whose class count is `c` across the split changes `Σc²`
/// by `(2c ± w)·w` — exact integer arithmetic, so the result is
/// bit-identical to sweeping the duplicate-materialized rows (the
/// duplicates are value-adjacent, and no threshold lands between equal
/// values).
#[allow(clippy::too_many_arguments)]
fn sweep_feature(
    view: &ColumnarView,
    seg: &[u32],
    f: usize,
    weights: &[usize],
    total: usize,
    counts: &[usize],
    node_sq: u64,
    min_samples_leaf: usize,
    left_counts: &mut [usize],
    right_counts: &mut [usize],
    best: &mut Option<(usize, f64, f64)>,
) {
    let n = total as f64;
    let col = view.col(f);
    left_counts.fill(0);
    right_counts.copy_from_slice(counts);
    let mut sq_left: u64 = 0;
    let mut sq_right: u64 = node_sq;
    let mut n_left = 0usize;
    for k in 0..seg.len() - 1 {
        let p = seg[k];
        let label = view.label(p);
        let rw = weights[p as usize];
        let rwu = rw as u64;
        let c = left_counts[label] as u64;
        sq_left += (2 * c + rwu) * rwu;
        left_counts[label] += rw;
        let c = right_counts[label] as u64;
        sq_right -= (2 * c - rwu) * rwu;
        right_counts[label] -= rw;
        n_left += rw;
        let v = col[p as usize];
        let v_next = col[seg[k + 1] as usize];
        if v == v_next {
            continue; // can't split between equal values
        }
        let n_right = total - n_left;
        if n_left < min_samples_leaf || n_right < min_samples_leaf {
            continue;
        }
        let w = (n_left as f64 / n) * gini_from_sq(sq_left, n_left)
            + (n_right as f64 / n) * gini_from_sq(sq_right, n_right);
        if best.map(|(_, _, bw)| w < bw).unwrap_or(true) {
            *best = Some((f, (v + v_next) / 2.0, w));
        }
    }
}

/// The columnar fast-path grower: presorted feature segments, stable
/// partition, incremental `Σc²` sweep, flat-arena output.
///
/// Two regimes, chosen per node by [`ColumnarGrower::local_mode`]:
///
/// * **global** — every feature array stays partitioned into per-node
///   segments ([`PresortedColumns`]), so candidate sweeps need no
///   sorting at all. Splitting costs `O(features · m)` partition work
///   per node, which pays off when most features are candidates.
/// * **node-local** — below the cost crossover (small segments or a
///   small `max_features` sample) the node owns a plain ascending
///   position list and sorts it per *candidate* feature only. Sorting
///   ascending positions by value with ties on position is exactly the
///   order the stable global partition maintains, so the two regimes
///   are bit-identical (see `mlcore_equivalence`).
struct ColumnarGrower<'a> {
    view: &'a ColumnarView,
    params: &'a CartParams,
    /// Bootstrap multiplicity of each view row (all 1 for a plain fit).
    weights: &'a [usize],
    presort: Option<PresortedColumns>,
    n_classes: usize,
    rng: StdRng,
    importances: Vec<f64>,
    flat: FlatTree,
}

impl ColumnarGrower<'_> {
    /// Should the node of size `m` grow in node-local mode?
    ///
    /// Pure function of the segment size and the parameters, so the
    /// decision is identical across runs and thread counts. Global
    /// partition maintenance costs ~`2·F·m` writes per split, while
    /// node-local sorting costs ~`mtry·m·log₂(m)` comparisons; measured
    /// on the bench workloads, an `F` budget is the crossover.
    fn local_mode(&self, m: usize) -> bool {
        let f = self.view.n_features();
        let mtry = self.params.max_features.map_or(f, |k| k.max(1).min(f));
        let log2m = (usize::BITS - m.leading_zeros()) as usize;
        mtry * log2m <= f
    }

    /// Grow the node owning segment `[lo, hi)` of every presorted
    /// feature array. Mirrors the reference [`grow`] decision for
    /// decision: same stop rule, same candidate order, same RNG
    /// consumption, same float expressions.
    fn grow(&mut self, lo: usize, hi: usize, depth: usize) {
        if self.view.n_features() == 0 {
            // No columns to walk (and nothing to split on): count
            // straight off the label array, which the degenerate
            // zero-feature fit owns wholesale.
            let mut counts = vec![0usize; self.n_classes];
            for (&l, &w) in self.view.labels().iter().zip(self.weights) {
                counts[l as usize] += w;
            }
            self.flat.push_leaf(majority(&counts) as u32);
            return;
        }
        if self.presort.is_none() || self.local_mode(hi - lo) {
            // Drop to node-local growth: materialize the node's
            // ascending position list and never touch the global
            // arrays below this point (the segment range is owned by
            // this subtree alone, so leaving it stale is safe).
            let positions: Vec<u32> = match &self.presort {
                Some(ps) => {
                    let mut v = ps.feature_segment(0, lo, hi).to_vec();
                    v.sort_unstable();
                    v
                }
                // Only the root grows without global arrays; its
                // position list is every row of the bootstrap view.
                None => (lo as u32..hi as u32).collect(),
            };
            self.grow_local(&positions, depth);
            return;
        }

        let mut counts = vec![0usize; self.n_classes];
        let presort = self.presort.as_ref().expect("global mode has presorted arrays");
        for &p in presort.feature_segment(0, lo, hi) {
            counts[self.view.label(p)] += self.weights[p as usize];
        }
        // The node's weighted size — the reference's duplicate count.
        let m: usize = counts.iter().sum();
        let node_gini = gini(&counts, m);
        let stop =
            depth >= self.params.max_depth || m < self.params.min_samples_split || node_gini == 0.0;
        if stop {
            self.flat.push_leaf(majority(&counts) as u32);
            return;
        }

        // Candidate features (possibly a random subset) — identical
        // shuffle, so the RNG stream matches the reference node for
        // node (pre-order).
        let mut features: Vec<usize> = (0..self.view.n_features()).collect();
        if let Some(k) = self.params.max_features {
            features.shuffle(&mut self.rng);
            features.truncate(k.max(1).min(self.view.n_features()));
        }

        let node_sq: u64 = counts.iter().map(|&c| (c as u64) * (c as u64)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
        let n = m as f64;
        let mut left_counts = vec![0usize; self.n_classes];
        let mut right_counts = vec![0usize; self.n_classes];
        let presort = self.presort.as_ref().expect("global mode has presorted arrays");
        for &f in &features {
            // Already sorted: sweep thresholds between distinct values.
            sweep_feature(
                self.view,
                presort.feature_segment(f, lo, hi),
                f,
                self.weights,
                m,
                &counts,
                node_sq,
                self.params.min_samples_leaf,
                &mut left_counts,
                &mut right_counts,
                &mut best,
            );
        }

        // Accept zero-improvement splits (like scikit-learn): XOR-style
        // structure yields no first-level Gini gain, yet splitting still
        // makes progress because both children are strictly smaller.
        match best {
            Some((feature, threshold, w)) if w <= node_gini + 1e-12 => {
                // Importance: impurity decrease weighted by node size.
                self.importances[feature] += (node_gini - w) * n;
                let col = self.view.col(feature);
                let presort = self.presort.as_mut().expect("global mode has presorted arrays");
                presort.mark_by_threshold(feature, lo, hi, col, threshold);
                let n_left = presort.partition(lo, hi);
                let idx = self.flat.begin_split(feature as u32, threshold);
                self.grow(lo, lo + n_left, depth + 1);
                self.flat.finish_split(idx);
                self.grow(lo + n_left, hi, depth + 1);
            }
            _ => {
                self.flat.push_leaf(majority(&counts) as u32);
            }
        }
    }

    /// Node-local growth: `positions` is the node's row set in
    /// ascending order (the reference's own index-list order). Each
    /// candidate feature sorts a scratch copy by `(value, position)` —
    /// bit-identical to the global segment order — and sweeps with the
    /// shared [`sweep_feature`]. Children partition the ascending list
    /// by the split predicate, preserving ascending order, exactly as
    /// the reference partitions its index list.
    fn grow_local(&mut self, positions: &[u32], depth: usize) {
        let mut counts = vec![0usize; self.n_classes];
        for &p in positions {
            counts[self.view.label(p)] += self.weights[p as usize];
        }
        // The node's weighted size — the reference's duplicate count.
        let m: usize = counts.iter().sum();
        let node_gini = gini(&counts, m);
        let stop =
            depth >= self.params.max_depth || m < self.params.min_samples_split || node_gini == 0.0;
        if stop {
            self.flat.push_leaf(majority(&counts) as u32);
            return;
        }

        let mut features: Vec<usize> = (0..self.view.n_features()).collect();
        if let Some(k) = self.params.max_features {
            features.shuffle(&mut self.rng);
            features.truncate(k.max(1).min(self.view.n_features()));
        }

        let node_sq: u64 = counts.iter().map(|&c| (c as u64) * (c as u64)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
        let n = m as f64;
        let mut left_counts = vec![0usize; self.n_classes];
        let mut right_counts = vec![0usize; self.n_classes];
        let mut by_value = positions.to_vec();
        for &f in &features {
            let col = self.view.col(f);
            by_value.copy_from_slice(positions);
            // Ascending positions sorted by value with ties on position
            // == the stable order the global arrays maintain.
            by_value.sort_unstable_by(|&a, &b| {
                col[a as usize]
                    .partial_cmp(&col[b as usize])
                    .expect("finite features")
                    .then(a.cmp(&b))
            });
            sweep_feature(
                self.view,
                &by_value,
                f,
                self.weights,
                m,
                &counts,
                node_sq,
                self.params.min_samples_leaf,
                &mut left_counts,
                &mut right_counts,
                &mut best,
            );
        }

        match best {
            Some((feature, threshold, w)) if w <= node_gini + 1e-12 => {
                self.importances[feature] += (node_gini - w) * n;
                let col = self.view.col(feature);
                let (left, right): (Vec<u32>, Vec<u32>) =
                    positions.iter().partition(|&&p| col[p as usize] <= threshold);
                let idx = self.flat.begin_split(feature as u32, threshold);
                self.grow_local(&left, depth + 1);
                self.flat.finish_split(idx);
                self.grow_local(&right, depth + 1);
            }
            _ => {
                self.flat.push_leaf(majority(&counts) as u32);
            }
        }
    }
}

/// The reference grower: re-sorts the node's indices per feature.
fn grow(
    data: &Dataset,
    indices: Vec<usize>,
    params: &CartParams,
    depth: usize,
    rng: &mut StdRng,
    importances: &mut [f64],
) -> Node {
    let mut counts = vec![0usize; data.n_classes()];
    for &i in &indices {
        counts[data.samples[i].label] += 1;
    }
    let node_gini = gini(&counts, indices.len());
    let stop =
        depth >= params.max_depth || indices.len() < params.min_samples_split || node_gini == 0.0;
    if stop {
        return Node::Leaf { class: majority(&counts) };
    }

    // Candidate features (possibly a random subset).
    let mut features: Vec<usize> = (0..data.n_features()).collect();
    if let Some(k) = params.max_features {
        features.shuffle(rng);
        features.truncate(k.max(1).min(data.n_features()));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
    let n = indices.len() as f64;
    let mut sorted = indices.clone();
    for &f in &features {
        // Sort once per feature; sweep thresholds between distinct values.
        sorted.sort_by(|&a, &b| {
            data.samples[a].features[f]
                .partial_cmp(&data.samples[b].features[f])
                .expect("finite features")
        });
        let mut left_counts = vec![0usize; data.n_classes()];
        let mut right_counts = counts.clone();
        for k in 0..sorted.len() - 1 {
            let label = data.samples[sorted[k]].label;
            left_counts[label] += 1;
            right_counts[label] -= 1;
            let v = data.samples[sorted[k]].features[f];
            let v_next = data.samples[sorted[k + 1]].features[f];
            if v == v_next {
                continue; // can't split between equal values
            }
            let n_left = k + 1;
            let n_right = sorted.len() - n_left;
            if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                continue;
            }
            let w = (n_left as f64 / n) * gini(&left_counts, n_left)
                + (n_right as f64 / n) * gini(&right_counts, n_right);
            if best.map(|(_, _, bw)| w < bw).unwrap_or(true) {
                best = Some((f, (v + v_next) / 2.0, w));
            }
        }
    }

    // Accept zero-improvement splits (like scikit-learn): XOR-style
    // structure yields no first-level Gini gain, yet splitting still
    // makes progress because both children are strictly smaller.
    match best {
        Some((feature, threshold, w)) if w <= node_gini + 1e-12 => {
            // Importance: impurity decrease weighted by node size.
            importances[feature] += (node_gini - w) * n;
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.into_iter().partition(|&i| data.samples[i].features[feature] <= threshold);
            let left = grow(data, left_idx, params, depth + 1, rng, importances);
            let right = grow(data, right_idx, params, depth + 1, rng, importances);
            Node::Split { feature, threshold, left: Box::new(left), right: Box::new(right) }
        }
        _ => Node::Leaf { class: majority(&counts) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    fn two_blob_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["lo".into(), "hi".into()]);
        for i in 0..20 {
            d.push(Sample { features: vec![i as f64 * 0.01, 0.3], label: 0 });
            d.push(Sample { features: vec![1.0 + i as f64 * 0.01, 0.7], label: 1 });
        }
        d
    }

    #[test]
    fn separable_data_classifies_perfectly() {
        let d = two_blob_dataset();
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        for s in &d.samples {
            assert_eq!(t.predict(&s.features), s.label);
        }
        assert_eq!(t.depth(), 1, "one split suffices");
        assert_eq!(t.leaves(), 2);
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        let d = two_blob_dataset();
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        let imp = t.raw_importances();
        assert!(imp[0] > 0.0, "feature x carries all signal");
        assert_eq!(imp[1], 0.0, "feature y is constant-ish and unused");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(vec!["x".into()], vec!["only".into()]);
        for i in 0..10 {
            d.push(Sample { features: vec![i as f64], label: 0 });
        }
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.predict(&[3.0]), 0);
    }

    #[test]
    fn max_depth_zero_yields_majority_stump() {
        let mut d = two_blob_dataset();
        // Unbalance it: add extra class-1 samples.
        for i in 0..10 {
            d.push(Sample { features: vec![2.0 + i as f64, 0.5], label: 1 });
        }
        let p = CartParams { max_depth: 0, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &p, 0);
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.predict(&[0.0, 0.3]), 1, "majority class wins");
    }

    /// Regression for the documented tie-break: an exact tie in the
    /// majority count must resolve to the *smaller* class index.
    /// `max_by_key` (the old implementation) picked the larger one.
    #[test]
    fn majority_tie_breaks_to_smaller_class_index() {
        assert_eq!(majority(&[5, 5]), 0);
        assert_eq!(majority(&[0, 3, 3]), 1);
        let d = two_blob_dataset(); // exactly 20 of each class
        let p = CartParams { max_depth: 0, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &p, 0);
        assert_eq!(t.predict(&[9.0, 0.5]), 0, "20-20 tie goes to class 0");
        let r = ReferenceTree::fit(&d, &p, 0);
        assert_eq!(r.predict(&[9.0, 0.5]), 0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = two_blob_dataset();
        let p = CartParams { min_samples_leaf: 25, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &p, 0);
        // 40 samples, each child would need ≥25: impossible, so no split.
        assert_eq!(t.leaves(), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["zero".into(), "one".into()]);
        for (a, b, l) in [(0.0, 0.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)] {
            for _ in 0..5 {
                d.push(Sample { features: vec![a, b], label: l });
            }
        }
        let p = CartParams { min_samples_split: 2, ..CartParams::default() };
        let t = DecisionTree::fit(&d, &p, 0);
        for s in &d.samples {
            assert_eq!(t.predict(&s.features), s.label);
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn duplicate_feature_values_never_split_between_equals() {
        // All x equal: no split possible on x; tree must fall back to leaf.
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(Sample { features: vec![5.0], label: i % 2 });
        }
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        assert_eq!(t.leaves(), 1);
    }

    #[test]
    fn feature_subsampling_is_seed_deterministic() {
        let d = two_blob_dataset();
        let p = CartParams { max_features: Some(1), ..CartParams::default() };
        let t1 = DecisionTree::fit(&d, &p, 9);
        let t2 = DecisionTree::fit(&d, &p, 9);
        for s in &d.samples {
            assert_eq!(t1.predict(&s.features), t2.predict(&s.features));
        }
    }

    #[test]
    fn fast_path_matches_reference_on_blobs() {
        let d = two_blob_dataset();
        for seed in [0, 3, 9] {
            let p = CartParams { max_features: Some(1), ..CartParams::default() };
            let fast = DecisionTree::fit(&d, &p, seed);
            let reference = ReferenceTree::fit(&d, &p, seed);
            assert_eq!(fast.raw_importances(), reference.raw_importances());
            assert_eq!(fast, reference.flatten(), "identical arenas node for node");
            for s in &d.samples {
                assert_eq!(fast.predict(&s.features), reference.predict(&s.features));
            }
        }
    }

    #[test]
    fn predict_all_matches_predict() {
        let d = two_blob_dataset();
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        let xs: Vec<Vec<f64>> = d.samples.iter().map(|s| s.features.clone()).collect();
        let batch = t.predict_all(&xs);
        for (x, b) in xs.iter().zip(&batch) {
            assert_eq!(t.predict(x), *b);
        }
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn predict_checks_arity() {
        let d = two_blob_dataset();
        let t = DecisionTree::fit(&d, &CartParams::default(), 0);
        t.predict(&[1.0]);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
        let g = gini(&[3, 3, 3], 9);
        assert!((g - (1.0 - 3.0 * (1.0 / 9.0))).abs() < 1e-12);
    }

    /// The sum-of-squares form must agree with the textbook
    /// `1 - Σ(c/t)²` to floating-point-comparison accuracy on
    /// awkward histograms.
    #[test]
    fn sum_of_squares_gini_matches_textbook_form() {
        let cases: &[&[usize]] = &[&[1, 2, 3], &[7], &[13, 0, 5, 5], &[997, 3], &[1; 12]];
        for counts in cases {
            let total: usize = counts.iter().sum();
            let textbook = 1.0
                - counts
                    .iter()
                    .map(|&c| {
                        let p = c as f64 / total as f64;
                        p * p
                    })
                    .sum::<f64>();
            assert!((gini(counts, total) - textbook).abs() < 1e-12);
        }
    }
}
