//! Kernel support-vector machines.
//!
//! Soft-margin binary SVMs trained with a simplified SMO (sequential
//! minimal optimization) solver over an RBF kernel, lifted to
//! multi-class with one-vs-one voting — the construction behind the
//! paper's third algorithm (Schölkopf & Smola, 2001). Features are
//! standardized internally (zero mean, unit variance on the training
//! data) because RBF distances are scale-sensitive and the sensor's
//! features mix fractions with counts.
//!
//! Two solvers live here (DESIGN.md §12):
//!
//! * [`Svm::fit`] — the **fast path**: scaled rows in one flat
//!   [`RowMatrix`], the kernel behind a [`bs_mlcore::GramCache`]
//!   (flat symmetric matrix below [`SvmParams::gram_limit`] rows,
//!   bounded lazy row cache above it), and decision sums driven by a
//!   sorted support-index list so each KKT scan costs
//!   `O(|support|)` contiguous reads instead of an `O(n)` skip-scan
//!   over nested `Vec`s.
//! * [`Svm::fit_reference`] — the retained reference: per-pair
//!   `Vec<Vec<f64>>` Gram matrix and the textbook decision recompute.
//!
//! Every restructuring in the fast path is *exact*: the same kernel
//! bits, the same addition order (support indices ascend exactly like
//! the reference's skip-zero scan), the same RNG consumption. Property
//! tests (`crates/ml/tests/mlcore_equivalence.rs`) assert the two fits
//! produce equal machines, not merely similar accuracy.

use crate::dataset::Dataset;
use bs_mlcore::{argmax_first, GramCache, RowMatrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SVM hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty.
    pub c: f64,
    /// RBF kernel width: `k(x,y) = exp(-gamma ||x-y||²)`.
    pub gamma: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Passes without change before the solver stops.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps.
    pub max_iters: usize,
    /// Largest pairwise problem (rows) whose Gram matrix is fully
    /// materialized; larger problems fall back to a bounded row cache
    /// with the same memory budget (`gram_limit²` floats).
    pub gram_limit: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 10.0,
            gamma: 0.5,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 200,
            gram_limit: 2048,
        }
    }
}

/// One trained binary classifier (class_a vs class_b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BinarySvm {
    class_a: usize,
    class_b: usize,
    /// Support vectors, flat row-major.
    support_x: RowMatrix,
    /// alpha_i * y_i for each support vector.
    coef: Vec<f64>,
    bias: f64,
    gamma: f64,
}

impl BinarySvm {
    fn decision(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (i, c) in self.coef.iter().enumerate() {
            s += c * rbf(self.support_x.row(i), x, self.gamma);
        }
        s
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// A trained multi-class (one-vs-one) RBF SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svm {
    machines: Vec<BinarySvm>,
    n_classes: usize,
    n_features: usize,
    /// Standardization parameters from the training data.
    means: Vec<f64>,
    stds: Vec<f64>,
    /// Fallback when a class had no training data at all.
    default_class: usize,
}

impl Svm {
    /// Train on `data` with the given seed (SMO visits pairs randomly),
    /// via the kernel-cached fast solver.
    pub fn fit(data: &Dataset, params: &SvmParams, seed: u64) -> Self {
        bs_telemetry::counter_add("ml.fit.svm", 1);
        assert!(!data.is_empty(), "cannot fit an SVM on an empty dataset");
        let n = data.len();
        let d = data.n_features();

        // Standardize. Column-major accumulation; each column holds the
        // samples in dataset order, so every per-feature float sum adds
        // the same terms in the same order as the reference's
        // sample-major loop.
        let all: Vec<usize> = (0..n).collect();
        let view = data.columnar(&all);
        let mut means = vec![0.0; d];
        for (m, col) in means.iter_mut().zip((0..d).map(|f| view.col(f))) {
            for v in col {
                *m += v;
            }
            *m /= n as f64;
        }
        let mut stds = vec![0.0; d];
        for ((sd, col), m) in stds.iter_mut().zip((0..d).map(|f| view.col(f))).zip(&means) {
            for v in col {
                *sd += (v - m) * (v - m);
            }
            *sd = (*sd / n as f64).sqrt();
            if *sd < 1e-12 {
                *sd = 1.0; // constant feature: leave centered at zero
            }
        }
        let mut x = RowMatrix::new(d);
        let mut buf = vec![0.0; d];
        for s in &data.samples {
            for (o, ((v, m), sd)) in buf.iter_mut().zip(s.features.iter().zip(&means).zip(&stds)) {
                *o = (v - m) / sd;
            }
            x.push_row(&buf);
        }

        let present = data.present_classes();
        let default_class = *present.first().expect("non-empty data has a class");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut machines = Vec::new();
        for (i, &ca) in present.iter().enumerate() {
            for &cb in &present[i + 1..] {
                let idx: Vec<usize> = (0..n)
                    .filter(|&k| data.samples[k].label == ca || data.samples[k].label == cb)
                    .collect();
                let y: Vec<f64> = idx
                    .iter()
                    .map(|&k| if data.samples[k].label == ca { 1.0 } else { -1.0 })
                    .collect();
                let xs = x.select(&idx);
                if let Some(m) = smo_fast(&xs, &y, ca, cb, params, &mut rng) {
                    machines.push(m);
                }
            }
        }
        bs_telemetry::counter_add("ml.fit.svm_machines", machines.len() as u64);
        Svm { machines, n_classes: data.n_classes(), n_features: d, means, stds, default_class }
    }

    /// Train via the retained reference solver (per-pair nested-`Vec`
    /// Gram matrix, textbook decision recompute). Bit-identical to
    /// [`Svm::fit`] for the same data and seed; kept as the executable
    /// specification the fast path is property-tested against.
    pub fn fit_reference(data: &Dataset, params: &SvmParams, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit an SVM on an empty dataset");
        let n = data.len();
        let d = data.n_features();

        // Standardize (sample-major accumulation).
        let mut means = vec![0.0; d];
        for s in &data.samples {
            for (m, v) in means.iter_mut().zip(&s.features) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut stds = vec![0.0; d];
        for s in &data.samples {
            for ((sd, m), v) in stds.iter_mut().zip(&means).zip(&s.features) {
                *sd += (v - m) * (v - m);
            }
        }
        for sd in &mut stds {
            *sd = (*sd / n as f64).sqrt();
            if *sd < 1e-12 {
                *sd = 1.0; // constant feature: leave centered at zero
            }
        }
        let scale = |f: &[f64]| -> Vec<f64> {
            f.iter().zip(&means).zip(&stds).map(|((v, m), s)| (v - m) / s).collect()
        };
        let x: Vec<Vec<f64>> = data.samples.iter().map(|s| scale(&s.features)).collect();

        let present = data.present_classes();
        let default_class = *present.first().expect("non-empty data has a class");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut machines = Vec::new();
        for (i, &ca) in present.iter().enumerate() {
            for &cb in &present[i + 1..] {
                let idx: Vec<usize> = (0..n)
                    .filter(|&k| data.samples[k].label == ca || data.samples[k].label == cb)
                    .collect();
                let y: Vec<f64> = idx
                    .iter()
                    .map(|&k| if data.samples[k].label == ca { 1.0 } else { -1.0 })
                    .collect();
                let xs: Vec<&Vec<f64>> = idx.iter().map(|&k| &x[k]).collect();
                if let Some(m) = smo_reference(&xs, &y, ca, cb, params, &mut rng) {
                    machines.push(m);
                }
            }
        }
        Svm { machines, n_classes: data.n_classes(), n_features: d, means, stds, default_class }
    }

    /// Predict by one-vs-one voting; ties break to the smaller index
    /// (explicitly first-max, see [`argmax_first`]).
    pub fn predict(&self, xraw: &[f64]) -> usize {
        assert_eq!(xraw.len(), self.n_features, "feature arity mismatch");
        if self.machines.is_empty() {
            return self.default_class;
        }
        let x: Vec<f64> =
            xraw.iter().zip(&self.means).zip(&self.stds).map(|((v, m), s)| (v - m) / s).collect();
        let mut votes = vec![0usize; self.n_classes];
        for m in &self.machines {
            if m.decision(&x) >= 0.0 {
                votes[m.class_a] += 1;
            } else {
                votes[m.class_b] += 1;
            }
        }
        argmax_first(&votes)
    }

    /// Predict a batch of feature vectors.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of pairwise machines trained.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }
}

/// Update one Lagrange multiplier, keeping the coefficient array and
/// the sorted support-index list in sync. The support list mirrors the
/// reference solver's "skip exact zeros" rule (`alpha != 0.0`), so the
/// fast decision sum visits exactly the indices the reference visits,
/// ascending.
fn set_alpha(
    alpha: &mut [f64],
    coef: &mut [f64],
    support: &mut Vec<u32>,
    y: &[f64],
    i: usize,
    v: f64,
) {
    let was = alpha[i] != 0.0;
    alpha[i] = v;
    coef[i] = v * y[i];
    let is = v != 0.0;
    if is != was {
        match (is, support.binary_search(&(i as u32))) {
            (true, Err(pos)) => support.insert(pos, i as u32),
            (false, Ok(pos)) => {
                support.remove(pos);
            }
            _ => unreachable!("support list out of sync with alphas"),
        }
    }
}

/// The decision value at training row `i`: `b + Σ_j coef[j]·K(j, i)`
/// over the sorted support list. Equal to the reference's skip-zero
/// scan bit for bit: same indices, same ascending order, and
/// `K(i, j) == K(j, i)` as bits for the (symmetric) RBF kernel.
fn decision_at<F: Fn(usize, usize) -> f64>(
    k: &mut GramCache<F>,
    support: &[u32],
    coef: &[f64],
    b: f64,
    i: usize,
) -> f64 {
    let row = k.row(i);
    let mut s = b;
    for &j in support {
        s += coef[j as usize] * row[j as usize];
    }
    s
}

/// Simplified SMO over a [`GramCache`] — the fast path. Control flow,
/// float expressions and RNG draws mirror [`smo_reference`] exactly.
fn smo_fast(
    xs: &RowMatrix,
    y: &[f64],
    class_a: usize,
    class_b: usize,
    p: &SvmParams,
    rng: &mut StdRng,
) -> Option<BinarySvm> {
    let n = xs.rows();
    if n < 2 || y.iter().all(|&v| v == y[0]) {
        return None; // degenerate pair; voting just skips it
    }
    let gamma = p.gamma;
    // Above the full-matrix limit, cap cached rows so lazy-mode memory
    // never exceeds the full-matrix budget of `gram_limit²` floats.
    let row_cap = ((p.gram_limit * p.gram_limit) / n.max(1)).max(8);
    let mut k = GramCache::new(n, p.gram_limit, row_cap, |i, j| rbf(xs.row(i), xs.row(j), gamma));

    let mut alpha = vec![0.0; n];
    let mut coef = vec![0.0; n];
    let mut support: Vec<u32> = Vec::new();
    let mut b = 0.0;

    let mut passes = 0;
    let mut iters = 0;
    while passes < p.max_passes && iters < p.max_iters {
        iters += 1;
        let mut changed = 0;
        for i in 0..n {
            let ei = decision_at(&mut k, &support, &coef, b, i) - y[i];
            if (y[i] * ei < -p.tol && alpha[i] < p.c) || (y[i] * ei > p.tol && alpha[i] > 0.0) {
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                // Fetch row-i scalars before touching row j: in lazy
                // mode both may share the scratch buffer.
                let (kii, kij) = {
                    let r = k.row(i);
                    (r[i], r[j])
                };
                let (ej, kjj) = {
                    let r = k.row(j);
                    let mut s = b;
                    for &q in &support {
                        s += coef[q as usize] * r[q as usize];
                    }
                    (s - y[j], r[j])
                };
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] != y[j] {
                    ((aj_old - ai_old).max(0.0), (p.c + aj_old - ai_old).min(p.c))
                } else {
                    ((ai_old + aj_old - p.c).max(0.0), (ai_old + aj_old).min(p.c))
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * kij - kii - kjj;
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                set_alpha(&mut alpha, &mut coef, &mut support, y, i, ai);
                set_alpha(&mut alpha, &mut coef, &mut support, y, j, aj);
                let b1 = b - ei - y[i] * (ai - ai_old) * kii - y[j] * (aj - aj_old) * kij;
                let b2 = b - ej - y[i] * (ai - ai_old) * kij - y[j] * (aj - aj_old) * kjj;
                b = if 0.0 < ai && ai < p.c {
                    b1
                } else if 0.0 < aj && aj < p.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    let mut support_x = RowMatrix::new(xs.dim());
    let mut out_coef = Vec::new();
    for i in 0..n {
        if alpha[i] > 1e-8 {
            support_x.push_row(xs.row(i));
            out_coef.push(alpha[i] * y[i]);
        }
    }
    Some(BinarySvm { class_a, class_b, support_x, coef: out_coef, bias: b, gamma: p.gamma })
}

/// Simplified SMO (Platt, 1998; the CS229 variant): optimize pairs of
/// Lagrange multipliers until `max_passes` sweeps see no change. The
/// retained reference solver.
fn smo_reference(
    xs: &[&Vec<f64>],
    y: &[f64],
    class_a: usize,
    class_b: usize,
    p: &SvmParams,
    rng: &mut StdRng,
) -> Option<BinarySvm> {
    let n = xs.len();
    if n < 2 || y.iter().all(|&v| v == y[0]) {
        return None; // degenerate pair; voting just skips it
    }
    // Precompute the kernel matrix (training sets here are small).
    let mut k = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let v = rbf(xs[i], xs[j], p.gamma);
            k[i][j] = v;
            k[j][i] = v;
        }
    }
    let mut alpha = vec![0.0; n];
    let mut b = 0.0;
    let f = |alpha: &[f64], b: f64, i: usize, k: &Vec<Vec<f64>>| -> f64 {
        let mut s = b;
        for j in 0..n {
            if alpha[j] != 0.0 {
                s += alpha[j] * y[j] * k[j][i];
            }
        }
        s
    };

    let mut passes = 0;
    let mut iters = 0;
    while passes < p.max_passes && iters < p.max_iters {
        iters += 1;
        let mut changed = 0;
        for i in 0..n {
            let ei = f(&alpha, b, i, &k) - y[i];
            if (y[i] * ei < -p.tol && alpha[i] < p.c) || (y[i] * ei > p.tol && alpha[i] > 0.0) {
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j, &k) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] != y[j] {
                    ((aj_old - ai_old).max(0.0), (p.c + aj_old - ai_old).min(p.c))
                } else {
                    ((ai_old + aj_old - p.c).max(0.0), (ai_old + aj_old).min(p.c))
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b - ei - y[i] * (ai - ai_old) * k[i][i] - y[j] * (aj - aj_old) * k[i][j];
                let b2 = b - ej - y[i] * (ai - ai_old) * k[i][j] - y[j] * (aj - aj_old) * k[j][j];
                b = if 0.0 < ai && ai < p.c {
                    b1
                } else if 0.0 < aj && aj < p.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    let mut support_x = RowMatrix::new(xs[0].len());
    let mut coef = Vec::new();
    for i in 0..n {
        if alpha[i] > 1e-8 {
            support_x.push_row(xs[i]);
            coef.push(alpha[i] * y[i]);
        }
    }
    Some(BinarySvm { class_a, class_b, support_x, coef, bias: b, gamma: p.gamma })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    fn ring_dataset(seed: u64, n: usize) -> Dataset {
        // Inner disk vs outer ring: linearly inseparable, RBF-friendly.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d =
            Dataset::new(vec!["x".into(), "y".into()], vec!["inner".into(), "outer".into()]);
        for _ in 0..n {
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r_in: f64 = rng.gen_range(0.0..0.8);
            d.push(Sample { features: vec![r_in * theta.cos(), r_in * theta.sin()], label: 0 });
            let r_out: f64 = rng.gen_range(1.6..2.4);
            d.push(Sample { features: vec![r_out * theta.cos(), r_out * theta.sin()], label: 1 });
        }
        d
    }

    #[test]
    fn rbf_svm_solves_the_ring() {
        let train = ring_dataset(1, 60);
        let test = ring_dataset(2, 40);
        let m = Svm::fit(&train, &SvmParams::default(), 5);
        let correct = test.samples.iter().filter(|s| m.predict(&s.features) == s.label).count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.93, "ring accuracy {acc}");
    }

    #[test]
    fn multiclass_one_vs_one_machine_count() {
        let mut d = ring_dataset(3, 20);
        d.class_names.push("third".into());
        for i in 0..20 {
            d.push(Sample { features: vec![5.0 + (i as f64) * 0.01, 5.0], label: 2 });
        }
        let m = Svm::fit(&d, &SvmParams::default(), 1);
        assert_eq!(m.n_machines(), 3, "3 classes → 3 pairs");
        assert_eq!(m.predict(&[5.1, 5.0]), 2);
        assert_eq!(m.predict(&[0.0, 0.0]), 0);
        assert_eq!(m.predict(&[2.0, 0.0]), 1);
    }

    #[test]
    fn standardization_makes_scales_irrelevant() {
        // Same geometry, one feature blown up 1000×: accuracy persists.
        let mut train = ring_dataset(4, 60);
        let mut test = ring_dataset(5, 40);
        for s in train.samples.iter_mut().chain(test.samples.iter_mut()) {
            s.features[0] *= 1000.0;
        }
        let m = Svm::fit(&train, &SvmParams::default(), 5);
        let correct = test.samples.iter().filter(|s| m.predict(&s.features) == s.label).count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "scaled accuracy {acc}");
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(Sample { features: vec![i as f64], label: 1 });
        }
        let m = Svm::fit(&d, &SvmParams::default(), 0);
        assert_eq!(m.n_machines(), 0);
        assert_eq!(m.predict(&[3.0]), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = ring_dataset(6, 40);
        let m1 = Svm::fit(&train, &SvmParams::default(), 42);
        let m2 = Svm::fit(&train, &SvmParams::default(), 42);
        assert_eq!(m1, m2, "same seed, bit-identical machines");
        for s in &train.samples {
            assert_eq!(m1.predict(&s.features), m2.predict(&s.features));
        }
    }

    #[test]
    fn fast_path_matches_reference() {
        let train = ring_dataset(8, 30);
        for seed in [0, 7, 42] {
            let fast = Svm::fit(&train, &SvmParams::default(), seed);
            let reference = Svm::fit_reference(&train, &SvmParams::default(), seed);
            assert_eq!(fast, reference, "bit-identical machines at seed {seed}");
        }
    }

    #[test]
    fn lazy_row_cache_matches_full_gram() {
        let train = ring_dataset(9, 30);
        let full = Svm::fit(&train, &SvmParams::default(), 3);
        // Force lazy mode: every pairwise problem exceeds gram_limit=4.
        let lazy = Svm::fit(&train, &SvmParams { gram_limit: 4, ..SvmParams::default() }, 3);
        assert_eq!(full, lazy, "cache mode must not change the trained machines");
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let mut d = Dataset::new(vec!["x".into(), "const".into()], vec!["a".into(), "b".into()]);
        for i in 0..20 {
            d.push(Sample { features: vec![i as f64, 7.0], label: (i >= 10) as usize });
        }
        let m = Svm::fit(&d, &SvmParams::default(), 0);
        assert!(m.predict(&[0.0, 7.0]) == 0);
        assert!(m.predict(&[19.0, 7.0]) == 1);
    }

    /// Regression for the documented tie-break: with votes tied across
    /// classes, `predict` must return the smaller class index. The old
    /// `max_by_key` picked the *last* maximum.
    #[test]
    fn vote_tie_breaks_to_smaller_class_index() {
        let stump = |class_a: usize, class_b: usize, bias: f64| BinarySvm {
            class_a,
            class_b,
            support_x: RowMatrix::new(1),
            coef: Vec::new(),
            bias,
            gamma: 0.5,
        };
        let svm = Svm {
            // Machine 1 votes for class 0 (decision = +1), machine 2
            // votes for class 2 (decision = -1): votes are [1, 0, 1].
            machines: vec![stump(0, 1, 1.0), stump(1, 2, -1.0)],
            n_classes: 3,
            n_features: 1,
            means: vec![0.0],
            stds: vec![1.0],
            default_class: 0,
        };
        assert_eq!(svm.predict(&[0.0]), 0, "0-vs-2 tie must go to class 0");
    }

    #[test]
    fn predict_all_matches_predict() {
        let train = ring_dataset(10, 20);
        let m = Svm::fit(&train, &SvmParams::default(), 1);
        let xs: Vec<Vec<f64>> = train.samples.iter().map(|s| s.features.clone()).collect();
        let batch = m.predict_all(&xs);
        for (x, b) in xs.iter().zip(&batch) {
            assert_eq!(m.predict(x), *b);
        }
    }
}
