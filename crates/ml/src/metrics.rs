//! Classification metrics.
//!
//! The paper reports accuracy, precision, recall, and F1 over twelve
//! classes (Table III), computed from true/false positives and
//! negatives per class and macro-averaged over the classes that occur
//! in the test data.

use serde::{Deserialize, Serialize};

/// A confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from parallel truth/prediction slices.
    ///
    /// # Panics
    /// If lengths differ or any label is out of range.
    pub fn from_predictions(n_classes: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in truth.iter().zip(predicted) {
            assert!(t < n_classes && p < n_classes, "label out of range");
            counts[t][p] += 1;
        }
        ConfusionMatrix { n_classes, counts }
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Raw cell access: how many samples of true class `t` were
    /// predicted as `p`.
    pub fn cell(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// True positives for a class.
    pub fn tp(&self, c: usize) -> usize {
        self.counts[c][c]
    }

    /// False positives for a class (predicted c, truth differs).
    pub fn fp(&self, c: usize) -> usize {
        (0..self.n_classes).filter(|&t| t != c).map(|t| self.counts[t][c]).sum()
    }

    /// False negatives for a class (truth c, predicted differently).
    pub fn fn_(&self, c: usize) -> usize {
        (0..self.n_classes).filter(|&p| p != c).map(|p| self.counts[c][p]).sum()
    }

    /// Per-class precision, `None` when the class was never predicted.
    pub fn precision(&self, c: usize) -> Option<f64> {
        let denom = self.tp(c) + self.fp(c);
        (denom > 0).then(|| self.tp(c) as f64 / denom as f64)
    }

    /// Per-class recall, `None` when the class never occurs in truth.
    pub fn recall(&self, c: usize) -> Option<f64> {
        let denom = self.tp(c) + self.fn_(c);
        (denom > 0).then(|| self.tp(c) as f64 / denom as f64)
    }

    /// Per-class F1 = 2tp / (2tp + fp + fn), `None` when undefined.
    pub fn f1(&self, c: usize) -> Option<f64> {
        let denom = 2 * self.tp(c) + self.fp(c) + self.fn_(c);
        (denom > 0).then(|| 2.0 * self.tp(c) as f64 / denom as f64)
    }

    /// Summary metrics: overall accuracy plus macro-averaged
    /// precision/recall/F1 over classes present in truth or predictions.
    pub fn metrics(&self) -> Metrics {
        let total = self.total();
        let correct: usize = (0..self.n_classes).map(|c| self.tp(c)).sum();
        let mut prec = Vec::new();
        let mut rec = Vec::new();
        let mut f1 = Vec::new();
        for c in 0..self.n_classes {
            if let Some(p) = self.precision(c) {
                prec.push(p);
            }
            if let Some(r) = self.recall(c) {
                rec.push(r);
            }
            if let Some(f) = self.f1(c) {
                f1.push(f);
            }
        }
        let avg =
            |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
        Metrics {
            accuracy: if total == 0 { 0.0 } else { correct as f64 / total as f64 },
            precision: avg(&prec),
            recall: avg(&rec),
            f1: avg(&f1),
        }
    }
}

/// Per-class metrics line: the material of the paper's §IV-C discussion
/// of which classes suffer from sparse training data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerClassMetrics {
    /// Class index.
    pub class: usize,
    /// Samples of this class in truth.
    pub support: usize,
    /// Precision, if the class was ever predicted.
    pub precision: Option<f64>,
    /// Recall, if the class occurs in truth.
    pub recall: Option<f64>,
    /// F1, when defined.
    pub f1: Option<f64>,
    /// The class most often confused *for* this one (off-diagonal max
    /// of the truth row), with its count.
    pub top_confusion: Option<(usize, usize)>,
}

impl ConfusionMatrix {
    /// The per-class report, one row per class with any support or
    /// predictions.
    pub fn per_class(&self) -> Vec<PerClassMetrics> {
        (0..self.n_classes)
            .filter(|&c| self.tp(c) + self.fn_(c) + self.fp(c) > 0)
            .map(|c| {
                let top_confusion = (0..self.n_classes)
                    .filter(|&p| p != c && self.counts[c][p] > 0)
                    .max_by_key(|&p| self.counts[c][p])
                    .map(|p| (p, self.counts[c][p]));
                PerClassMetrics {
                    class: c,
                    support: self.tp(c) + self.fn_(c),
                    precision: self.precision(c),
                    recall: self.recall(c),
                    f1: self.f1(c),
                    top_confusion,
                }
            })
            .collect()
    }
}

/// Macro-averaged summary metrics, all in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Fraction of samples classified correctly.
    pub accuracy: f64,
    /// Macro-averaged precision.
    pub precision: f64,
    /// Macro-averaged recall.
    pub recall: f64,
    /// Macro-averaged F1.
    pub f1: f64,
}

impl Metrics {
    /// Elementwise mean of many metric sets.
    pub fn mean(all: &[Metrics]) -> Metrics {
        if all.is_empty() {
            return Metrics::default();
        }
        let n = all.len() as f64;
        Metrics {
            accuracy: all.iter().map(|m| m.accuracy).sum::<f64>() / n,
            precision: all.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: all.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: all.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }

    /// Elementwise population standard deviation.
    pub fn std(all: &[Metrics]) -> Metrics {
        if all.len() < 2 {
            return Metrics::default();
        }
        let mean = Metrics::mean(all);
        let n = all.len() as f64;
        let var = |f: fn(&Metrics) -> f64, mu: f64| {
            (all.iter().map(|m| (f(m) - mu) * (f(m) - mu)).sum::<f64>() / n).sqrt()
        };
        Metrics {
            accuracy: var(|m| m.accuracy, mean.accuracy),
            precision: var(|m| m.precision, mean.precision),
            recall: var(|m| m.recall, mean.recall),
            f1: var(|m| m.f1, mean.f1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let truth = vec![0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(3, &truth, &truth);
        let m = cm.metrics();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn known_confusion() {
        // truth:      0 0 0 0 1 1
        // predicted:  0 0 1 1 1 0
        let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 0, 0, 1, 1], &[0, 0, 1, 1, 1, 0]);
        assert_eq!(cm.tp(0), 2);
        assert_eq!(cm.fp(0), 1);
        assert_eq!(cm.fn_(0), 2);
        assert_eq!(cm.tp(1), 1);
        assert_eq!(cm.fp(1), 2);
        assert_eq!(cm.fn_(1), 1);
        let m = cm.metrics();
        assert!((m.accuracy - 0.5).abs() < 1e-12);
        // precision: (2/3 + 1/3)/2 = 0.5 ; recall: (2/4 + 1/2)/2 = 0.5
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        // f1: class0 = 4/(4+1+2)=4/7; class1 = 2/(2+2+1)=2/5
        let expect = (4.0 / 7.0 + 2.0 / 5.0) / 2.0;
        assert!((m.f1 - expect).abs() < 1e-12);
    }

    #[test]
    fn absent_class_excluded_from_macro_average() {
        // Class 2 never appears anywhere: averages use classes 0 and 1.
        let cm = ConfusionMatrix::from_predictions(3, &[0, 1], &[0, 1]);
        let m = cm.metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn never_predicted_class_counts_in_recall_only() {
        // Class 1 occurs in truth but is never predicted.
        let cm = ConfusionMatrix::from_predictions(2, &[0, 1, 1], &[0, 0, 0]);
        assert_eq!(cm.precision(1), None);
        assert_eq!(cm.recall(1), Some(0.0));
        let m = cm.metrics();
        assert!((m.recall - 0.5).abs() < 1e-12, "mean of 1.0 and 0.0");
    }

    #[test]
    fn per_class_report_names_confusions() {
        // truth:     0 0 0 1 1 2
        // predicted: 0 1 1 1 1 1
        let cm = ConfusionMatrix::from_predictions(3, &[0, 0, 0, 1, 1, 2], &[0, 1, 1, 1, 1, 1]);
        let report = cm.per_class();
        assert_eq!(report.len(), 3);
        let c0 = &report[0];
        assert_eq!(c0.support, 3);
        assert_eq!(c0.top_confusion, Some((1, 2)), "class 0 mostly mistaken for 1");
        assert_eq!(c0.recall, Some(1.0 / 3.0));
        let c2 = &report[2];
        assert_eq!(c2.support, 1);
        assert_eq!(c2.precision, None, "class 2 never predicted");
        assert_eq!(c2.recall, Some(0.0));
        // A class absent from truth and predictions is excluded.
        let cm2 = ConfusionMatrix::from_predictions(3, &[0, 1], &[0, 1]);
        assert_eq!(cm2.per_class().len(), 2);
    }

    #[test]
    fn empty_input() {
        let cm = ConfusionMatrix::from_predictions(3, &[], &[]);
        let m = cm.metrics();
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn mean_and_std() {
        let a = Metrics { accuracy: 0.8, precision: 0.7, recall: 0.6, f1: 0.65 };
        let b = Metrics { accuracy: 0.6, precision: 0.5, recall: 0.4, f1: 0.45 };
        let mean = Metrics::mean(&[a, b]);
        assert!((mean.accuracy - 0.7).abs() < 1e-12);
        assert!((mean.f1 - 0.55).abs() < 1e-12);
        let std = Metrics::std(&[a, b]);
        assert!((std.accuracy - 0.1).abs() < 1e-12);
        assert_eq!(Metrics::std(&[a]), Metrics::default());
        assert_eq!(Metrics::mean(&[]), Metrics::default());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::from_predictions(2, &[0], &[0, 1]);
    }
}
