//! Labeled datasets for training and evaluation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One labeled example: a feature vector and a class index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature values; length must match the dataset's feature names.
    pub features: Vec<f64>,
    /// Class index into the dataset's class names.
    pub label: usize,
}

/// A labeled dataset with named features and classes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable feature names (column headers).
    pub feature_names: Vec<String>,
    /// Human-readable class names; labels index into this.
    pub class_names: Vec<String>,
    /// The examples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Create an empty dataset with the given schema.
    pub fn new(feature_names: Vec<String>, class_names: Vec<String>) -> Self {
        Dataset { feature_names, class_names, samples: Vec::new() }
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes in the schema.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append a sample, validating its shape.
    ///
    /// # Panics
    /// If the feature count or label is out of range, or any feature is
    /// not finite — catching these at insertion beats NaN surprises
    /// inside a split search.
    pub fn push(&mut self, sample: Sample) {
        assert_eq!(sample.features.len(), self.n_features(), "feature count mismatch");
        assert!(sample.label < self.n_classes(), "label out of range");
        assert!(sample.features.iter().all(|f| f.is_finite()), "non-finite feature value");
        self.samples.push(sample);
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes()];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// The classes that actually occur in the samples.
    pub fn present_classes(&self) -> Vec<usize> {
        self.class_counts().iter().enumerate().filter(|(_, c)| **c > 0).map(|(i, _)| i).collect()
    }

    /// Split into (train, test) with `train_frac` of each class in the
    /// training half (stratified, like the paper's 60/40 protocol).
    /// Classes with a single sample land in the training half.
    pub fn stratified_split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Dataset::new(self.feature_names.clone(), self.class_names.clone());
        let mut test = Dataset::new(self.feature_names.clone(), self.class_names.clone());
        for class in 0..self.n_classes() {
            let mut idx: Vec<usize> = self
                .samples
                .iter()
                .enumerate()
                .filter(|(_, s)| s.label == class)
                .map(|(i, _)| i)
                .collect();
            if idx.is_empty() {
                continue;
            }
            idx.shuffle(&mut rng);
            let n_train = ((idx.len() as f64) * train_frac).round().max(1.0) as usize;
            for (k, i) in idx.into_iter().enumerate() {
                if k < n_train {
                    train.samples.push(self.samples[i].clone());
                } else {
                    test.samples.push(self.samples[i].clone());
                }
            }
        }
        train.samples.shuffle(&mut rng);
        test.samples.shuffle(&mut rng);
        (train, test)
    }

    /// Column-major copy of the samples at `indices` (duplicates
    /// allowed — bootstrap rows become distinct positions). This is
    /// the entry point to the bs-mlcore fast paths: one contiguous
    /// `Vec<f64>` per feature plus a flat label array.
    pub(crate) fn columnar(&self, indices: &[usize]) -> bs_mlcore::ColumnarView {
        let mut view = bs_mlcore::ColumnarView::with_capacity(self.n_features(), indices.len());
        for &i in indices {
            let s = &self.samples[i];
            view.push_row(&s.features, s.label as u32);
        }
        view
    }

    /// Columnar view over the **distinct** indices (ascending), paired
    /// with each row's multiplicity. A bootstrap sample repeats ~37% of
    /// its rows, so training on deduplicated rows with integer weights
    /// does the same arithmetic on substantially fewer entries.
    pub(crate) fn columnar_weighted(
        &self,
        indices: &[usize],
    ) -> (bs_mlcore::ColumnarView, Vec<usize>) {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        let mut view = bs_mlcore::ColumnarView::with_capacity(self.n_features(), sorted.len());
        let mut weights = Vec::with_capacity(sorted.len());
        let mut run = 0usize;
        for (k, &i) in sorted.iter().enumerate() {
            run += 1;
            if k + 1 == sorted.len() || sorted[k + 1] != i {
                let s = &self.samples[i];
                view.push_row(&s.features, s.label as u32);
                weights.push(run);
                run = 0;
            }
        }
        (view, weights)
    }

    /// Feature matrix and label vector views for evaluation helpers.
    pub fn xy(&self) -> (Vec<Vec<f64>>, Vec<usize>) {
        (
            self.samples.iter().map(|s| s.features.clone()).collect(),
            self.samples.iter().map(|s| s.label).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per_class: usize, n_classes: usize) -> Dataset {
        let mut d = Dataset::new(
            vec!["a".into(), "b".into()],
            (0..n_classes).map(|i| format!("c{i}")).collect(),
        );
        for c in 0..n_classes {
            for i in 0..n_per_class {
                d.push(Sample { features: vec![c as f64, i as f64], label: c });
            }
        }
        d
    }

    #[test]
    fn push_validates_shape() {
        let mut d = toy(1, 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.push(Sample { features: vec![1.0], label: 0 })
        }));
        assert!(r.is_err(), "wrong arity must panic");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.push(Sample { features: vec![1.0, 2.0], label: 9 })
        }));
        assert!(r.is_err(), "bad label must panic");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.push(Sample { features: vec![f64::NAN, 2.0], label: 0 })
        }));
        assert!(r.is_err(), "NaN must panic");
    }

    #[test]
    fn stratified_split_keeps_proportions() {
        let d = toy(10, 3);
        let (train, test) = d.stratified_split(0.6, 7);
        assert_eq!(train.len(), 18);
        assert_eq!(test.len(), 12);
        assert_eq!(train.class_counts(), vec![6, 6, 6]);
        assert_eq!(test.class_counts(), vec![4, 4, 4]);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(10, 3);
        let (a1, b1) = d.stratified_split(0.6, 42);
        let (a2, b2) = d.stratified_split(0.6, 42);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = d.stratified_split(0.6, 43);
        assert_ne!(a1, a3);
    }

    #[test]
    fn singleton_class_goes_to_train() {
        let mut d = toy(5, 2);
        d.class_names.push("rare".into());
        d.push(Sample { features: vec![9.0, 9.0], label: 2 });
        let (train, test) = d.stratified_split(0.6, 1);
        assert_eq!(train.class_counts()[2], 1);
        assert_eq!(test.class_counts()[2], 0);
    }

    #[test]
    fn present_classes_skips_empty() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into(), "c".into()]);
        d.push(Sample { features: vec![0.0], label: 0 });
        d.push(Sample { features: vec![1.0], label: 2 });
        assert_eq!(d.present_classes(), vec![0, 2]);
    }
}
