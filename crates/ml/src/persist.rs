//! Model persistence: save and load trained random forests.
//!
//! An operational deployment trains on curated data and then classifies
//! new windows for months (paper §V-F recommends daily refits from a
//! *stored* labeled set, but the fallback — shipping a frozen model —
//! needs serialization). The sanctioned dependency set has no serde
//! format crate, so this module defines a small, versioned,
//! line-oriented text format:
//!
//! ```text
//! bs-forest v1
//! classes <n>
//! features <n>
//! importances <f64>*
//! tree <index>
//! S <feature> <threshold>     # split; children follow in pre-order
//! L <class>                   # leaf
//! end
//! ```
//!
//! Floating-point values round-trip exactly (hex-float encoding).

use crate::forest::Forest;
use crate::tree::DecisionTree;
use std::fmt;

/// Errors from parsing a stored model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for PersistError {}

fn err(line: usize, what: impl Into<String>) -> PersistError {
    PersistError { line, what: what.into() }
}

/// Encode an `f64` losslessly as a hex float literal.
fn f64_to_text(v: f64) -> String {
    format!("{:x}", v.to_bits())
}

fn f64_from_text(s: &str, line: usize) -> Result<f64, PersistError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| err(line, format!("bad float {s:?}")))
}

impl Forest {
    /// Serialize to the `bs-forest v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("bs-forest v1\n");
        out.push_str(&format!("classes {}\n", self.n_classes()));
        out.push_str(&format!("features {}\n", self.importances().len()));
        out.push_str("importances");
        for v in self.importances() {
            out.push(' ');
            out.push_str(&f64_to_text(*v));
        }
        out.push('\n');
        for (i, tree) in self.trees().iter().enumerate() {
            out.push_str(&format!("tree {i}\n"));
            tree.write_nodes(&mut out);
        }
        out.push_str("end\n");
        out
    }

    /// Parse the `bs-forest v1` text format.
    pub fn from_text(text: &str) -> Result<Forest, PersistError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        fn next_line<'a>(
            it: &mut impl Iterator<Item = (usize, &'a str)>,
        ) -> Result<(usize, &'a str), PersistError> {
            it.next().ok_or_else(|| err(0, "unexpected end of input"))
        }

        let (ln, header) = next_line(&mut lines)?;
        if header != "bs-forest v1" {
            return Err(err(ln, format!("bad header {header:?}")));
        }
        let (ln, classes_line) = next_line(&mut lines)?;
        let n_classes: usize = classes_line
            .strip_prefix("classes ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(ln, "expected `classes <n>`"))?;
        if n_classes == 0 {
            return Err(err(ln, "zero classes"));
        }
        let (ln, features_line) = next_line(&mut lines)?;
        let n_features: usize = features_line
            .strip_prefix("features ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(ln, "expected `features <n>`"))?;
        let (ln, imp_line) = next_line(&mut lines)?;
        let imp_body = imp_line
            .strip_prefix("importances")
            .ok_or_else(|| err(ln, "expected `importances …`"))?;
        let importances: Vec<f64> =
            imp_body.split_whitespace().map(|s| f64_from_text(s, ln)).collect::<Result<_, _>>()?;
        if importances.len() != n_features {
            return Err(err(ln, "importances arity mismatch"));
        }

        let mut trees = Vec::new();
        let mut expected_tree = 0usize;
        loop {
            let (ln, line) = next_line(&mut lines)?;
            if line == "end" {
                break;
            }
            let idx: usize = line
                .strip_prefix("tree ")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, format!("expected `tree <n>` or `end`, got {line:?}")))?;
            if idx != expected_tree {
                return Err(err(ln, format!("tree index {idx}, expected {expected_tree}")));
            }
            expected_tree += 1;
            let tree = DecisionTree::read_nodes(&mut lines, n_classes, n_features)?;
            trees.push(tree);
        }
        if trees.is_empty() {
            return Err(err(0, "forest has no trees"));
        }
        Ok(Forest::from_parts(trees, n_classes, importances))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Sample};
    use crate::forest::ForestParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training_data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            (0..5).map(|i| format!("f{i}")).collect(),
            (0..3).map(|i| format!("c{i}")).collect(),
        );
        for _ in 0..90 {
            let label = rng.gen_range(0..3usize);
            let features: Vec<f64> = (0..5)
                .map(|j| if j == label { 1.0 } else { 0.0 } + rng.gen_range(-0.3..0.3))
                .collect();
            d.push(Sample { features, label });
        }
        d
    }

    #[test]
    fn forest_round_trips_exactly() {
        let data = training_data(1);
        let forest = Forest::fit(&data, &ForestParams { n_trees: 12, ..Default::default() }, 7);
        let text = forest.to_text();
        let loaded = Forest::from_text(&text).unwrap();
        assert_eq!(loaded.importances(), forest.importances());
        assert_eq!(loaded.n_trees(), forest.n_trees());
        // Identical predictions over a probe grid.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let x: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..2.0)).collect();
            assert_eq!(loaded.predict(&x), forest.predict(&x));
        }
        // Serialization is canonical.
        assert_eq!(loaded.to_text(), text);
    }

    #[test]
    fn corrupt_inputs_are_rejected_with_lines() {
        let data = training_data(2);
        let forest = Forest::fit(&data, &ForestParams { n_trees: 2, ..Default::default() }, 3);
        let text = forest.to_text();

        assert_eq!(Forest::from_text("nope").unwrap_err().line, 1);
        let missing_end = text.trim_end().trim_end_matches("end").to_string();
        assert!(Forest::from_text(&missing_end).is_err());
        let bad_float = text.replacen("importances ", "importances zz ", 1);
        assert!(Forest::from_text(&bad_float).is_err());
        // Out-of-range feature index in a split.
        let bad_split = text.replacen("S 0 ", "S 99 ", 1);
        if bad_split != text {
            assert!(Forest::from_text(&bad_split).is_err());
        }
    }

    #[test]
    fn every_line_corruption_is_total() {
        // Dropping any single line must error, never panic or silently
        // succeed with different semantics… except importances-only
        // changes which alter data but stay well-formed.
        let data = training_data(3);
        let forest = Forest::fit(&data, &ForestParams { n_trees: 3, ..Default::default() }, 5);
        let text = forest.to_text();
        let lines: Vec<&str> = text.lines().collect();
        for skip in 0..lines.len() {
            let mutated: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let _ = Forest::from_text(&mutated); // must not panic
        }
    }
}
