//! Random forests (Breiman, 2001).
//!
//! Bootstrap-bagged CART trees with per-split feature subsampling
//! (√d by default) and majority voting. Feature importances are the
//! size-weighted Gini decreases accumulated across all trees,
//! normalized to sum to one — the quantity behind the paper's
//! Table IV ranking ("larger Gini values indicate features with greater
//! discriminative power").

use crate::dataset::Dataset;
use crate::tree::{CartParams, DecisionTree, ReferenceTree};
use bs_mlcore::{argmax_first, LaneBlocks};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Base-tree growth controls. `max_features: None` here means
    /// "use √d", the standard forest default.
    pub tree: CartParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 100,
            tree: CartParams {
                max_depth: 14,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
            },
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Forest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    importances: Vec<f64>,
}

impl Forest {
    /// Train on `data` with the given seed.
    ///
    /// Trees grow in parallel on the [`bs_par`] pool. Each tree's RNG
    /// seeds from `(seed, tree index)` alone, so the forest is
    /// bit-identical at every thread count, and importances accumulate
    /// in tree order after training so the float sum is too.
    pub fn fit(data: &Dataset, params: &ForestParams, seed: u64) -> Self {
        bs_telemetry::counter_add("ml.fit.forest", 1);
        Self::fit_impl(data, params, seed, false)
    }

    /// Train every tree through the retained boxed-node
    /// [`ReferenceTree`] grower instead of the columnar fast path.
    /// Bit-identical to [`Forest::fit`] for the same data and seed
    /// (identical RNG draws, identical importance accumulation);
    /// kept as the executable specification for the equivalence suite.
    pub fn fit_reference(data: &Dataset, params: &ForestParams, seed: u64) -> Self {
        Self::fit_impl(data, params, seed, true)
    }

    fn fit_impl(data: &Dataset, params: &ForestParams, seed: u64, reference: bool) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(params.n_trees >= 1);
        let d = data.n_features();
        let mtry = params
            .tree
            .max_features
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d.max(1));
        let tree_params = CartParams { max_features: Some(mtry), ..params.tree.clone() };

        let trees: Vec<DecisionTree> = bs_par::par_map_range(params.n_trees, |i| {
            let mut rng = StdRng::seed_from_u64(bs_par::derive_seed(seed, i as u64));
            // Bootstrap sample with replacement, same size as the data.
            let indices: Vec<usize> =
                (0..data.len()).map(|_| rng.gen_range(0..data.len())).collect();
            let tree_seed: u64 = rng.gen();
            if reference {
                ReferenceTree::fit_on_indices(data, &indices, &tree_params, tree_seed).flatten()
            } else {
                DecisionTree::fit_on_indices(data, &indices, &tree_params, tree_seed)
            }
        });
        let mut raw = vec![0.0; d];
        for tree in &trees {
            for (acc, v) in raw.iter_mut().zip(tree.raw_importances()) {
                *acc += v;
            }
        }
        let total: f64 = raw.iter().sum();
        let importances = if total > 0.0 { raw.iter().map(|v| v / total).collect() } else { raw };
        bs_telemetry::counter_add("ml.trees_built", params.n_trees as u64);
        Forest { trees, n_classes: data.n_classes(), importances }
    }

    /// Predict by majority vote over the trees (ties break toward the
    /// smaller class index, explicitly first-max).
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(x)] += 1;
        }
        argmax_first(&votes)
    }

    /// Predict a batch through the lane-parallel blocked descent: the
    /// rows transpose into [`LaneBlocks`] **once**, then every tree
    /// predicts eight rows per level ([`bs_mlcore::FlatTree::predict_lanes`])
    /// into one reused class buffer, voting into a flat per-row
    /// histogram. Bit-identical to [`Forest::predict_all_rows`] — the
    /// per-tree classes are identical (same IEEE compares, lane by
    /// lane), the vote counts are exact integers, and ties resolve by
    /// the same [`argmax_first`].
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let _cost = bs_prof::stage("ml.predict.lanes", bs_trace::ledger::current_window());
        if xs.is_empty() {
            return Vec::new();
        }
        let blocks = LaneBlocks::from_rows(xs, self.trees[0].n_features());
        let mut votes = vec![0u32; xs.len() * self.n_classes];
        let mut classes: Vec<u32> = Vec::with_capacity(xs.len());
        for t in &self.trees {
            classes.clear();
            t.predict_blocked_into(&blocks, &mut classes);
            for (row, &c) in classes.iter().enumerate() {
                votes[row * self.n_classes + c as usize] += 1;
            }
        }
        votes.chunks(self.n_classes).map(argmax_first).collect()
    }

    /// Row-at-a-time batch prediction with one reused vote buffer — the
    /// executable reference the lane path is property-tested against
    /// (`tests/simd_equivalence.rs`).
    pub fn predict_all_rows(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let mut votes = vec![0u32; self.n_classes];
        xs.iter()
            .map(|x| {
                votes.fill(0);
                for t in &self.trees {
                    votes[t.predict(x)] += 1;
                }
                argmax_first(&votes)
            })
            .collect()
    }

    /// Normalized Gini importances (sum to 1 when any split occurred).
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Feature importances paired with names, sorted descending — the
    /// shape of the paper's Table IV.
    pub fn ranked_importances(&self, feature_names: &[String]) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> =
            feature_names.iter().cloned().zip(self.importances.iter().copied()).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        v
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes in the schema this forest was trained on.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The member trees (persistence support).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Reassemble a forest from persisted parts.
    pub(crate) fn from_parts(
        trees: Vec<DecisionTree>,
        n_classes: usize,
        importances: Vec<f64>,
    ) -> Self {
        Forest { trees, n_classes, importances }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use rand::Rng;

    /// Three Gaussian-ish blobs in 4D where only dims 0 and 1 matter.
    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec!["f0".into(), "f1".into(), "noise0".into(), "noise1".into()],
            vec!["a".into(), "b".into(), "c".into()],
        );
        let centers = [(0.0, 0.0), (3.0, 0.0), (0.0, 3.0)];
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n {
                d.push(Sample {
                    features: vec![
                        cx + rng.gen_range(-0.8..0.8),
                        cy + rng.gen_range(-0.8..0.8),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    label,
                });
            }
        }
        d
    }

    #[test]
    fn forest_beats_chance_on_blobs() {
        let train = blobs(1, 60);
        let test = blobs(2, 30);
        let f = Forest::fit(&train, &ForestParams::default(), 7);
        let correct = test.samples.iter().filter(|s| f.predict(&s.features) == s.label).count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn importances_concentrate_on_signal_features() {
        let train = blobs(3, 80);
        let f = Forest::fit(&train, &ForestParams::default(), 11);
        let imp = f.importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9, "normalized");
        assert!(imp[0] + imp[1] > 0.75, "signal features should dominate: {imp:?}");
        let ranked = f.ranked_importances(&train.feature_names);
        assert!(ranked[0].0 == "f0" || ranked[0].0 == "f1");
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blobs(4, 40);
        let f1 = Forest::fit(&train, &ForestParams::default(), 99);
        let f2 = Forest::fit(&train, &ForestParams::default(), 99);
        let probe = vec![1.5, 1.5, 0.0, 0.0];
        assert_eq!(f1.predict(&probe), f2.predict(&probe));
        assert_eq!(f1.importances(), f2.importances());
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let train = blobs(5, 40);
        let f1 = Forest::fit(&train, &ForestParams::default(), 1);
        let f2 = Forest::fit(&train, &ForestParams::default(), 2);
        assert_ne!(f1.importances(), f2.importances());
    }

    #[test]
    fn single_tree_forest_works() {
        let train = blobs(6, 30);
        let p = ForestParams { n_trees: 1, ..ForestParams::default() };
        let f = Forest::fit(&train, &p, 0);
        assert_eq!(f.n_trees(), 1);
        let correct = train.samples.iter().filter(|s| f.predict(&s.features) == s.label).count();
        assert!(correct * 10 > train.len() * 7);
    }

    #[test]
    fn fast_path_matches_reference() {
        let train = blobs(7, 25);
        let p = ForestParams { n_trees: 8, ..ForestParams::default() };
        let fast = Forest::fit(&train, &p, 13);
        let reference = Forest::fit_reference(&train, &p, 13);
        assert_eq!(fast.importances(), reference.importances(), "bitwise importances");
        for s in &train.samples {
            assert_eq!(fast.predict(&s.features), reference.predict(&s.features));
        }
    }

    #[test]
    fn predict_all_matches_predict() {
        let train = blobs(8, 25);
        let p = ForestParams { n_trees: 10, ..ForestParams::default() };
        let f = Forest::fit(&train, &p, 3);
        let xs: Vec<Vec<f64>> = train.samples.iter().map(|s| s.features.clone()).collect();
        let batch = f.predict_all(&xs);
        for (x, b) in xs.iter().zip(&batch) {
            assert_eq!(f.predict(x), *b);
        }
        assert_eq!(batch, f.predict_all_rows(&xs), "lane path ≡ row reference");
        assert!(f.predict_all(&[]).is_empty());
    }

    #[test]
    fn constant_data_has_zero_importances() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(Sample { features: vec![1.0], label: i % 2 });
        }
        let f = Forest::fit(&d, &ForestParams { n_trees: 5, ..ForestParams::default() }, 0);
        assert_eq!(f.importances(), &[0.0]);
    }
}
