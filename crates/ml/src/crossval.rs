//! The paper's evaluation protocol.
//!
//! "For each dataset we pick a random 60 % of the labeled ground-truth
//! for training, then test on the remaining 40 %. We repeat this process
//! 50 times" (§IV-C). [`repeated_holdout`] implements exactly that,
//! returning the mean and standard deviation of every metric — the
//! numbers in Table III's large and small type.

use crate::dataset::Dataset;
use crate::metrics::{ConfusionMatrix, Metrics};
use crate::vote::MajorityEnsemble;
use crate::Algorithm;
use serde::{Deserialize, Serialize};

/// Result of a repeated-holdout evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoldoutReport {
    /// Mean metrics over the repetitions.
    pub mean: Metrics,
    /// Population standard deviation over the repetitions.
    pub std: Metrics,
    /// Number of repetitions actually run.
    pub repetitions: usize,
}

/// Run `repetitions` random stratified splits with `train_frac` in the
/// training half; train `algorithm` (with the paper's 10-run majority
/// vote when the algorithm is randomized) and evaluate on the held-out
/// part.
pub fn repeated_holdout(
    algorithm: &Algorithm,
    data: &Dataset,
    train_frac: f64,
    repetitions: usize,
    seed: u64,
) -> HoldoutReport {
    assert!(repetitions >= 1);
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let runs_per_fit = if algorithm.is_randomized() { 10 } else { 1 };
    // Repetitions are independent given their rep-derived seeds, so
    // they evaluate in parallel; results collect in repetition order,
    // keeping the mean/std reductions bit-identical to sequential.
    let per_rep: Vec<Option<Metrics>> = bs_par::par_map_range(repetitions, |rep| {
        let rep_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(rep as u64);
        let (train, test) = data.stratified_split(train_frac, rep_seed);
        if train.is_empty() || test.is_empty() {
            return None;
        }
        let ensemble = MajorityEnsemble::fit(algorithm, &train, runs_per_fit, rep_seed);
        let (xs, truth) = test.xy();
        let predicted = ensemble.predict_all(&xs);
        let cm = ConfusionMatrix::from_predictions(data.n_classes(), &truth, &predicted);
        Some(cm.metrics())
    });
    let all: Vec<Metrics> = per_rep.into_iter().flatten().collect();
    HoldoutReport { mean: Metrics::mean(&all), std: Metrics::std(&all), repetitions: all.len() }
}

/// Stratified k-fold cross-validation: each class's samples are
/// shuffled and dealt round-robin into `k` folds; each fold serves once
/// as the test set. Complements [`repeated_holdout`] (the paper's
/// protocol) with the more standard deterministic-coverage variant.
pub fn k_fold(algorithm: &Algorithm, data: &Dataset, k: usize, seed: u64) -> HoldoutReport {
    assert!(k >= 2, "k-fold needs at least two folds");
    assert!(!data.is_empty());
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);

    // fold assignment per sample index, stratified by class.
    let mut fold_of = vec![0usize; data.len()];
    for class in 0..data.n_classes() {
        let mut idx: Vec<usize> =
            (0..data.len()).filter(|&i| data.samples[i].label == class).collect();
        idx.shuffle(&mut rng);
        for (j, i) in idx.into_iter().enumerate() {
            fold_of[i] = j % k;
        }
    }

    let runs_per_fit = if algorithm.is_randomized() { 10 } else { 1 };
    // The fold assignment above is sequential (one shared RNG); the
    // folds themselves are independent and train in parallel, with
    // results collected in fold order.
    let per_fold: Vec<Option<Metrics>> = bs_par::par_map_range(k, |fold| {
        let mut train = Dataset::new(data.feature_names.clone(), data.class_names.clone());
        let mut test = Dataset::new(data.feature_names.clone(), data.class_names.clone());
        for (i, s) in data.samples.iter().enumerate() {
            if fold_of[i] == fold {
                test.samples.push(s.clone());
            } else {
                train.samples.push(s.clone());
            }
        }
        if train.is_empty() || test.is_empty() || train.present_classes().len() < 2 {
            return None;
        }
        let ensemble = MajorityEnsemble::fit(algorithm, &train, runs_per_fit, seed ^ fold as u64);
        let (xs, truth) = test.xy();
        let predicted = ensemble.predict_all(&xs);
        let cm = ConfusionMatrix::from_predictions(data.n_classes(), &truth, &predicted);
        Some(cm.metrics())
    });
    let all: Vec<Metrics> = per_fold.into_iter().flatten().collect();
    HoldoutReport { mean: Metrics::mean(&all), std: Metrics::std(&all), repetitions: all.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::tree::CartParams;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["a".into(), "b".into()]);
        for label in 0..2usize {
            for _ in 0..n {
                d.push(Sample {
                    features: vec![
                        label as f64 * 2.0 + rng.gen_range(-0.5..0.5),
                        rng.gen_range(-1.0..1.0),
                    ],
                    label,
                });
            }
        }
        d
    }

    #[test]
    fn cart_holdout_on_separable_data_is_high() {
        let d = blobs(1, 40);
        let report = repeated_holdout(&Algorithm::Cart(CartParams::default()), &d, 0.6, 10, 3);
        assert_eq!(report.repetitions, 10);
        assert!(report.mean.accuracy > 0.9, "{:?}", report.mean);
        assert!(report.std.accuracy < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(2, 30);
        let alg = Algorithm::Cart(CartParams::default());
        let r1 = repeated_holdout(&alg, &d, 0.6, 5, 7);
        let r2 = repeated_holdout(&alg, &d, 0.6, 5, 7);
        assert_eq!(r1, r2);
    }

    #[test]
    fn k_fold_covers_every_sample_once() {
        let d = blobs(4, 25);
        let report = k_fold(&Algorithm::Cart(CartParams::default()), &d, 5, 9);
        assert_eq!(report.repetitions, 5);
        assert!(report.mean.accuracy > 0.9, "{:?}", report.mean);
    }

    #[test]
    fn k_fold_is_deterministic() {
        let d = blobs(5, 20);
        let alg = Algorithm::Cart(CartParams::default());
        assert_eq!(k_fold(&alg, &d, 4, 11), k_fold(&alg, &d, 4, 11));
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k_fold_rejects_k_one() {
        let d = blobs(6, 5);
        k_fold(&Algorithm::Cart(CartParams::default()), &d, 1, 0);
    }

    #[test]
    fn forest_holdout_runs_with_majority_voting() {
        let d = blobs(3, 25);
        let alg = Algorithm::RandomForest(crate::forest::ForestParams {
            n_trees: 15,
            ..Default::default()
        });
        let report = repeated_holdout(&alg, &d, 0.6, 3, 1);
        assert!(report.mean.accuracy > 0.85, "{:?}", report.mean);
    }
}
