//! Majority voting over independently-seeded fits.
//!
//! "For non-deterministic algorithms (both RF and SVM use
//! randomization), we run each 10 times and take the majority
//! classification" (paper §III-D).

use crate::dataset::Dataset;
use crate::{Algorithm, Model};
use bs_mlcore::argmax_first;

/// A bag of independently trained models that predicts by majority.
#[derive(Debug, Clone)]
pub struct MajorityEnsemble {
    models: Vec<Model>,
    n_classes: usize,
}

impl MajorityEnsemble {
    /// Train `runs` models of `algorithm` on `data` with derived seeds.
    ///
    /// The runs are independent by construction (that is the point of
    /// the vote), so they train in parallel on the [`bs_par`] pool;
    /// each run's seed depends only on `(seed, run index)`, keeping the
    /// ensemble bit-identical at every thread count.
    pub fn fit(algorithm: &Algorithm, data: &Dataset, runs: usize, seed: u64) -> Self {
        assert!(runs >= 1);
        let _span = bs_telemetry::span("ml.train");
        bs_telemetry::counter_add("ml.fits", runs as u64);
        let models = bs_par::par_map_range(runs, |i| {
            // Trace-only span (no histogram): one per vote run, so the
            // Chrome export shows which worker lane trained each model.
            let _s = bs_trace::span("ml.fit_run");
            algorithm.fit(data, seed.wrapping_add((i as u64).wrapping_mul(0xA076_1D64_78BD_642F)))
        });
        MajorityEnsemble { models, n_classes: data.n_classes() }
    }

    /// Majority class over the member models (ties break toward the
    /// smaller class index, explicitly first-max).
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_with_confidence(x).0
    }

    /// Majority class plus its confidence: the fraction of member
    /// models voting for the winner (1.0 = unanimous, ≈ 1/k = coin
    /// flip among k classes). Low-confidence labels are the ones an
    /// operator reviews first.
    pub fn predict_with_confidence(&self, x: &[f64]) -> (usize, f64) {
        let mut votes = vec![0usize; self.n_classes];
        for m in &self.models {
            votes[m.predict(x)] += 1;
        }
        let class = argmax_first(&votes);
        (class, votes[class] as f64 / self.models.len() as f64)
    }

    /// Predict a batch: model-outer vote accumulation, so each member
    /// model serves the whole batch through its own batch path (flat
    /// tree arenas stream once per tree). Vote totals and tie-breaks
    /// are identical to calling [`MajorityEnsemble::predict`] per row.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let mut votes = vec![0u32; xs.len() * self.n_classes];
        for m in &self.models {
            for (r, class) in m.predict_all(xs).into_iter().enumerate() {
                votes[r * self.n_classes + class] += 1;
            }
        }
        votes.chunks_exact(self.n_classes.max(1)).map(argmax_first).collect()
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no members exist (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::forest::ForestParams;
    use crate::tree::CartParams;

    fn tiny() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(Sample { features: vec![i as f64], label: (i >= 5) as usize });
        }
        d
    }

    #[test]
    fn ensemble_of_carts_agrees_with_single_cart() {
        let d = tiny();
        let alg = Algorithm::Cart(CartParams::default());
        let e = MajorityEnsemble::fit(&alg, &d, 10, 1);
        assert_eq!(e.len(), 10);
        let single = alg.fit(&d, 1);
        for x in [0.0, 2.0, 7.0, 9.0] {
            assert_eq!(e.predict(&[x]), single.predict(&[x]));
        }
    }

    #[test]
    fn confidence_is_unanimous_on_separable_data() {
        let d = tiny();
        let alg = Algorithm::Cart(CartParams::default());
        let e = MajorityEnsemble::fit(&alg, &d, 10, 1);
        let (class, conf) = e.predict_with_confidence(&[0.0]);
        assert_eq!(class, 0);
        assert_eq!(conf, 1.0, "identical CARTs vote unanimously");
        let (_, conf2) = e.predict_with_confidence(&[9.0]);
        assert_eq!(conf2, 1.0);
    }

    #[test]
    fn forest_ensemble_predicts_sanely() {
        let d = tiny();
        let alg = Algorithm::RandomForest(ForestParams { n_trees: 9, ..Default::default() });
        let e = MajorityEnsemble::fit(&alg, &d, 5, 2);
        assert_eq!(e.predict(&[0.0]), 0);
        assert_eq!(e.predict(&[9.0]), 1);
    }

    #[test]
    fn predict_all_matches_predict() {
        let d = tiny();
        let alg = Algorithm::RandomForest(ForestParams { n_trees: 7, ..Default::default() });
        let e = MajorityEnsemble::fit(&alg, &d, 3, 4);
        let xs: Vec<Vec<f64>> = d.samples.iter().map(|s| s.features.clone()).collect();
        let batch = e.predict_all(&xs);
        for (x, b) in xs.iter().zip(&batch) {
            assert_eq!(e.predict(x), *b);
        }
        assert!(e.predict_all(&[]).is_empty());
    }
}
