//! From-scratch machine learning for the backscatter classifier.
//!
//! The paper classifies originators with three standard supervised
//! learners — a CART decision tree, a random forest, and a kernel
//! support-vector machine — and finds the forest most accurate
//! (Table III), using its Gini importances to rank features
//! (Table IV). No suitable pure-Rust implementations of all three exist
//! in the sanctioned dependency set, so this crate implements them:
//!
//! * [`tree`] — CART with Gini impurity, depth/leaf-size controls;
//! * [`forest`] — bagged CART ensemble with per-split feature
//!   subsampling and accumulated, normalized Gini importances;
//! * [`svm`] — soft-margin SMO with an RBF kernel, lifted to
//!   multi-class by one-vs-one voting, with internal standardization;
//! * [`metrics`] — confusion matrices and macro-averaged
//!   accuracy/precision/recall/F1, matching the paper's definitions;
//! * [`crossval`] — the paper's evaluation protocol: 50 repetitions of a
//!   stratified 60/40 split, reporting means and standard deviations;
//! * [`vote`] — majority voting over several independently-seeded fits
//!   ("for non-deterministic algorithms we run each 10 times and take
//!   the majority classification").
//!
//! Training and prediction run on the `bs-mlcore` columnar fast paths
//! (presorted-index CART, flat tree arenas, Gram-cached SMO); the
//! original boxed/nested implementations are retained as executable
//! references ([`tree::ReferenceTree`], [`Forest::fit_reference`],
//! [`Svm::fit_reference`]) and the equivalence suite proves the fast
//! paths bit-identical to them (DESIGN.md §12).
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod persist;
pub mod svm;
pub mod tree;
pub mod vote;

pub use crossval::{k_fold, repeated_holdout, HoldoutReport};
pub use dataset::{Dataset, Sample};
pub use forest::{Forest, ForestParams};
pub use metrics::{ConfusionMatrix, Metrics};
pub use svm::{Svm, SvmParams};
pub use tree::{CartParams, DecisionTree, ReferenceTree};
pub use vote::MajorityEnsemble;

use serde::{Deserialize, Serialize};

/// The three algorithms the paper evaluates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Classification And Regression Tree.
    Cart(CartParams),
    /// Random forest of CARTs.
    RandomForest(ForestParams),
    /// Kernel (RBF) support-vector machine, one-vs-one.
    Svm(SvmParams),
}

impl Algorithm {
    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Cart(_) => "CART",
            Algorithm::RandomForest(_) => "RF",
            Algorithm::Svm(_) => "SVM",
        }
    }

    /// Train on `data` with the given seed.
    pub fn fit(&self, data: &Dataset, seed: u64) -> Model {
        match self {
            Algorithm::Cart(p) => Model::Cart(DecisionTree::fit(data, p, seed)),
            Algorithm::RandomForest(p) => Model::Forest(Forest::fit(data, p, seed)),
            Algorithm::Svm(p) => Model::Svm(Svm::fit(data, p, seed)),
        }
    }

    /// Whether the paper treats this algorithm as randomized (and
    /// majority-votes over ten runs).
    pub fn is_randomized(&self) -> bool {
        !matches!(self, Algorithm::Cart(_))
    }
}

/// A trained model of any of the three families.
#[derive(Debug, Clone)]
pub enum Model {
    /// Trained CART.
    Cart(DecisionTree),
    /// Trained random forest.
    Forest(Forest),
    /// Trained SVM.
    Svm(Svm),
}

impl Model {
    /// Predict the class index for one feature vector.
    pub fn predict(&self, x: &[f64]) -> usize {
        match self {
            Model::Cart(m) => m.predict(x),
            Model::Forest(m) => m.predict(x),
            Model::Svm(m) => m.predict(x),
        }
    }

    /// Predict class indices for many feature vectors, dispatching to
    /// each model family's batch path (the forest streams every tree
    /// arena once over the whole batch).
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        bs_telemetry::counter_add("ml.predict.batches", 1);
        bs_telemetry::counter_add("ml.predict.samples", xs.len() as u64);
        match self {
            Model::Cart(m) => m.predict_all(xs),
            Model::Forest(m) => m.predict_all(xs),
            Model::Svm(m) => m.predict_all(xs),
        }
    }
}
