//! External oracles: blacklists and darknets (paper §IV-B, Appendix A).
//!
//! The paper validates labels against DNS blacklists from nine
//! organizations and two darknets (a /17 and a /18 in Japan). These are
//! replicated as *models over the scenario's ground truth* rather than
//! packet-level simulations:
//!
//! * The [`Blacklist`] lists spam originators with realistic coverage
//!   (not every spammer is caught), listing lag, and a per-IP count of
//!   listing organizations — the BLS/BLO columns of Tables VII/VIII.
//!   A small false-listing rate keeps the oracle honest.
//! * The [`Darknet`] computes each prober's *expected* distinct dark
//!   addresses analytically from its unscaled probe rate. (Simulated
//!   contact streams are rate-scaled for tractability; counting actual
//!   darknet contacts would undercount by exactly that scale factor, so
//!   the oracle inverts it — documented substitution.)

use bs_activity::{ApplicationClass, Scenario, Targeting};
use bs_netsim::det::{bernoulli, bounded, hash2, mix64};
use bs_netsim::types::ContactKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One blacklist record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlacklistEntry {
    /// Spam-list count (of 9 organizations).
    pub bls: u8,
    /// Other-malice list count (scanning, ssh brute force, phishing).
    pub blo: u8,
    /// When the first listing appeared.
    pub listed_from: bs_dns::SimTime,
}

/// A modeled aggregate of nine DNS blacklists.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Blacklist {
    entries: BTreeMap<Ipv4Addr, BlacklistEntry>,
}

impl Blacklist {
    /// Model listings for every originator in the scenario.
    pub fn build(scenario: &Scenario, seed: u64) -> Self {
        let mut entries = BTreeMap::new();
        for p in scenario.profiles() {
            let h = hash2(seed ^ 0xB1AC, u32::from(p.originator) as u64, p.class.index() as u64);
            let (bls, blo) = match p.class {
                ApplicationClass::Spam => {
                    // ~85 % coverage; 1–4 spam lists, sometimes others.
                    if bernoulli(h, 0.85) {
                        let bls = 1 + bounded(mix64(h ^ 1), 4) as u8;
                        let blo = bounded(mix64(h ^ 2), 4) as u8;
                        (bls, blo)
                    } else {
                        (0, 0)
                    }
                }
                ApplicationClass::Scan => {
                    // Scanners land on "other" lists about 40 % of the
                    // time; a handful also hit spam lists.
                    let blo =
                        if bernoulli(h, 0.40) { 1 + bounded(mix64(h ^ 3), 3) as u8 } else { 0 };
                    let bls = u8::from(bernoulli(mix64(h ^ 4), 0.05));
                    (bls, blo)
                }
                // Rare false listings of benign infrastructure.
                _ => {
                    if bernoulli(h, 0.02) {
                        (u8::from(bernoulli(mix64(h ^ 5), 0.5)), 1)
                    } else {
                        (0, 0)
                    }
                }
            };
            if bls > 0 || blo > 0 {
                // Listings appear a few days after activity starts.
                let lag_days = 1 + bounded(mix64(h ^ 6), 5);
                let listed_from = p.active_from + bs_dns::SimDuration::from_days(lag_days);
                entries.entry(p.originator).or_insert(BlacklistEntry { bls, blo, listed_from });
            }
        }
        Blacklist { entries }
    }

    /// Spam-list count (the BLS column).
    pub fn bls(&self, ip: Ipv4Addr) -> u8 {
        self.entries.get(&ip).map(|e| e.bls).unwrap_or(0)
    }

    /// Other-malice list count (the BLO column).
    pub fn blo(&self, ip: Ipv4Addr) -> u8 {
        self.entries.get(&ip).map(|e| e.blo).unwrap_or(0)
    }

    /// Is `ip` on any list at `time`?
    pub fn is_listed(&self, ip: Ipv4Addr, time: bs_dns::SimTime) -> bool {
        self.entries.get(&ip).map(|e| time >= e.listed_from).unwrap_or(false)
    }

    /// Addresses with at least one *spam* listing — the spam-portion
    /// oracle used for curation.
    pub fn spam_listed(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.entries.iter().filter(|(_, e)| e.bls > 0).map(|(ip, _)| *ip)
    }

    /// Number of listed addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A modeled pair of darknets (a /17 plus a /18: 98 304 addresses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Darknet {
    /// Total dark addresses monitored.
    pub size: u64,
    expected: BTreeMap<Ipv4Addr, u64>,
}

/// Usable unicast space after reserved /8s (221 /8s).
const USABLE_SPACE: f64 = 221.0 * 16_777_216.0;

impl Darknet {
    /// Model expected darknet observations for every prober in the
    /// scenario. `rate_scale` must match the scenario's, so expected
    /// counts reflect *unscaled* (paper-scale) probe rates.
    pub fn build(scenario: &Scenario, seed: u64) -> Self {
        let size = 98_304u64; // /17 + /18
        let rate_scale = scenario.config().rate_scale.max(1e-9);
        let mut expected = BTreeMap::new();
        for p in scenario.profiles() {
            let active_days =
                (p.active_until.secs().saturating_sub(p.active_from.secs())) as f64 / 86_400.0;
            let h = hash2(seed ^ 0xDA4C, u32::from(p.originator) as u64, p.class.index() as u64);
            let hits = match (p.targeting, p.class) {
                (Targeting::UniformRandom, _) => {
                    // Expected distinct dark addresses for a uniform
                    // prober: size · (1 − exp(−probes / usable)).
                    let probes = (p.targets_per_day / rate_scale) * active_days;
                    let frac = 1.0 - (-probes / USABLE_SPACE).exp();
                    (size as f64 * frac).round() as u64
                }
                // Mis-behaving P2P clients spray a few stray probes.
                (_, ApplicationClass::P2p)
                    if p.kinds.iter().any(|k| matches!(k, ContactKind::ProbeTcp(_))) =>
                {
                    1 + bounded(h, (active_days.max(1.0) as u64) * 3 + 1)
                }
                _ => 0,
            };
            if hits > 0 {
                let e = expected.entry(p.originator).or_insert(0);
                *e = (*e).max(hits);
            }
        }
        Darknet { size, expected }
    }

    /// Expected distinct dark addresses touched by `ip` (the DarkIP
    /// column of Tables VII/VIII).
    pub fn dark_ips(&self, ip: Ipv4Addr) -> u64 {
        self.expected.get(&ip).copied().unwrap_or(0)
    }

    /// Sources the darknet confirms as scanners: more than `min` dark
    /// addresses touched (paper: 1024).
    pub fn confirmed_scanners(&self, min: u64) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.expected.iter().filter(move |(_, n)| **n >= min).map(|(ip, _)| *ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_activity::ScenarioConfig;
    use bs_dns::{SimDuration, SimTime};
    use bs_netsim::world::{World, WorldConfig};

    fn scenario() -> (World, Scenario) {
        let world = World::new(WorldConfig::default());
        let mut cfg = ScenarioConfig::small(11, SimDuration::from_days(14));
        cfg.pool_size = 300;
        let s = Scenario::new(&world, cfg);
        (world, s)
    }

    #[test]
    fn blacklist_covers_most_spam_and_little_benign() {
        let (_, s) = scenario();
        let bl = Blacklist::build(&s, 1);
        let mut spam_total = 0;
        let mut spam_listed = 0;
        let mut benign_listed = 0;
        let mut benign_total = 0;
        for p in s.profiles() {
            match p.class {
                ApplicationClass::Spam => {
                    spam_total += 1;
                    if bl.bls(p.originator) > 0 {
                        spam_listed += 1;
                    }
                }
                ApplicationClass::Scan => {}
                _ => {
                    benign_total += 1;
                    if bl.bls(p.originator) > 0 || bl.blo(p.originator) > 0 {
                        benign_listed += 1;
                    }
                }
            }
        }
        assert!(spam_total >= 10);
        let coverage = spam_listed as f64 / spam_total as f64;
        assert!(coverage > 0.6, "spam coverage {coverage}");
        let fp = benign_listed as f64 / benign_total.max(1) as f64;
        assert!(fp < 0.10, "benign false-listing rate {fp}");
    }

    #[test]
    fn listings_lag_activity_start() {
        let (_, s) = scenario();
        let bl = Blacklist::build(&s, 1);
        for p in s.profiles() {
            if p.class == ApplicationClass::Spam && bl.bls(p.originator) > 0 {
                assert!(!bl.is_listed(p.originator, p.active_from));
                assert!(bl.is_listed(p.originator, p.active_from + SimDuration::from_days(7)));
            }
        }
    }

    #[test]
    fn darknet_sees_scanners_proportionally() {
        let (_, s) = scenario();
        let dn = Darknet::build(&s, 1);
        let mut scan_seen = 0;
        let mut scan_total = 0;
        for p in s.profiles() {
            if p.class == ApplicationClass::Scan {
                scan_total += 1;
                let hits = dn.dark_ips(p.originator);
                if hits > 0 {
                    scan_seen += 1;
                }
                assert!(hits <= dn.size);
            } else if p.class == ApplicationClass::Mail {
                assert_eq!(dn.dark_ips(p.originator), 0, "mail never probes the darknet");
            }
        }
        assert!(scan_total >= 10);
        // Small or short-lived scanners can evade a /17+/18 darknet;
        // most, but not all, are confirmed.
        assert!(scan_seen * 10 >= scan_total * 6, "{scan_seen}/{scan_total}");
    }

    #[test]
    fn darknet_hits_scale_with_rate() {
        let (_, s) = scenario();
        let dn = Darknet::build(&s, 1);
        // Bigger scanners touch more dark addresses.
        let mut pairs: Vec<(f64, u64)> = s
            .profiles()
            .iter()
            .filter(|p| p.class == ApplicationClass::Scan)
            .map(|p| (p.targets_per_day, dn.dark_ips(p.originator)))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let small = pairs.first().unwrap();
        let large = pairs.last().unwrap();
        assert!(large.1 >= small.1, "larger scanner should touch ≥ dark addresses: {pairs:?}");
    }

    #[test]
    fn oracles_are_deterministic() {
        let (_, s) = scenario();
        let a = Blacklist::build(&s, 5);
        let b = Blacklist::build(&s, 5);
        for p in s.profiles() {
            assert_eq!(a.bls(p.originator), b.bls(p.originator));
        }
        let d1 = Darknet::build(&s, 5);
        let d2 = Darknet::build(&s, 5);
        for p in s.profiles() {
            assert_eq!(d1.dark_ips(p.originator), d2.dark_ips(p.originator));
        }
        let _ = SimTime::ZERO; // keep import used in all cfg combinations
    }
}
