//! Running a dataset recipe: scenario → simulator → logs.

use crate::external::{Blacklist, Darknet};
use crate::spec::DatasetSpec;
use bs_activity::{ApplicationClass, Scenario};
use bs_dns::{SimDuration, SimTime};
use bs_netsim::engine::SimStats;
use bs_netsim::log::QueryLog;
use bs_netsim::world::World;
use bs_netsim::{Simulator, SimulatorConfig};
use bs_sensor::{extract_features, FeatureConfig, OriginatorFeatures};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A fully simulated dataset: the observed query log plus everything
/// needed to label and analyze it.
pub struct BuiltDataset {
    /// The recipe.
    pub spec: DatasetSpec,
    /// The query log at the observed authority (post-sampling).
    pub log: QueryLog,
    /// The generating scenario (ground truth source).
    pub scenario: Scenario,
    /// Modeled blacklist oracle.
    pub blacklist: Blacklist,
    /// Modeled darknet oracle.
    pub darknet: Darknet,
    /// Simulator counters.
    pub stats: SimStats,
}

/// Assemble a [`BuiltDataset`] around an already-simulated log (e.g.
/// one loaded from a cache file). The scenario and oracles are
/// recomputed deterministically from the spec — only the simulation
/// itself is skipped.
pub fn assemble_with_log(world: &World, spec: DatasetSpec, log: QueryLog) -> BuiltDataset {
    let scenario = Scenario::new(world, spec.scenario.clone());
    let (blacklist, darknet) = build_oracles(&scenario, spec.scenario.seed);
    BuiltDataset { spec, log, scenario, blacklist, darknet, stats: SimStats::default() }
}

/// The two external oracles derive independently from the scenario
/// (with disjoint seed tweaks), so they build concurrently.
fn build_oracles(scenario: &Scenario, seed: u64) -> (Blacklist, Darknet) {
    bs_par::join(
        || Blacklist::build(scenario, seed ^ 0xB1),
        || Darknet::build(scenario, seed ^ 0xD4),
    )
}

/// Simulate a dataset end to end. Long recipes run day by day with
/// cache sweeps so memory stays proportional to the live cache state.
pub fn build_dataset(world: &World, spec: DatasetSpec) -> BuiltDataset {
    let _span = bs_telemetry::span("datasets.build");
    let scenario = Scenario::new(world, spec.scenario.clone());
    let mut sim_cfg = SimulatorConfig::observing([spec.authority]);
    if let Some(n) = spec.sampling {
        sim_cfg = sim_cfg.with_sampling(spec.authority, n);
    }
    let mut sim = Simulator::new(world, sim_cfg);
    let span = spec.scenario.duration;
    for day in spec.days_to_simulate() {
        let from = SimTime::from_days(day);
        let until = (from + SimDuration::from_days(1)).min(SimTime::ZERO + span);
        sim.process(scenario.contacts_window(world, from, until));
        // Sweep entries that were already dead at the day's start.
        sim.sweep(from);
    }
    let stats = sim.stats();
    let mut logs = sim.into_logs();
    let log = logs.remove(&spec.authority).expect("observed authority");
    let (blacklist, darknet) = build_oracles(&scenario, spec.scenario.seed);
    bs_telemetry::counter_add("datasets.built", 1);
    // Simulation-side conservation: every contact either produced at
    // least one reverse lookup or stayed silent.
    bs_trace::ledger::record(
        "datasets.build",
        stats.contacts,
        &[
            ("reacting", stats.reacting_contacts),
            ("silent", stats.contacts - stats.reacting_contacts),
        ],
    );
    bs_telemetry::debug!(
        "datasets.build",
        "dataset simulated";
        records = log.len(),
        contacts = stats.contacts,
    );
    BuiltDataset { spec, log, scenario, blacklist, darknet, stats }
}

impl BuiltDataset {
    /// Extract features for one window of this dataset.
    pub fn features_for_window(
        &self,
        world: &World,
        window: (SimTime, SimTime),
        config: &FeatureConfig,
    ) -> Vec<OriginatorFeatures> {
        extract_features(&self.log, world, window.0, window.1, config)
    }

    /// Ground truth for originators active during a window. When the
    /// same address hosted two different activities in the window (IP
    /// reuse), it is dropped — experts "strive for accuracy over
    /// quantity".
    pub fn truth_for_window(
        &self,
        window: (SimTime, SimTime),
    ) -> BTreeMap<Ipv4Addr, ApplicationClass> {
        let mut truth: BTreeMap<Ipv4Addr, Option<ApplicationClass>> = BTreeMap::new();
        for (ip, class) in self.scenario.active_originators(window.0, window.1) {
            truth
                .entry(ip)
                .and_modify(|e| {
                    if *e != Some(class) {
                        *e = None;
                    }
                })
                .or_insert(Some(class));
        }
        truth.into_iter().filter_map(|(ip, c)| c.map(|c| (ip, c))).collect()
    }

    /// The dataset's windows (delegates to the spec).
    pub fn windows(&self) -> Vec<(SimTime, SimTime)> {
        self.spec.windows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DatasetId, Scale};
    use bs_netsim::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn jp_smoke_dataset_builds_and_extracts() {
        let w = world();
        let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 1);
        let built = build_dataset(&w, spec);
        assert!(built.log.len() > 200, "log has {} records", built.log.len());
        let windows = built.windows();
        assert_eq!(windows.len(), 1);
        let feats = built.features_for_window(
            &w,
            windows[0],
            &FeatureConfig { min_queriers: 10, top_n: None },
        );
        assert!(!feats.is_empty(), "no analyzable originators");
        let truth = built.truth_for_window(windows[0]);
        // Most analyzable originators have ground truth.
        let known = feats.iter().filter(|f| truth.contains_key(&f.originator)).count();
        assert!(known * 10 >= feats.len() * 6, "{known}/{}", feats.len());
    }

    #[test]
    fn truth_drops_conflicting_reuse() {
        let w = world();
        let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 2);
        let built = build_dataset(&w, spec);
        let window = built.windows()[0];
        let truth = built.truth_for_window(window);
        // No address appears twice (map), and every label is a real class.
        assert!(!truth.is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let w = world();
        let a = build_dataset(&w, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 3));
        let b = build_dataset(&w, DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 3));
        assert_eq!(a.log, b.log);
        assert_eq!(a.stats, b.stats);
    }
}
