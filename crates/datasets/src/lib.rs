//! Synthetic replicas of the paper's datasets (Table I).
//!
//! The paper's data — JP-DNS ccTLD captures, B-Root and M-Root DITL
//! collections, a 9-month sampled M-Root feed, and a multi-year B-Root
//! archive — is proprietary. This crate rebuilds each dataset's *shape*
//! on top of the simulated world: the same observation point, duration,
//! sampling policy, feature-window length, and a population whose class
//! mix produces the structures the paper reports.
//!
//! | replica | authority | span | sampling | window |
//! |---|---|---|---|---|
//! | JP-ditl | jp national | 50 h | none | whole |
//! | B-post-ditl | B-Root | 36 h | none | whole |
//! | M-ditl | M-Root | 50 h | none | whole |
//! | M-ditl-2015 | M-Root | 50 h | none | whole |
//! | M-sampled | M-Root | 36 weeks | 1:10 | 7 days |
//! | B-long | B-Root | 8 weeks | none | 1 day |
//! | B-multi-year | B-Root | 60 weeks | none | 1 day (weekly stride) |
//!
//! Long spans are compressed relative to the paper (9 months kept, 4.16
//! years → 60 weeks) to fit a single-core budget; EXPERIMENTS.md
//! records every such substitution.
//!
//! [`external`] supplies the oracles the paper validates against:
//! DNS blacklists with realistic coverage and lag, and a darknet that
//! tallies probes into two unused prefixes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod external;
pub mod spec;

pub use build::{build_dataset, BuiltDataset};
pub use external::{Blacklist, Darknet};
pub use spec::{DatasetId, DatasetSpec, Scale};
