//! Dataset descriptors and scaling.

use bs_activity::{ApplicationClass, ScenarioConfig, ScenarioEvent};
use bs_dns::{SimDuration, SimTime};
use bs_netsim::hierarchy::{AuthorityId, RootServer};
use bs_netsim::types::CountryCode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The seven datasets of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DatasetId {
    /// 50 hours at the JP national authority, unsampled.
    JpDitl,
    /// 36 hours at B-Root shortly after DITL 2014, unsampled.
    BPostDitl,
    /// Multi-month unsampled B-Root feed (controlled experiments).
    BLong,
    /// Multi-year unsampled B-Root feed (training-over-time studies).
    BMultiYear,
    /// 50 hours at M-Root, DITL 2014.
    MDitl,
    /// 50 hours at M-Root, DITL 2015.
    MDitl2015,
    /// Nine months at M-Root, deterministically sampled 1:10.
    MSampled,
}

impl DatasetId {
    /// All datasets.
    pub const ALL: [DatasetId; 7] = [
        DatasetId::JpDitl,
        DatasetId::BPostDitl,
        DatasetId::BLong,
        DatasetId::BMultiYear,
        DatasetId::MDitl,
        DatasetId::MDitl2015,
        DatasetId::MSampled,
    ];

    /// The paper's name for the dataset.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::JpDitl => "JP-ditl",
            DatasetId::BPostDitl => "B-post-ditl",
            DatasetId::BLong => "B-long",
            DatasetId::BMultiYear => "B-multi-year",
            DatasetId::MDitl => "M-ditl",
            DatasetId::MDitl2015 => "M-ditl-2015",
            DatasetId::MSampled => "M-sampled",
        }
    }
}

/// Simulation scale: multipliers applied to the canonical configs so the
/// same specs serve fast tests and full benchmark runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Multiplier on per-class slot counts.
    pub slot_scale: f64,
    /// Multiplier on per-originator daily footprints.
    pub rate_scale: f64,
    /// Multiplier on the span (long datasets only).
    pub duration_scale: f64,
}

impl Scale {
    /// Full benchmark scale.
    pub fn standard() -> Self {
        Scale { slot_scale: 1.0, rate_scale: 1.0, duration_scale: 1.0 }
    }

    /// Test scale: small populations, short spans.
    pub fn smoke() -> Self {
        Scale { slot_scale: 0.15, rate_scale: 0.6, duration_scale: 0.2 }
    }
}

/// A fully resolved dataset recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which paper dataset this replicates.
    pub id: DatasetId,
    /// The instrumented authority.
    pub authority: AuthorityId,
    /// Deterministic 1-in-N sampling at the authority, if any.
    pub sampling: Option<u32>,
    /// Feature-window length (the paper's `d`). `None` = whole span.
    pub feature_window: Option<SimDuration>,
    /// Stride between window starts; windows tile the span when equal
    /// to `feature_window`, or subsample it when larger (B-multi-year
    /// analyses one day per week).
    pub window_stride: Option<SimDuration>,
    /// The population and span.
    pub scenario: ScenarioConfig,
}

fn slots(pairs: &[(ApplicationClass, usize)], scale: f64) -> BTreeMap<ApplicationClass, usize> {
    pairs.iter().map(|(c, n)| (*c, ((*n as f64 * scale).round() as usize).max(1))).collect()
}

use ApplicationClass::*;

/// The JP-observable population: spam-heavy, regional (Table V row 1).
const JP_MIX: &[(ApplicationClass, usize)] = &[
    (Spam, 100),
    (Scan, 35),
    (Mail, 35),
    (P2p, 30),
    (Dns, 12),
    (AdTracker, 8),
    (Cloud, 8),
    (Crawler, 8),
    (Push, 8),
    (Ntp, 6),
    (Cdn, 6),
    (Update, 5),
];

/// The globally visible population roots see: mail/cdn/spam-heavy.
const GLOBAL_MIX: &[(ApplicationClass, usize)] = &[
    (Spam, 90),
    (Mail, 70),
    (Cdn, 50),
    (Scan, 50),
    (Cloud, 20),
    (Crawler, 15),
    (P2p, 15),
    (Push, 12),
    (AdTracker, 10),
    (Dns, 12),
    (Ntp, 6),
    (Update, 4),
];

impl DatasetSpec {
    /// The canonical recipe for one dataset at the given scale.
    ///
    /// `seed` separates independent replicas of the same dataset.
    pub fn paper(id: DatasetId, scale: Scale, seed: u64) -> DatasetSpec {
        let jp = CountryCode::new("jp").expect("static code");
        let day = SimDuration::from_days(1);
        let week = SimDuration::from_days(7);
        let scaled_days = |d: u64| {
            SimDuration::from_days(((d as f64 * scale.duration_scale).round() as u64).max(2))
        };
        match id {
            DatasetId::JpDitl => DatasetSpec {
                id,
                authority: AuthorityId::National(jp),
                sampling: None,
                feature_window: None,
                window_stride: None,
                scenario: ScenarioConfig {
                    seed: seed ^ 0x10,
                    duration: SimDuration::from_hours(50),
                    slots: slots(JP_MIX, scale.slot_scale),
                    rate_scale: scale.rate_scale,
                    region: Some((jp, 0.88)),
                    scan_teams: (2, 6),
                    events: Vec::new(),
                    pool_size: 4_000,
                },
            },
            DatasetId::BPostDitl | DatasetId::MDitl | DatasetId::MDitl2015 => {
                let (root, hours, s) = match id {
                    DatasetId::BPostDitl => (RootServer::B, 36, 0x20),
                    DatasetId::MDitl => (RootServer::M, 50, 0x30),
                    _ => (RootServer::M, 50, 0x31),
                };
                DatasetSpec {
                    id,
                    authority: AuthorityId::Root(root),
                    sampling: None,
                    feature_window: None,
                    window_stride: None,
                    scenario: ScenarioConfig {
                        seed: seed ^ s,
                        duration: SimDuration::from_hours(hours),
                        slots: slots(GLOBAL_MIX, scale.slot_scale),
                        rate_scale: scale.rate_scale * 2.0,
                        region: None,
                        scan_teams: (2, 5),
                        events: Vec::new(),
                        pool_size: 4_000,
                    },
                }
            }
            DatasetId::BLong => DatasetSpec {
                id,
                authority: AuthorityId::Root(RootServer::B),
                sampling: None,
                feature_window: Some(day),
                window_stride: Some(day),
                scenario: ScenarioConfig {
                    seed: seed ^ 0x40,
                    duration: scaled_days(56),
                    slots: slots(GLOBAL_MIX, scale.slot_scale * 0.5),
                    rate_scale: scale.rate_scale,
                    region: None,
                    scan_teams: (1, 5),
                    events: Vec::new(),
                    pool_size: 3_000,
                },
            },
            DatasetId::BMultiYear => DatasetSpec {
                id,
                authority: AuthorityId::Root(RootServer::B),
                sampling: None,
                feature_window: Some(day),
                // One observed day per week: the multi-year span is
                // studied at weekly resolution.
                window_stride: Some(week),
                scenario: ScenarioConfig {
                    seed: seed ^ 0x50,
                    duration: scaled_days(420),
                    slots: slots(GLOBAL_MIX, scale.slot_scale * 0.6),
                    rate_scale: scale.rate_scale * 2.0,
                    region: None,
                    scan_teams: (2, 5),
                    events: Vec::new(),
                    pool_size: 3_000,
                },
            },
            DatasetId::MSampled => {
                let duration = scaled_days(252);
                // Heartbleed lands seven weeks in (2014-02-16 →
                // 2014-04-07); Shellshock near the end (2014-09-24).
                let hb = SimTime((duration.secs() as f64 * 0.195) as u64);
                let ss = SimTime((duration.secs() as f64 * 0.87) as u64);
                DatasetSpec {
                    id,
                    authority: AuthorityId::Root(RootServer::M),
                    sampling: Some(10),
                    feature_window: Some(week),
                    window_stride: Some(week),
                    scenario: ScenarioConfig {
                        seed: seed ^ 0x60,
                        duration,
                        slots: slots(
                            &[
                                (Scan, 60),
                                (Spam, 55),
                                (Mail, 35),
                                (Cdn, 25),
                                (Cloud, 12),
                                (P2p, 10),
                                (AdTracker, 10),
                                (Crawler, 8),
                                (Push, 8),
                                (Dns, 8),
                                (Ntp, 4),
                                (Update, 3),
                            ],
                            scale.slot_scale,
                        ),
                        // Full per-originator rates: the 1:10 sampling
                        // at M-Root eats a decade of footprint, so
                        // originators must stay big enough to clear the
                        // 20-querier threshold after sampling.
                        rate_scale: scale.rate_scale,
                        region: None,
                        scan_teams: (4, 6),
                        events: vec![
                            ScenarioEvent::ScanSurge {
                                start: hb,
                                duration: SimDuration::from_days(21),
                                extra_scanners: (26.0 * scale.slot_scale).round() as usize,
                                port: 443,
                            },
                            ScenarioEvent::ScanSurge {
                                start: ss,
                                duration: SimDuration::from_days(14),
                                extra_scanners: (14.0 * scale.slot_scale).round() as usize,
                                port: 80,
                            },
                        ],
                        pool_size: 4_000,
                    },
                }
            }
        }
    }

    /// The feature windows tiling (or striding) the span:
    /// `(start, end)` pairs.
    pub fn windows(&self) -> Vec<(SimTime, SimTime)> {
        let span = self.scenario.duration;
        let Some(window) = self.feature_window else {
            return vec![(SimTime::ZERO, SimTime::ZERO + span)];
        };
        let stride = self.window_stride.unwrap_or(window);
        assert!(stride.secs() >= window.secs(), "stride must cover the window");
        let mut out = Vec::new();
        let mut start = SimTime::ZERO;
        while start.secs() + window.secs() <= span.secs() {
            out.push((start, start + window));
            start += stride;
        }
        out
    }

    /// Days of the span that need simulating at all: with a sparse
    /// window stride (B-multi-year), days between observed windows are
    /// skipped.
    pub fn days_to_simulate(&self) -> Vec<u64> {
        let total_days = self.scenario.duration.secs().div_ceil(86_400);
        match (self.feature_window, self.window_stride) {
            (Some(w), Some(s)) if s.secs() > w.secs() => {
                let mut days = Vec::new();
                for (from, until) in self.windows() {
                    let first = from.day();
                    let last = (until.secs() - 1) / 86_400;
                    for d in first..=last {
                        days.push(d);
                    }
                }
                days
            }
            _ => (0..total_days).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_instantiate() {
        for id in DatasetId::ALL {
            let spec = DatasetSpec::paper(id, Scale::smoke(), 1);
            assert_eq!(spec.id, id);
            assert!(!spec.scenario.slots.is_empty());
            assert!(!spec.windows().is_empty(), "{id:?} has no windows");
        }
    }

    #[test]
    fn ditl_specs_use_whole_span_window() {
        let spec = DatasetSpec::paper(DatasetId::JpDitl, Scale::standard(), 1);
        let w = spec.windows();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0], (SimTime::ZERO, SimTime::from_hours(50)));
        assert_eq!(spec.days_to_simulate().len(), 3, "50 h spans three calendar days");
    }

    #[test]
    fn msampled_tiles_weeks() {
        let spec = DatasetSpec::paper(DatasetId::MSampled, Scale::standard(), 1);
        let w = spec.windows();
        assert_eq!(w.len(), 36, "nine months of weekly windows");
        assert_eq!(spec.sampling, Some(10));
        // Contiguous tiling simulates every day.
        assert_eq!(spec.days_to_simulate().len(), 252);
    }

    #[test]
    fn multi_year_strides_sparsely() {
        let spec = DatasetSpec::paper(DatasetId::BMultiYear, Scale::standard(), 1);
        let w = spec.windows();
        assert_eq!(w.len(), 60, "60 weekly one-day windows");
        // Only one day per week is simulated.
        assert_eq!(spec.days_to_simulate().len(), 60);
    }

    #[test]
    fn smoke_scale_shrinks_everything() {
        let full = DatasetSpec::paper(DatasetId::MSampled, Scale::standard(), 1);
        let smoke = DatasetSpec::paper(DatasetId::MSampled, Scale::smoke(), 1);
        let sum = |s: &DatasetSpec| s.scenario.slots.values().sum::<usize>();
        assert!(sum(&smoke) * 3 < sum(&full));
        assert!(smoke.scenario.duration < full.scenario.duration);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 1);
        let b = DatasetSpec::paper(DatasetId::JpDitl, Scale::smoke(), 2);
        assert_ne!(a.scenario.seed, b.scenario.seed);
    }
}
