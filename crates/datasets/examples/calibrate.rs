//! Calibration probe: timings, footprints, and classification accuracy
//! on standard-scale datasets. Run with `--release`.

use bs_classify::{ClassifierPipeline, LabeledSet};
use bs_datasets::{build_dataset, DatasetId, DatasetSpec, Scale};
use bs_ml::{repeated_holdout, Algorithm, CartParams, ForestParams, SvmParams};
use bs_netsim::world::{World, WorldConfig};
use bs_sensor::FeatureConfig;
use std::time::Instant;

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let world = World::new(WorldConfig::default());
    let ids = [DatasetId::JpDitl, DatasetId::BPostDitl, DatasetId::MDitl];
    for id in ids {
        if !which.is_empty() && !which.iter().any(|w| w == id.name()) {
            continue;
        }
        let t0 = Instant::now();
        let spec = DatasetSpec::paper(id, Scale::standard(), 1);
        let built = build_dataset(&world, spec);
        let build_t = t0.elapsed();
        let window = built.windows()[0];
        let t1 = Instant::now();
        let feats = built.features_for_window(&world, window, &FeatureConfig::default());
        let extract_t = t1.elapsed();
        let truth = built.truth_for_window(window);
        let stats = built.stats;
        println!(
            "{}: build {:.1}s extract {:.1}s | contacts {} lookups {} leafhits {} root_q {} natl_q {} final_q {} | log {} analyzable {}",
            id.name(), build_t.as_secs_f64(), extract_t.as_secs_f64(),
            stats.contacts, stats.lookups, stats.leaf_cache_hits,
            stats.root_queries, stats.national_queries, stats.final_queries,
            built.log.len(), feats.len()
        );
        // Footprint distribution.
        let mut qs: Vec<usize> = feats.iter().map(|f| f.querier_count).collect();
        qs.sort_unstable();
        if !qs.is_empty() {
            println!(
                "  footprints: min {} p50 {} p90 {} max {}",
                qs[0],
                qs[qs.len() / 2],
                qs[qs.len() * 9 / 10],
                qs[qs.len() - 1]
            );
        }
        // Class mix of analyzable originators.
        let mut mix = std::collections::BTreeMap::new();
        for f in &feats {
            if let Some(c) = truth.get(&f.originator) {
                *mix.entry(c.name()).or_insert(0) += 1;
            } else {
                *mix.entry("?").or_insert(0) += 1;
            }
        }
        println!("  class mix: {mix:?}");

        // Curate and evaluate the three algorithms.
        let labeled = LabeledSet::curate(&truth, &feats, 140);
        println!(
            "  labeled: {} examples, per class {:?}",
            labeled.len(),
            labeled.class_counts().iter().map(|(c, n)| (c.name(), *n)).collect::<Vec<_>>()
        );
        let fmap = bs_classify::pipeline::feature_map(&feats);
        let data = ClassifierPipeline::to_dataset(&labeled, &fmap);
        for alg in [
            Algorithm::Cart(CartParams::default()),
            Algorithm::RandomForest(ForestParams::default()),
            Algorithm::Svm(SvmParams::default()),
        ] {
            let t2 = Instant::now();
            let rep = repeated_holdout(&alg, &data, 0.6, 10, 42);
            println!(
                "  {}: acc {:.2} prec {:.2} rec {:.2} f1 {:.2} ({:.1}s)",
                alg.name(),
                rep.mean.accuracy,
                rep.mean.precision,
                rep.mean.recall,
                rep.mean.f1,
                t2.elapsed().as_secs_f64()
            );
        }
    }
}
