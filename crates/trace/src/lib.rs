//! `bs-trace` — causal tracing for the dns-backscatter pipeline.
//!
//! `bs-telemetry` answers *how much* and *how long*; this crate answers
//! *which window, which stage, which worker*. After `bs-par` fanned the
//! pipeline out across pool threads, process-wide aggregates can no
//! longer attribute time or records to a particular window — and the
//! paper's sensor is only trustworthy if every PTR tuple is accounted
//! for as it flows through dedup, the analyzability cut, feature
//! extraction, and classification. Three pieces, all with **zero
//! external dependencies**:
//!
//! * **hierarchical spans** ([`span`]): every span carries a
//!   `(trace_id, span_id, parent_id)` triple. The current span lives in
//!   a thread-local; [`current_context`] / [`enter_context`] carry it
//!   across threads, and `bs-par` propagates it into pool workers
//!   automatically, so a span opened inside a worker task parents under
//!   the stage that spawned it at any thread count;
//! * a **flight recorder** ([`drain`], [`events`]): a fixed-capacity,
//!   lock-striped ring buffer of recent trace events (span start/end,
//!   counters, warn-or-worse log records), dumpable on demand or on
//!   panic ([`install_panic_hook`]);
//! * a **drop-accounting [`ledger`]**: per-(stage, window) conservation
//!   counters — records in = kept + deduped + below-threshold +
//!   evicted + … — with [`ledger::verify`] reporting any imbalance.
//!
//! Exporters: [`chrome_trace_json`] writes the Chrome trace-event JSON
//! format (loadable in `chrome://tracing` / Perfetto, one lane per pool
//! worker), [`tree_dump`] renders a human-readable span tree, and
//! [`json`] holds a dependency-free JSON parser used to validate and
//! inspect exported traces.
//!
//! # Cost model
//!
//! Tracing is compiled in everywhere but **near-free when disabled**:
//! every recording entry point ([`span`], [`record_counter`],
//! [`record_log`], [`current_context`], [`enter_context`],
//! [`ledger::record`], [`ledger::window_scope`]) first checks a single
//! relaxed atomic ([`is_enabled`]) and returns an inert value
//! immediately — no clock read, no allocation, no lock, no thread-local
//! write. The CLI's `--trace` flag (and tests) call [`enable`] first.
//!
//! ```
//! bs_trace::enable();
//! let events = {
//!     let _root = bs_trace::span("doc.stage");
//!     bs_trace::record_counter("doc.items", 3);
//!     drop(_root);
//!     bs_trace::drain()
//! };
//! assert!(events.len() >= 3); // start, counter, end
//! let json = bs_trace::chrome_trace_json(&events);
//! bs_trace::json::parse(&json).expect("valid trace JSON");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod export;
pub mod json;
pub mod ledger;
mod recorder;
pub mod stack;

pub use context::{current_context, enter_context, span, ContextGuard, SpanGuard, TraceContext};
pub use export::{chrome_trace_json, tree_dump};
pub use recorder::{
    drain, dropped, events, install_panic_hook, lane_names, name_lane, record_counter, record_log,
    set_capacity, Event, EventKind,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Bit 0 of [`flags`]: the flight recorder + exporters are recording.
const FLAG_TRACE: u8 = 1;
/// Bit 1 of [`flags`]: the profiler stack-snapshot machinery is live.
const FLAG_PROF: u8 = 2;

/// The one atomic every entry point reads: a bitfield of [`FLAG_TRACE`]
/// and [`FLAG_PROF`]. Zero means fully inert.
static FLAGS: AtomicU8 = AtomicU8::new(0);

pub(crate) fn flags() -> u8 {
    FLAGS.load(Ordering::Relaxed)
}

/// Start recording trace events and ledger flows.
pub fn enable() {
    FLAGS.fetch_or(FLAG_TRACE, Ordering::Relaxed);
}

/// Stop recording trace events; tracing entry points return
/// immediately again (profiling, if on, stays on).
pub fn disable() {
    FLAGS.fetch_and(!FLAG_TRACE, Ordering::Relaxed);
}

/// Whether tracing is on (one relaxed atomic load — the only cost every
/// entry point pays while disabled).
pub fn is_enabled() -> bool {
    flags() & FLAG_TRACE != 0
}

/// Turn the profiler support on: spans additionally maintain a
/// per-thread shared frame stack (see [`stack`]) that a sampler thread
/// can snapshot, and the span/context/ledger machinery runs even while
/// the flight recorder is off (so per-window cost attribution can join
/// against ledger record counts without paying for event recording).
pub fn enable_profiling() {
    FLAGS.fetch_or(FLAG_PROF, Ordering::Relaxed);
}

/// Turn the profiler support off.
pub fn disable_profiling() {
    FLAGS.fetch_and(!FLAG_PROF, Ordering::Relaxed);
}

/// Whether profiling is on (one relaxed atomic load).
pub fn is_profiling() -> bool {
    flags() & FLAG_PROF != 0
}

/// Whether tracing *or* profiling is on. The span/context/ledger entry
/// points are live in either mode; the flight-recorder ring records
/// only under [`is_enabled`].
pub fn is_active() -> bool {
    flags() != 0
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// The recorder, ledger, and enabled flag are process-global;
    /// tests that touch them serialize on this lock.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn serial() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_entry_points_are_inert() {
        let _g = testutil::serial();
        disable();
        disable_profiling();
        drain();
        ledger::reset();
        {
            let s = span("trace.test.disabled");
            assert!(s.is_inert(), "disabled span must carry no ids");
            assert!(current_context().is_none());
            record_counter("trace.test.counter", 1);
            record_log("WARN", "trace.test", "dropped");
            ledger::record("trace.test.stage", 5, &[("kept", 5)]);
            let _c = enter_context(Some(TraceContext { trace_id: 1, span_id: 2 }));
            assert!(current_context().is_none(), "disabled enter_context is a no-op");
        }
        assert!(events().is_empty(), "nothing may be recorded while disabled");
        assert!(ledger::snapshot().is_empty());
    }

    #[test]
    fn profile_only_mode_keeps_ledger_live_but_recorder_silent() {
        let _g = testutil::serial();
        disable();
        enable_profiling();
        drain();
        ledger::reset();
        {
            let s = span("trace.test.profonly");
            assert!(!s.is_inert(), "profiling keeps spans live");
            assert!(current_context().is_some(), "context propagates under profiling");
            let _w = ledger::window_scope(7);
            assert_eq!(ledger::current_window(), 7);
            ledger::record("trace.test.profonly", 3, &[("kept", 3)]);
        }
        assert!(events().is_empty(), "flight recorder stays silent without the trace bit");
        let snap = ledger::snapshot();
        assert_eq!(snap[&("trace.test.profonly".to_string(), 7)].records_in, 3);
        ledger::reset();
        disable_profiling();
        assert!(!is_active());
    }

    #[test]
    fn span_ids_nest_and_propagate() {
        let _g = testutil::serial();
        enable();
        drain();
        let (outer_ctx, inner_parent) = {
            let outer = span("trace.test.outer");
            let outer_ctx = current_context().expect("outer span is current");
            let inner = span("trace.test.inner");
            let inner_ctx = current_context().expect("inner span is current");
            assert_eq!(outer_ctx.trace_id, inner_ctx.trace_id, "one trace");
            assert_ne!(outer_ctx.span_id, inner_ctx.span_id);
            drop(inner);
            assert_eq!(current_context(), Some(outer_ctx), "pop restores parent");
            drop(outer);
            (outer_ctx, inner_ctx)
        };
        assert!(current_context().is_none(), "stack empty after all spans end");
        let evs = drain();
        let starts: Vec<&Event> =
            evs.iter().filter(|e| matches!(e.kind, EventKind::SpanStart { .. })).collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0].span_id, outer_ctx.span_id);
        assert_eq!(starts[0].parent_id, 0, "root span has no parent");
        assert_eq!(starts[1].span_id, inner_parent.span_id);
        assert_eq!(starts[1].parent_id, outer_ctx.span_id, "inner parents under outer");
        disable();
    }

    #[test]
    fn context_crosses_threads_via_enter() {
        let _g = testutil::serial();
        enable();
        drain();
        let root = span("trace.test.cross");
        let ctx = current_context();
        let child_ids = std::thread::scope(|s| {
            s.spawn(|| {
                let _e = enter_context(ctx);
                let _child = span("trace.test.cross.child");
                current_context().expect("child current")
            })
            .join()
            .expect("worker")
        });
        let root_ctx = ctx.expect("root current");
        assert_eq!(child_ids.trace_id, root_ctx.trace_id, "trace id crosses threads");
        drop(root);
        let evs = drain();
        let child_start = evs
            .iter()
            .find(|e| matches!(e.kind, EventKind::SpanStart { name } if name.ends_with("child")))
            .expect("child start recorded");
        assert_eq!(child_start.parent_id, root_ctx.span_id, "child parents under root");
        assert_ne!(
            child_start.lane, evs[0].lane,
            "child ran on a different lane than the root span"
        );
        disable();
    }
}
