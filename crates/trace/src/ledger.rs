//! The drop-accounting ledger: per-(stage, window) conservation
//! counters.
//!
//! Every pipeline stage that consumes records calls [`record`] once
//! per invocation with the number of records it *saw* and a breakdown
//! of where every one of them *went* (`kept`, `deduped`,
//! `below_threshold`, `evicted`, …). The invariant each stage must
//! uphold is
//!
//! ```text
//! records_in == sum(outcome buckets)
//! ```
//!
//! and [`verify`] reports every `(stage, window)` cell where it does
//! not hold. Crucially, `records_in` is tallied *independently* of the
//! buckets (a `seen` counter incremented before any branching), so a
//! code path that silently discards a record shows up as a positive
//! imbalance instead of vanishing — silent drops are exactly the
//! failure mode the paper's sensor cannot tolerate.
//!
//! Each [`record`] call commits atomically under one lock acquisition,
//! so a concurrent `verify` observes whole stage invocations only and
//! a balanced pipeline reports zero imbalance at any instant.
//!
//! The window a flow belongs to comes from a thread-local set by
//! [`window_scope`]; stages running outside any window file under
//! [`NO_WINDOW`].

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Window key for flows recorded outside any [`window_scope`].
pub const NO_WINDOW: u64 = u64::MAX;

thread_local! {
    static WINDOW: Cell<u64> = const { Cell::new(NO_WINDOW) };
}

/// Accumulated flow through one `(stage, window)` cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Flow {
    /// Records the stage saw (counted before any branching).
    pub records_in: u64,
    /// Where they went: outcome bucket name → count.
    pub out: BTreeMap<String, u64>,
}

impl Flow {
    /// Sum of all outcome buckets.
    pub fn accounted(&self) -> u64 {
        self.out.values().sum()
    }
}

/// One conservation violation reported by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Imbalance {
    /// Stage name, e.g. `"sensor.ingest"`.
    pub stage: String,
    /// Window key ([`NO_WINDOW`] when recorded outside any window).
    pub window: u64,
    /// Records the stage saw.
    pub records_in: u64,
    /// Records the outcome buckets account for.
    pub accounted: u64,
}

impl Imbalance {
    /// `records_in - accounted`: positive means records vanished,
    /// negative means a bucket double-counted.
    pub fn delta(&self) -> i64 {
        self.records_in as i64 - self.accounted as i64
    }
}

type Cells = BTreeMap<(String, u64), Flow>;

fn cells() -> &'static Mutex<Cells> {
    static CELLS: OnceLock<Mutex<Cells>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> MutexGuard<'static, Cells> {
    cells().lock().unwrap_or_else(|e| e.into_inner())
}

/// Scope the current thread to window `w` until the guard drops
/// (restoring the previous window — scopes nest). Inert while tracing
/// and profiling are both disabled.
pub fn window_scope(w: u64) -> WindowGuard {
    if !crate::is_active() {
        return WindowGuard { prev: NO_WINDOW, entered: false };
    }
    let prev = WINDOW.with(|c| c.replace(w));
    WindowGuard { prev, entered: true }
}

/// The window the current thread is scoped to ([`NO_WINDOW`] outside
/// any scope). The profiler uses this to file stage costs by window.
pub fn current_window() -> u64 {
    WINDOW.with(|c| c.get())
}

/// Restores the previous window on drop (see [`window_scope`]).
#[must_use = "dropping the guard immediately exits the window scope"]
#[derive(Debug)]
pub struct WindowGuard {
    prev: u64,
    entered: bool,
}

impl Drop for WindowGuard {
    fn drop(&mut self) {
        if self.entered {
            WINDOW.with(|c| c.set(self.prev));
        }
    }
}

/// Record one stage invocation: it saw `records_in` records and routed
/// them to the named outcome buckets. Files under the thread's current
/// [`window_scope`]. The whole call commits under a single lock
/// acquisition. Near-free when disabled: one relaxed atomic load.
/// Live under tracing *or* profiling (cost attribution joins against
/// these counts).
pub fn record(stage: &str, records_in: u64, out: &[(&str, u64)]) {
    if !crate::is_active() {
        return;
    }
    let window = WINDOW.with(|c| c.get());
    let mut cells = lock();
    let flow = cells.entry((stage.to_string(), window)).or_default();
    flow.records_in += records_in;
    for (bucket, n) in out {
        *flow.out.entry((*bucket).to_string()).or_insert(0) += n;
    }
}

/// Every `(stage, window)` cell where `records_in != sum(buckets)`.
/// Empty means every record that entered every stage is accounted for.
pub fn verify() -> Vec<Imbalance> {
    lock()
        .iter()
        .filter(|(_, flow)| flow.records_in != flow.accounted())
        .map(|((stage, window), flow)| Imbalance {
            stage: stage.clone(),
            window: *window,
            records_in: flow.records_in,
            accounted: flow.accounted(),
        })
        .collect()
}

/// A copy of every `(stage, window)` cell.
pub fn snapshot() -> BTreeMap<(String, u64), Flow> {
    lock().clone()
}

/// Clear the ledger (tests and per-run CLI resets).
pub fn reset() {
    lock().clear();
}

/// Human-readable table of every cell, one line per `(stage, window)`,
/// with a trailing `IMBALANCE` marker on unbalanced lines.
pub fn render() -> String {
    let cells = lock();
    let mut s = String::new();
    let _ = writeln!(s, "{:<24} {:>12} {:>10}  outcomes", "stage", "window", "in");
    for ((stage, window), flow) in cells.iter() {
        let win = if *window == NO_WINDOW { "-".to_string() } else { window.to_string() };
        let outs: Vec<String> = flow.out.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let balance = if flow.records_in == flow.accounted() {
            String::new()
        } else {
            format!("  IMBALANCE ({} vs {})", flow.records_in, flow.accounted())
        };
        let _ = writeln!(
            s,
            "{:<24} {:>12} {:>10}  {}{}",
            stage,
            win,
            flow.records_in,
            outs.join(" "),
            balance
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn balanced_stage_verifies_clean() {
        let _g = testutil::serial();
        crate::enable();
        reset();
        record("trace.test.clean", 10, &[("kept", 7), ("deduped", 3)]);
        record("trace.test.clean", 5, &[("kept", 5)]);
        assert!(verify().is_empty(), "10+5 in, 7+3+5 out — balanced");
        let snap = snapshot();
        let flow = &snap[&("trace.test.clean".to_string(), NO_WINDOW)];
        assert_eq!(flow.records_in, 15);
        assert_eq!(flow.out["kept"], 12);
        assert_eq!(flow.out["deduped"], 3);
        reset();
        crate::disable();
    }

    #[test]
    fn silent_drop_surfaces_as_imbalance() {
        let _g = testutil::serial();
        crate::enable();
        reset();
        record("trace.test.leaky", 10, &[("kept", 8)]);
        let bad = verify();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].stage, "trace.test.leaky");
        assert_eq!(bad[0].delta(), 2, "two records vanished");
        assert!(render().contains("IMBALANCE"));
        reset();
        crate::disable();
    }

    #[test]
    fn window_scopes_nest_and_partition_cells() {
        let _g = testutil::serial();
        crate::enable();
        reset();
        {
            let _w0 = window_scope(0);
            record("trace.test.win", 4, &[("kept", 4)]);
            {
                let _w1 = window_scope(1);
                record("trace.test.win", 6, &[("kept", 6)]);
            }
            record("trace.test.win", 2, &[("kept", 2)]);
        }
        record("trace.test.win", 1, &[("kept", 1)]);
        let snap = snapshot();
        assert_eq!(snap[&("trace.test.win".to_string(), 0)].records_in, 6, "outer scope restored");
        assert_eq!(snap[&("trace.test.win".to_string(), 1)].records_in, 6);
        assert_eq!(snap[&("trace.test.win".to_string(), NO_WINDOW)].records_in, 1);
        assert!(verify().is_empty());
        reset();
        crate::disable();
    }

    #[test]
    fn concurrent_records_never_show_transient_imbalance() {
        let _g = testutil::serial();
        crate::enable();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        record("trace.test.conc", 3, &[("kept", 2), ("deduped", 1)]);
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..100 {
                    assert!(verify().is_empty(), "verify mid-flight sees whole invocations only");
                }
            });
        });
        let snap = snapshot();
        assert_eq!(snap[&("trace.test.conc".to_string(), NO_WINDOW)].records_in, 4 * 200 * 3);
        reset();
        crate::disable();
    }
}
