//! Span identity and the thread-local current-span context.
//!
//! Every span gets a fresh `span_id` from one process-global counter;
//! the id of the span a thread is currently inside lives in a
//! thread-local [`Cell`]. Nesting is a linked structure through the
//! guards themselves: each [`SpanGuard`] remembers the context it
//! replaced and restores it on drop, so guards must drop in LIFO order
//! on a given thread (which scoped usage guarantees).
//!
//! Crossing threads is explicit: capture [`current_context`] on the
//! spawning thread, call [`enter_context`] on the worker. `bs-par`
//! does both automatically for every pool primitive.

use crate::recorder;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-global id source. Starts at 1 so 0 can mean "no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The span the current thread is inside, if any.
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// A position in the span tree: which trace, and which span within it.
/// Copyable and `Send` so it can hop threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The root identity shared by every span of one causal tree.
    pub trace_id: u64,
    /// The span to parent new child spans under.
    pub span_id: u64,
}

/// The current thread's span context, for handing to another thread.
/// `None` while tracing and profiling are both disabled, or outside
/// any span.
pub fn current_context() -> Option<TraceContext> {
    if !crate::is_active() {
        return None;
    }
    CURRENT.with(|c| c.get())
}

/// Make `ctx` the current context of this thread until the returned
/// guard drops (restoring whatever was current before). Pool workers
/// call this with the context captured on the spawning thread so their
/// spans attach to the right parent. Inert while tracing and profiling
/// are both disabled.
pub fn enter_context(ctx: Option<TraceContext>) -> ContextGuard {
    if !crate::is_active() {
        return ContextGuard { prev: None, entered: false };
    }
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev, entered: true }
}

/// Restores the previous thread context on drop (see [`enter_context`]).
#[must_use = "dropping the guard immediately re-exits the context"]
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
    entered: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.entered {
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Start a hierarchical span. The span becomes the current context of
/// this thread; it ends (and records its duration) when the guard
/// drops. While tracing and profiling are both disabled this costs one
/// relaxed atomic load and returns an inert guard that never reads the
/// clock. With only profiling on, the span maintains the shared frame
/// stack (for the sampler) but records nothing in the flight recorder.
pub fn span(name: &'static str) -> SpanGuard {
    let flags = crate::flags();
    if flags == 0 {
        return SpanGuard { name, live: None };
    }
    let traced = crate::is_enabled();
    let (trace_id, parent_id) = match CURRENT.with(|c| c.get()) {
        Some(parent) => (parent.trace_id, parent.span_id),
        None => (next_id(), 0),
    };
    let span_id = next_id();
    let prev = CURRENT.with(|c| c.replace(Some(TraceContext { trace_id, span_id })));
    if traced {
        recorder::push(trace_id, span_id, parent_id, recorder::EventKind::SpanStart { name });
    }
    let framed = crate::is_profiling() && crate::stack::push_frame(name);
    SpanGuard {
        name,
        live: Some(LiveSpan {
            trace_id,
            span_id,
            parent_id,
            prev,
            start: Instant::now(),
            traced,
            framed,
        }),
    }
}

#[derive(Debug)]
struct LiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    prev: Option<TraceContext>,
    start: Instant,
    /// SpanStart went to the flight recorder, so SpanEnd must too.
    traced: bool,
    /// A frame was pushed onto the shared profiler stack, so exactly
    /// one pop is owed on drop.
    framed: bool,
}

/// An open span; ends when dropped. Created by [`span`].
#[must_use = "a span ends on drop; binding it to `_` ends it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This span's context, for manual propagation. `None` when the
    /// span was created while tracing was disabled.
    pub fn context(&self) -> Option<TraceContext> {
        self.live.as_ref().map(|l| TraceContext { trace_id: l.trace_id, span_id: l.span_id })
    }

    /// Whether the guard was created while tracing was disabled (it
    /// records nothing and never read the clock).
    pub fn is_inert(&self) -> bool {
        self.live.is_none()
    }

    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            CURRENT.with(|c| c.set(live.prev));
            if live.framed {
                crate::stack::pop_frame();
            }
            if live.traced {
                let dur_us = u64::try_from(live.start.elapsed().as_micros()).unwrap_or(u64::MAX);
                recorder::push(
                    live.trace_id,
                    live.span_id,
                    live.parent_id,
                    recorder::EventKind::SpanEnd { name: self.name, dur_us },
                );
            }
        }
    }
}
