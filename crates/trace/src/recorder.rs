//! The flight recorder: a fixed-capacity, lock-striped ring buffer of
//! recent trace events.
//!
//! Events are pushed from any thread. Each thread is assigned a *lane*
//! (a small dense id, named after the pool worker when `bs-par` calls
//! [`name_lane`]); events route to one of [`STRIPES`] independent
//! mutex-protected rings by `lane % STRIPES`, so threads on different
//! stripes never contend. A process-global sequence number gives a
//! total order for export. When a stripe fills, its oldest events are
//! overwritten and [`dropped`] counts them — the recorder keeps the
//! *most recent* history, which is what you want from a flight
//! recorder after a crash.

use crate::context;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of independently-locked rings. Power of two; lanes route by
/// `lane % STRIPES`.
const STRIPES: usize = 8;

/// Default total event capacity across all stripes.
const DEFAULT_CAPACITY: usize = 65_536;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the process-global total order.
    pub seq: u64,
    /// Microseconds since the first recorded event (process epoch).
    pub t_us: u64,
    /// Dense id of the thread that recorded the event.
    pub lane: u64,
    /// Trace this event belongs to (0 if recorded outside any span).
    pub trace_id: u64,
    /// Span this event belongs to (0 if recorded outside any span).
    pub span_id: u64,
    /// Parent span id (0 for root spans / non-span events).
    pub parent_id: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart {
        /// Span name.
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// Span name.
        name: &'static str,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time counter sample.
    Counter {
        /// Counter name.
        name: String,
        /// Sampled value (delta or absolute — the producer decides).
        value: u64,
    },
    /// A log record (warn or worse, forwarded from `bs-telemetry`).
    Log {
        /// Severity label, e.g. `"WARN"`.
        level: String,
        /// Module or subsystem that emitted the record.
        target: String,
        /// The rendered message.
        message: String,
    },
}

struct Stripe {
    ring: Mutex<VecDeque<Event>>,
}

struct Recorder {
    stripes: Vec<Stripe>,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity_per_stripe: AtomicUsize,
    lane_names: Mutex<Vec<(u64, String)>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        stripes: (0..STRIPES).map(|_| Stripe { ring: Mutex::new(VecDeque::new()) }).collect(),
        seq: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        capacity_per_stripe: AtomicUsize::new(DEFAULT_CAPACITY / STRIPES),
        lane_names: Mutex::new(Vec::new()),
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Survive a poisoned lock: the recorder's state is a plain event
/// buffer, valid regardless of where a panicking thread stopped.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LANE: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// This thread's lane id, assigning one on first use.
pub(crate) fn lane() -> u64 {
    LANE.with(|l| match l.get() {
        Some(id) => id,
        None => {
            let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(Some(id));
            id
        }
    })
}

/// Name the current thread's lane (e.g. `"par-worker-3"`); the name
/// becomes the thread label in the Chrome trace export. Re-naming a
/// lane replaces the previous name. Inert while tracing is disabled.
pub fn name_lane(name: &str) {
    if !crate::is_enabled() {
        return;
    }
    let id = lane();
    let mut names = lock(&recorder().lane_names);
    match names.iter_mut().find(|(l, _)| *l == id) {
        Some(entry) => entry.1 = name.to_string(),
        None => names.push((id, name.to_string())),
    }
}

/// All `(lane, name)` pairs registered via [`name_lane`].
pub fn lane_names() -> Vec<(u64, String)> {
    lock(&recorder().lane_names).clone()
}

/// Record an event on the current thread's lane. Callers have already
/// checked [`crate::is_enabled`].
pub(crate) fn push(trace_id: u64, span_id: u64, parent_id: u64, kind: EventKind) {
    let rec = recorder();
    let lane = lane();
    let t_us = u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX);
    let seq = rec.seq.fetch_add(1, Ordering::Relaxed);
    let event = Event { seq, t_us, lane, trace_id, span_id, parent_id, kind };
    let cap = rec.capacity_per_stripe.load(Ordering::Relaxed).max(1);
    let stripe = &rec.stripes[(lane as usize) % STRIPES];
    let mut ring = lock(&stripe.ring);
    while ring.len() >= cap {
        ring.pop_front();
        rec.dropped.fetch_add(1, Ordering::Relaxed);
    }
    ring.push_back(event);
}

/// Record a counter sample attributed to the current span (if any).
/// Near-free when disabled: one relaxed atomic load, no allocation.
pub fn record_counter(name: &str, value: u64) {
    if !crate::is_enabled() {
        return;
    }
    let (trace_id, span_id) = ids();
    push(trace_id, span_id, 0, EventKind::Counter { name: name.to_string(), value });
}

/// Record a log line attributed to the current span (if any).
/// `bs-telemetry` forwards warn-or-worse records here. Near-free when
/// disabled: one relaxed atomic load, no allocation.
pub fn record_log(level: &str, target: &str, message: &str) {
    if !crate::is_enabled() {
        return;
    }
    let (trace_id, span_id) = ids();
    push(
        trace_id,
        span_id,
        0,
        EventKind::Log {
            level: level.to_string(),
            target: target.to_string(),
            message: message.to_string(),
        },
    );
}

fn ids() -> (u64, u64) {
    match context::current_context() {
        Some(ctx) => (ctx.trace_id, ctx.span_id),
        None => (0, 0),
    }
}

/// Set the recorder's total event capacity (split evenly across
/// stripes, minimum one event per stripe). Existing events are kept up
/// to the new per-stripe limit.
pub fn set_capacity(total: usize) {
    let rec = recorder();
    let per = (total / STRIPES).max(1);
    rec.capacity_per_stripe.store(per, Ordering::Relaxed);
    for stripe in &rec.stripes {
        let mut ring = lock(&stripe.ring);
        while ring.len() > per {
            ring.pop_front();
            rec.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Events overwritten because a stripe was full (oldest-first loss).
pub fn dropped() -> u64 {
    recorder().dropped.load(Ordering::Relaxed)
}

/// Copy out all buffered events, in global `seq` order, leaving the
/// buffer intact (for the panic hook and mid-run inspection).
pub fn events() -> Vec<Event> {
    let rec = recorder();
    let mut all: Vec<Event> = Vec::new();
    for stripe in &rec.stripes {
        all.extend(lock(&stripe.ring).iter().cloned());
    }
    all.sort_by_key(|e| e.seq);
    all
}

/// Take all buffered events, in global `seq` order, emptying the
/// buffer. The export path: record a run, `drain`, write the JSON.
pub fn drain() -> Vec<Event> {
    let rec = recorder();
    let mut all: Vec<Event> = Vec::new();
    for stripe in &rec.stripes {
        all.extend(lock(&stripe.ring).drain(..));
    }
    all.sort_by_key(|e| e.seq);
    all
}

/// Install a panic hook that dumps the flight recorder (as a span tree
/// plus the last few raw events) to stderr before the default hook
/// runs. Installs at most once per process; cheap to call repeatedly.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if crate::is_enabled() {
                let evs = events();
                if !evs.is_empty() {
                    eprintln!("--- bs-trace flight recorder ({} events) ---", evs.len());
                    eprintln!("{}", crate::export::tree_dump(&evs));
                    eprintln!("--- end flight recorder ---");
                }
            }
            default(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let _g = testutil::serial();
        crate::enable();
        drain();
        // Tiny capacity: one event per stripe. All events from this
        // thread land on one stripe, so only the newest survives.
        set_capacity(STRIPES);
        let before_dropped = dropped();
        for i in 0..10 {
            record_counter("trace.test.ring", i);
        }
        let evs = drain();
        assert_eq!(evs.len(), 1, "one-slot stripe keeps exactly the newest event");
        match &evs[0].kind {
            EventKind::Counter { value, .. } => assert_eq!(*value, 9, "newest value wins"),
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(dropped() - before_dropped, 9, "nine overwrites counted");
        set_capacity(DEFAULT_CAPACITY);
        crate::disable();
    }

    #[test]
    fn drain_orders_across_lanes_by_seq() {
        let _g = testutil::serial();
        crate::enable();
        drain();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..8 {
                        record_counter("trace.test.multilane", t * 100 + i);
                    }
                });
            }
        });
        let evs = drain();
        assert_eq!(evs.len(), 32);
        for pair in evs.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "drain is seq-sorted");
        }
        crate::disable();
    }

    #[test]
    fn lane_names_register_and_rename() {
        let _g = testutil::serial();
        crate::enable();
        let my_lane = lane();
        name_lane("trace-test-lane");
        assert!(lane_names().iter().any(|(l, n)| *l == my_lane && n == "trace-test-lane"));
        name_lane("trace-test-lane-2");
        let names = lane_names();
        let mine: Vec<&(u64, String)> = names.iter().filter(|(l, _)| *l == my_lane).collect();
        assert_eq!(mine.len(), 1, "rename replaces, not appends");
        assert_eq!(mine[0].1, "trace-test-lane-2");
        crate::disable();
    }
}
