//! Exporters: Chrome trace-event JSON and a human-readable span tree.

use crate::recorder::{lane_names, Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render events as Chrome trace-event JSON (the "JSON Object Format":
/// a top-level object with a `traceEvents` array), loadable in
/// `chrome://tracing` and Perfetto. Each recorder lane becomes a
/// thread (`tid`); lanes named via [`crate::name_lane`] get
/// `thread_name` metadata so pool workers are labelled in the UI.
/// Span begin/end map to `ph:"B"`/`ph:"E"`, counters to `ph:"C"`, and
/// log records to instant events (`ph:"i"`). Cross-thread parentage is
/// carried in each event's `args` (`trace_id`/`span_id`/`parent_id`)
/// since the viewer's own nesting is per-thread only.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&s);
    };

    emit(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"backscatter\"}}"
            .to_string(),
        &mut out,
    );
    let names = lane_names();
    let mut seen_lanes: Vec<u64> = events.iter().map(|e| e.lane).collect();
    seen_lanes.sort_unstable();
    seen_lanes.dedup();
    for lane in &seen_lanes {
        let label = names
            .iter()
            .find(|(l, _)| l == lane)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("lane-{lane}"));
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&label)
            ),
            &mut out,
        );
    }

    for e in events {
        let ids = format!(
            "\"trace_id\":{},\"span_id\":{},\"parent_id\":{}",
            e.trace_id, e.span_id, e.parent_id
        );
        let line = match &e.kind {
            EventKind::SpanStart { name } => format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                 \"args\":{{{ids}}}}}",
                e.lane,
                e.t_us,
                json_escape(name)
            ),
            EventKind::SpanEnd { name, dur_us } => format!(
                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                 \"args\":{{{ids},\"dur_us\":{dur_us}}}}}",
                e.lane,
                e.t_us,
                json_escape(name)
            ),
            EventKind::Counter { name, value } => format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                 \"args\":{{\"value\":{value}}}}}",
                e.lane,
                e.t_us,
                json_escape(name)
            ),
            EventKind::Log { level, target, message } => format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{} {}\",\
                 \"args\":{{{ids},\"message\":\"{}\"}}}}",
                e.lane,
                e.t_us,
                json_escape(level),
                json_escape(target),
                json_escape(message)
            ),
        };
        emit(line, &mut out);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

struct Node {
    name: &'static str,
    lane: u64,
    dur_us: Option<u64>,
    children: Vec<Item>,
}

enum Item {
    Span(u64),
    Counter { name: String, value: u64 },
    Log { level: String, target: String, message: String },
}

/// Render events as an indented span tree with durations, counters,
/// and log records attached under their owning span. Spans whose
/// parent fell out of the ring buffer render at the root.
pub fn tree_dump(events: &[Event]) -> String {
    let mut nodes: BTreeMap<u64, Node> = BTreeMap::new();
    let mut roots: Vec<Item> = Vec::new();

    // First pass: create span nodes so attachment works regardless of
    // event order within the buffer.
    for e in events {
        if let EventKind::SpanStart { name } = e.kind {
            nodes
                .insert(e.span_id, Node { name, lane: e.lane, dur_us: None, children: Vec::new() });
        }
    }
    for e in events {
        match &e.kind {
            EventKind::SpanStart { .. } => {
                let item = Item::Span(e.span_id);
                match nodes.contains_key(&e.parent_id) && e.parent_id != e.span_id {
                    true => attach(&mut nodes, e.parent_id, item),
                    false => roots.push(item),
                }
            }
            EventKind::SpanEnd { dur_us, .. } => {
                if let Some(n) = nodes.get_mut(&e.span_id) {
                    n.dur_us = Some(*dur_us);
                }
            }
            EventKind::Counter { name, value } => {
                let item = Item::Counter { name: name.clone(), value: *value };
                match nodes.contains_key(&e.span_id) {
                    true => attach(&mut nodes, e.span_id, item),
                    false => roots.push(item),
                }
            }
            EventKind::Log { level, target, message } => {
                let item = Item::Log {
                    level: level.clone(),
                    target: target.clone(),
                    message: message.clone(),
                };
                match nodes.contains_key(&e.span_id) {
                    true => attach(&mut nodes, e.span_id, item),
                    false => roots.push(item),
                }
            }
        }
    }

    let mut out = String::new();
    for item in &roots {
        render(&nodes, item, 0, &mut out);
    }
    out
}

fn attach(nodes: &mut BTreeMap<u64, Node>, parent: u64, item: Item) {
    if let Some(n) = nodes.get_mut(&parent) {
        n.children.push(item);
    }
}

fn render(nodes: &BTreeMap<u64, Node>, item: &Item, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match item {
        Item::Span(id) => {
            if let Some(n) = nodes.get(id) {
                let dur = match n.dur_us {
                    Some(us) => format!("{us} us"),
                    None => "open".to_string(),
                };
                let _ = writeln!(out, "{pad}{} ({dur}) [lane {}]", n.name, n.lane);
                for child in &n.children {
                    render(nodes, child, depth + 1, out);
                }
            }
        }
        Item::Counter { name, value } => {
            let _ = writeln!(out, "{pad}+ {name} = {value}");
        }
        Item::Log { level, target, message } => {
            let _ = writeln!(out, "{pad}! [{level} {target}] {message}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn chrome_export_parses_and_carries_lanes() {
        let _g = testutil::serial();
        crate::enable();
        crate::drain();
        {
            let _root = crate::span("trace.test.export");
            crate::record_counter("trace.test.export.count", 7);
            crate::record_log("WARN", "trace.test", "a \"quoted\"\nmessage");
            let _inner = crate::span("trace.test.export.inner");
        }
        let evs = crate::drain();
        let json = chrome_trace_json(&evs);
        let value = crate::json::parse(&json).expect("export is valid JSON");
        let top = value.as_object().expect("top-level object");
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        // Metadata (process + >=1 lane) plus 2 B, 2 E, 1 C, 1 i.
        assert!(events.len() >= 8, "got {} events", events.len());
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.as_object())
            .filter_map(|o| o.iter().find(|(k, _)| k == "ph"))
            .filter_map(|(_, v)| v.as_str())
            .collect();
        for ph in ["M", "B", "E", "C", "i"] {
            assert!(phases.contains(&ph), "missing phase {ph}");
        }
        crate::disable();
    }

    #[test]
    fn tree_dump_nests_and_attaches() {
        let _g = testutil::serial();
        crate::enable();
        crate::drain();
        {
            let _outer = crate::span("trace.test.tree.outer");
            crate::record_counter("trace.test.tree.n", 3);
            let _inner = crate::span("trace.test.tree.inner");
        }
        let evs = crate::drain();
        let dump = tree_dump(&evs);
        let outer_at = dump.find("trace.test.tree.outer").expect("outer rendered");
        let inner_at = dump.find("  trace.test.tree.inner").expect("inner indented under outer");
        assert!(outer_at < inner_at);
        assert!(dump.contains("+ trace.test.tree.n = 3"));
        crate::disable();
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
