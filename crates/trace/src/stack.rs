//! Shared per-thread frame stacks for the sampling profiler.
//!
//! Every thread that opens a span while profiling is on (see
//! [`crate::enable_profiling`]) maintains a small fixed-depth stack of
//! interned frame names in shared memory. A sampler thread (`bs-prof`)
//! walks the registry at its tick rate and snapshots each stack
//! *without stopping the writer*: the stack is published through a
//! seqlock — the writer bumps a version counter to an odd value before
//! mutating and back to even after, and the reader retries whenever it
//! observes an odd or changed version. All of it is safe code (atomics
//! only); a torn read costs a retry, never undefined behaviour.
//!
//! Frame names are `&'static str`s interned to small `u32` ids so a
//! frame push is two relaxed atomic stores. [`resolve`] maps ids back
//! to names at export time.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Maximum tracked stack depth per thread. Deeper frames are counted
/// in [`StackSnapshot::truncated`] but not recorded — pipeline stacks
/// are 3–6 frames deep in practice.
pub const MAX_DEPTH: usize = 32;

/// One thread's shared frame stack. Writers are the owning thread
/// only; readers are the sampler.
struct ThreadStack {
    /// Seqlock version: odd while the owning thread is mid-update.
    version: AtomicU64,
    /// Current depth (may exceed `MAX_DEPTH`; frames beyond it are
    /// counted but not stored).
    depth: AtomicU32,
    /// Interned frame name ids, bottom (outermost) first.
    frames: [AtomicU32; MAX_DEPTH],
    /// Human label for the owning thread ("main", "par-worker-3", …).
    label: Mutex<String>,
}

impl ThreadStack {
    fn new(label: String) -> Self {
        ThreadStack {
            version: AtomicU64::new(0),
            depth: AtomicU32::new(0),
            frames: [const { AtomicU32::new(0) }; MAX_DEPTH],
            label: Mutex::new(label),
        }
    }

    fn begin_write(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }

    fn end_write(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }
}

/// What the sampler saw on one thread at one tick.
pub struct StackSnapshot {
    /// Thread label ("main", "par-worker-N", …).
    pub label: String,
    /// Interned frame ids, outermost first. Empty = thread was idle
    /// (alive, no active span).
    pub frames: Vec<u32>,
    /// Frames that existed beyond [`MAX_DEPTH`] and were not recorded.
    pub truncated: u32,
}

fn registry() -> &'static Mutex<Vec<Weak<ThreadStack>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<ThreadStack>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<ThreadStack>> = const { std::cell::OnceCell::new() };
    /// Tiny per-thread intern cache keyed on the &'static str's address
    /// — the same literal resolves without touching the global lock.
    static NAME_CACHE: std::cell::RefCell<Vec<(usize, u32)>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Intern a static frame name to its id (stable for the process
/// lifetime). Linear search is fine: stage names number in the dozens.
pub fn intern(name: &'static str) -> u32 {
    let addr = name.as_ptr() as usize;
    let cached = NAME_CACHE
        .try_with(|c| c.borrow().iter().find(|(a, _)| *a == addr).map(|(_, id)| *id))
        .ok()
        .flatten();
    if let Some(id) = cached {
        return id;
    }
    let mut table = names().lock().unwrap_or_else(|e| e.into_inner());
    let id = match table.iter().position(|n| *n == name) {
        Some(i) => i as u32,
        None => {
            table.push(name);
            (table.len() - 1) as u32
        }
    };
    drop(table);
    let _ = NAME_CACHE.try_with(|c| c.borrow_mut().push((addr, id)));
    id
}

/// Resolve an interned id back to its name (export-time only).
pub fn resolve(id: u32) -> &'static str {
    names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(id as usize)
        .copied()
        .unwrap_or("(unknown)")
}

fn with_local<R>(f: impl FnOnce(&ThreadStack) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let stack = cell.get_or_init(|| {
                let name = std::thread::current().name().unwrap_or("thread").to_string();
                let arc = Arc::new(ThreadStack::new(name));
                registry().lock().unwrap_or_else(|e| e.into_inner()).push(Arc::downgrade(&arc));
                arc
            });
            f(stack)
        })
        .ok()
}

/// Set the current thread's label as seen in profiler output.
pub fn set_label(label: &str) {
    with_local(|s| {
        *s.label.lock().unwrap_or_else(|e| e.into_inner()) = label.to_string();
    });
}

/// Push one frame onto the current thread's stack. Returns `false` if
/// the thread-local was unavailable (TLS teardown) — the caller must
/// then skip the matching [`pop_frame`].
pub fn push_frame(name: &'static str) -> bool {
    let id = intern(name);
    with_local(|s| {
        let depth = s.depth.load(Ordering::Relaxed) as usize;
        s.begin_write();
        if depth < MAX_DEPTH {
            s.frames[depth].store(id, Ordering::Relaxed);
        }
        s.depth.store(depth as u32 + 1, Ordering::Relaxed);
        s.end_write();
    })
    .is_some()
}

/// Pop the top frame pushed by [`push_frame`].
pub fn pop_frame() {
    with_local(|s| {
        let depth = s.depth.load(Ordering::Relaxed);
        s.begin_write();
        s.depth.store(depth.saturating_sub(1), Ordering::Relaxed);
        s.end_write();
    });
}

/// Snapshot the current thread's own frames (no seqlock needed — we
/// are the writer). Used to carry a base stack into pool workers.
pub fn snapshot_current() -> Vec<u32> {
    with_local(|s| {
        let depth = (s.depth.load(Ordering::Relaxed) as usize).min(MAX_DEPTH);
        (0..depth).map(|i| s.frames[i].load(Ordering::Relaxed)).collect()
    })
    .unwrap_or_default()
}

/// Guard returned by [`enter_base`]; pops the pushed base frames on
/// drop.
pub struct BaseGuard {
    pushed: u32,
}

impl Drop for BaseGuard {
    fn drop(&mut self) {
        for _ in 0..self.pushed {
            pop_frame();
        }
    }
}

/// Install `frames` (from [`snapshot_current`] on another thread) as
/// the base of this thread's stack and label the thread, so worker
/// samples nest under the stage that spawned them.
pub fn enter_base(frames: &[u32], label: &str) -> BaseGuard {
    set_label(label);
    let mut pushed = 0u32;
    for &id in frames {
        let ok = with_local(|s| {
            let depth = s.depth.load(Ordering::Relaxed) as usize;
            s.begin_write();
            if depth < MAX_DEPTH {
                s.frames[depth].store(id, Ordering::Relaxed);
            }
            s.depth.store(depth as u32 + 1, Ordering::Relaxed);
            s.end_write();
        })
        .is_some();
        if ok {
            pushed += 1;
        }
    }
    BaseGuard { pushed }
}

/// Walk every live thread stack and snapshot it. Returns the
/// snapshots and the number of torn reads that had to retry past the
/// retry budget (counted, skipped — never blocking).
pub fn sample_all() -> (Vec<StackSnapshot>, u64) {
    let mut out = Vec::new();
    let mut torn = 0u64;
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.retain(|w| w.strong_count() > 0);
    for weak in reg.iter() {
        let Some(stack) = weak.upgrade() else { continue };
        match read_consistent(&stack) {
            Some(snap) => out.push(snap),
            None => torn += 1,
        }
    }
    (out, torn)
}

/// Seqlock read with a bounded retry budget.
fn read_consistent(stack: &ThreadStack) -> Option<StackSnapshot> {
    for _ in 0..8 {
        let v1 = stack.version.load(Ordering::Acquire);
        if !v1.is_multiple_of(2) {
            std::hint::spin_loop();
            continue;
        }
        let depth = stack.depth.load(Ordering::Relaxed) as usize;
        let stored = depth.min(MAX_DEPTH);
        let frames: Vec<u32> =
            (0..stored).map(|i| stack.frames[i].load(Ordering::Relaxed)).collect();
        let v2 = stack.version.load(Ordering::Acquire);
        if v1 == v2 {
            let label = stack.label.lock().unwrap_or_else(|e| e.into_inner()).clone();
            return Some(StackSnapshot {
                label,
                frames,
                truncated: depth.saturating_sub(MAX_DEPTH) as u32,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_resolvable() {
        let a = intern("stack.test.alpha");
        let b = intern("stack.test.beta");
        assert_ne!(a, b);
        assert_eq!(intern("stack.test.alpha"), a);
        assert_eq!(resolve(a), "stack.test.alpha");
        assert_eq!(resolve(b), "stack.test.beta");
    }

    #[test]
    fn push_pop_round_trips_through_sample_all() {
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = done.clone();
        let t = std::thread::Builder::new()
            .name("stack-test-worker".into())
            .spawn(move || {
                set_label("stack-test-worker");
                assert!(push_frame("stack.test.outer"));
                assert!(push_frame("stack.test.inner"));
                while !done2.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                pop_frame();
                pop_frame();
            })
            .expect("spawn");
        // Wait until the worker's two frames are visible.
        let mut seen = None;
        for _ in 0..500 {
            let (snaps, _) = sample_all();
            if let Some(s) =
                snaps.into_iter().find(|s| s.label == "stack-test-worker" && s.frames.len() == 2)
            {
                seen = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        done.store(true, Ordering::Relaxed);
        t.join().expect("worker");
        let snap = seen.expect("sampler saw the worker stack");
        assert_eq!(resolve(snap.frames[0]), "stack.test.outer");
        assert_eq!(resolve(snap.frames[1]), "stack.test.inner");
        assert_eq!(snap.truncated, 0);
    }

    #[test]
    fn base_frames_nest_workers_under_parent() {
        let t = std::thread::Builder::new()
            .name("stack-base-parent".into())
            .spawn(|| {
                assert!(push_frame("stack.test.parent"));
                let base = snapshot_current();
                pop_frame();
                base
            })
            .expect("spawn");
        let base = t.join().expect("parent");
        assert_eq!(base.len(), 1);

        let frames = std::thread::spawn(move || {
            let _g = enter_base(&base, "stack-base-worker");
            push_frame("stack.test.child");
            let mine = snapshot_current();
            pop_frame();
            mine
        })
        .join()
        .expect("worker");
        assert_eq!(frames.len(), 2);
        assert_eq!(resolve(frames[0]), "stack.test.parent");
        assert_eq!(resolve(frames[1]), "stack.test.child");
    }

    #[test]
    fn deep_stacks_truncate_but_count() {
        std::thread::Builder::new()
            .name("stack-deep".into())
            .spawn(|| {
                for _ in 0..(MAX_DEPTH + 3) {
                    push_frame("stack.test.deep");
                }
                let (snaps, _) = sample_all();
                let me = snaps.iter().find(|s| s.label == "stack-deep").expect("own stack");
                assert_eq!(me.frames.len(), MAX_DEPTH);
                assert_eq!(me.truncated, 3);
                for _ in 0..(MAX_DEPTH + 3) {
                    pop_frame();
                }
                assert!(snapshot_current().is_empty());
            })
            .expect("spawn")
            .join()
            .expect("deep");
    }
}
