//! A minimal, dependency-free JSON parser.
//!
//! The workspace cannot pull `serde_json`, but the trace tooling needs
//! to *validate* and *inspect* Chrome trace exports (tests, the
//! `backscatter trace` subcommand, the CI smoke test). This parser
//! accepts standard JSON — objects, arrays, strings with escapes
//! (including `\uXXXX` and surrogate pairs), numbers, booleans, null —
//! and rejects trailing garbage. It is a reader, not a writer; the
//! exporters build their output directly.

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as `(key, value)` pairs in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's `(key, value)` pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up `key` in an object (first match, source order).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parse a complete JSON document. Errors carry a byte offset and a
/// short description; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("unpaired low surrogate"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a valid &str, so
                    // re-decode from the byte position.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"traceEvents":[{"ph":"B","ts":1.5,"ok":true,"none":null},[1,-2,3e2]],"unit":"ms"}"#,
        )
        .expect("parses");
        let events = v.get("traceEvents").and_then(Value::as_array).expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("B"));
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(events[0].get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(events[0].get("none"), Some(&Value::Null));
        assert_eq!(events[1].as_array().expect("inner")[2].as_f64(), Some(300.0));
        assert_eq!(v.get("unit").and_then(Value::as_str), Some("ms"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndA😀é""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1F600}é"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\":}", "\"unterminated", "123abc", "{} trailing", ""] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_roundtrips_through_parser() {
        let nasty = "quote \" slash \\ newline \n tab \t ctrl \u{1} unicode \u{1F600}";
        let doc = format!("\"{}\"", crate::export::json_escape(nasty));
        assert_eq!(parse(&doc).expect("parses").as_str(), Some(nasty));
    }
}
