//! `bs-telemetry` — observability for the dns-backscatter pipeline.
//!
//! The paper's system is itself a sensor; an operational deployment of
//! it lives or dies on being able to watch drop rates, eviction
//! pressure, and per-stage latency. This crate provides that
//! introspection with **zero external dependencies**:
//!
//! * a global [`Registry`] of named [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s (p50/p90/p99/max), built on
//!   `std::sync::atomic` plus a read-mostly `RwLock` name table;
//! * a [`span`] timer guard that records wall-clock nanoseconds per
//!   pipeline stage into a histogram named after the stage;
//! * a leveled structured logger ([`error!`]/[`warn!`]/[`info!`]/
//!   [`debug!`], `key=value` pairs, controlled by the `BS_LOG`
//!   environment variable);
//! * exporters: a JSON snapshot ([`snapshot_json`]) and a Prometheus
//!   text-format dump ([`snapshot_prometheus`]).
//!
//! One instrumentation API, two sinks: when causal tracing is enabled
//! (`bs_trace::enable`), every [`span`] also opens a hierarchical
//! trace span, [`counter_add`] forwards samples to the flight
//! recorder, and warn-or-worse log records become trace events — so
//! the same call sites feed both aggregate metrics and the per-window
//! causal trace.
//!
//! # Cost model
//!
//! Telemetry is compiled in everywhere but **near-free when no sink is
//! attached**: every recording entry point first checks a single
//! relaxed atomic ([`is_enabled`]) and returns immediately when the
//! registry is disabled. Attaching a sink (the CLI's `--metrics` flag,
//! the bench harness, a test) calls [`enable`] first.
//!
//! # Naming convention
//!
//! Metric and span names are dotted lowercase paths rooted at the crate
//! that records them: `crate.stage` (for example `sensor.extract`,
//! `core.retrain`, `ml.train`). Span histograms record **nanoseconds**.
//!
//! ```
//! bs_telemetry::enable();
//! {
//!     let _guard = bs_telemetry::span("doc.stage");
//!     bs_telemetry::counter_add("doc.items", 3);
//! }
//! let snap = bs_telemetry::snapshot();
//! assert_eq!(snap.counters["doc.items"], 3);
//! assert_eq!(snap.histograms["doc.stage"].count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod logger;
mod metrics;
mod registry;
mod span;

pub use logger::{
    log_emit, log_enabled, set_log_format, set_max_log_level, Level, LogFormat, LogSite,
    SITE_BURST, SITE_REFILL_PER_SEC,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Registry, Snapshot};
pub use span::Span;

/// The process-global registry every free function records into.
pub fn registry() -> &'static Registry {
    registry::global()
}

/// Attach a sink: start recording metrics into the global registry.
pub fn enable() {
    registry().enable();
}

/// Detach the sink: recording entry points return immediately again.
pub fn disable() {
    registry().disable();
}

/// Whether a sink is attached (one relaxed atomic load).
pub fn is_enabled() -> bool {
    registry().is_enabled()
}

/// Zero every metric in the global registry in place (the enabled flag
/// and log level are untouched). Names stay registered, so metric
/// handles cached before the reset keep recording into instances the
/// next snapshot still sees. Used between CLI runs and in tests.
pub fn reset() {
    registry().reset();
}

/// Add to a named counter. Also forwards the sample to the `bs-trace`
/// flight recorder (attributed to the current trace span) when tracing
/// is enabled. No-op while both sinks are disabled.
pub fn counter_add(name: &str, n: u64) {
    if n == 0 {
        return;
    }
    bs_trace::record_counter(name, n);
    let r = registry();
    if r.is_enabled() {
        r.counter(name).add(n);
    }
}

/// Increment a named counter by one. No-op while disabled.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Set a named gauge. No-op while disabled.
pub fn gauge_set(name: &str, value: i64) {
    let r = registry();
    if r.is_enabled() {
        r.gauge(name).set(value);
    }
}

/// Add (possibly negative) to a named gauge. No-op while disabled.
pub fn gauge_add(name: &str, delta: i64) {
    let r = registry();
    if r.is_enabled() {
        r.gauge(name).add(delta);
    }
}

/// Record one value into a named histogram. No-op while disabled.
pub fn observe(name: &str, value: u64) {
    let r = registry();
    if r.is_enabled() {
        r.histogram(name).record(value);
    }
}

/// Start a span timer for a pipeline stage. When the returned guard
/// drops, the elapsed wall-clock **nanoseconds** are recorded into the
/// histogram named `name`. While disabled this never reads the clock.
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// A point-in-time copy of every metric in the global registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// The global registry as a JSON document (see [`Snapshot::to_json`]).
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

/// The global registry in Prometheus text exposition format.
pub fn snapshot_prometheus() -> String {
    snapshot().to_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        assert!(!r.is_enabled());
        // Direct handle access works regardless; the free functions are
        // the gated path, modeled here against a local registry.
        if r.is_enabled() {
            r.counter("x").inc();
        }
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn global_free_functions_round_trip() {
        enable();
        counter_add("lib.test.counter", 2);
        counter_inc("lib.test.counter");
        gauge_set("lib.test.gauge", -7);
        gauge_add("lib.test.gauge", 3);
        observe("lib.test.hist", 1000);
        {
            let _g = span("lib.test.span");
        }
        let snap = snapshot();
        assert_eq!(snap.counters["lib.test.counter"], 3);
        assert_eq!(snap.gauges["lib.test.gauge"], -4);
        assert_eq!(snap.histograms["lib.test.hist"].count, 1);
        assert_eq!(snap.histograms["lib.test.span"].count, 1);
    }
}
