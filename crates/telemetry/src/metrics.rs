//! The three metric kinds: counters, gauges, and log-bucketed
//! histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter in place. Handles already held keep recording
    /// into this same instance (see `Registry::reset`).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the gauge in place. Handles already held keep recording
    /// into this same instance (see `Registry::reset`).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Log-linear bucketing: values below `2^SUB_BITS` get exact buckets;
/// above that, each power-of-two octave is split into `2^SUB_BITS`
/// sub-buckets, bounding the relative quantile error at
/// `2^-SUB_BITS` (12.5%). This is the same scheme HDR-style histograms
/// use, sized here at 496 buckets (≈ 4 KiB) covering all of `u64`.
const SUB_BITS: u32 = 3;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * (SUB_BUCKETS as usize) + SUB_BUCKETS as usize;

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let sub = (v >> (top - SUB_BITS)) & (SUB_BUCKETS - 1);
        ((top - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
    }
}

/// Smallest value mapping into bucket `i` (inverse of [`bucket_index`]).
fn bucket_floor(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        i
    } else {
        let top = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = i & (SUB_BUCKETS - 1);
        (1u64 << top) | (sub << (top - SUB_BITS))
    }
}

/// Largest value mapping into bucket `i`.
fn bucket_ceil(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        bucket_floor(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A fixed-memory log-bucketed histogram of `u64` values. Span timers
/// record nanoseconds; any other unit works as long as the name says so.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside
    /// the log bucket holding the rank-`ceil(q·count)` value: the
    /// bucket's occupants are assumed evenly spread over
    /// `[bucket_floor, bucket_ceil]`, so the estimate moves smoothly
    /// from the lower edge to the upper edge as the rank crosses the
    /// bucket (instead of jumping to the upper edge the moment the
    /// bucket is entered). The result always stays inside the bucket
    /// and never exceeds the recorded maximum, so the worst-case
    /// relative error keeps the bucket-width bound (≤ 12.5%); on
    /// distributions that actually fill their buckets the estimate is
    /// near-exact. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            cum += n;
            if cum >= rank {
                let floor = bucket_floor(i);
                // The global max tightens the top bucket's upper edge:
                // no occupant of this bucket can exceed it. (The max
                // register is updated after the bucket in `record`, so
                // under a concurrent record it may still lag below this
                // bucket — keep the edge at least at the floor.)
                let ceil = bucket_ceil(i).min(self.max()).max(floor);
                let rank_in_bucket = rank - (cum - n); // 1 ..= n
                let width = ceil.saturating_sub(floor) as f64;
                let est = floor as f64 + width * rank_in_bucket as f64 / n as f64;
                return (est.round() as u64).clamp(floor, ceil);
            }
        }
        self.max()
    }

    /// Zero the histogram in place. Not atomic with respect to
    /// concurrent `record` calls (a racing record may partially
    /// survive), which is fine for its use between runs. Handles
    /// already held keep recording into this same instance (see
    /// `Registry::reset`).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time summary (count, sum, max, p50/p90/p99).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A frozen summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_semantics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_round_trip_brackets_every_value() {
        let probes: Vec<u64> = (0..2000)
            .chain((0..63).map(|s| 1u64 << s))
            .chain((0..63).map(|s| (1u64 << s) + 1))
            .chain((1..63).map(|s| (1u64 << s) - 1))
            .chain([u64::MAX, u64::MAX - 1, 123_456_789, 987_654_321_012])
            .collect();
        for v in probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_floor(i) <= v, "floor({i})={} > {v}", bucket_floor(i));
            assert!(v <= bucket_ceil(i), "ceil({i})={} < {v}", bucket_ceil(i));
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            prev = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // 12.5% relative error bound, one-sided (upper bucket bound).
        assert!((450..=570).contains(&s.p50), "p50={}", s.p50);
        assert!((850..=1000).contains(&s.p90), "p90={}", s.p90);
        assert!((950..=1000).contains(&s.p99), "p99={}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn interpolated_quantiles_pin_known_distributions() {
        // Uniform 1..=1000: every bucket it touches is fully occupied,
        // so interpolation recovers the true order statistics almost
        // exactly — far inside the 12.5% bucket-width bound.
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!((495..=505).contains(&h.quantile(0.50)), "p50={}", h.quantile(0.50));
        assert!((895..=905).contains(&h.quantile(0.90)), "p90={}", h.quantile(0.90));
        assert!((985..=995).contains(&h.quantile(0.99)), "p99={}", h.quantile(0.99));
        assert_eq!(h.quantile(1.0), 1000);

        // Constant distribution: estimates stay inside the constant's
        // bucket, and the top quantile hits the constant exactly (the
        // recorded max tightens the bucket's upper edge).
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(777);
        }
        let (floor, ceil) = (768, 777); // 777's bucket, max-tightened
        for q in [0.5, 0.9, 0.99] {
            let v = h.quantile(q);
            assert!((floor..=ceil).contains(&v), "q={q}: {v} outside bucket");
        }
        assert_eq!(h.quantile(1.0), 777);

        // Bimodal 10%/90%: p50 and p90 sit in the heavy mode near
        // 1000, p0.05 in the light mode near 10.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        for _ in 0..900 {
            h.record(1000);
        }
        assert_eq!(h.quantile(0.05), 10, "light mode is exact (sub-octave bucket)");
        let p50 = h.quantile(0.50);
        assert!((960..=1000).contains(&p50), "p50 lands in the heavy mode's bucket: {p50}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_interpolation_is_monotone_in_q() {
        let h = Histogram::new();
        // A skewed distribution spanning several octaves.
        for v in 1..=200u64 {
            h.record(v * v);
        }
        let mut prev = 0u64;
        for step in 0..=100u64 {
            let q = step as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile regressed at q={q}: {v} < {prev}");
            prev = v;
        }
        assert_eq!(prev, 200 * 200);
    }

    #[test]
    fn quantile_clamps_to_max() {
        let h = Histogram::new();
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50, 1_000_000);
        assert_eq!(s.p99, 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot { count: 0, sum: 0, max: 0, p50: 0, p90: 0, p99: 0 });
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.max(), 7 * 10_000 + 9_999);
    }
}
