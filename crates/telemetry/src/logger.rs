//! The leveled structured logger behind [`error!`](crate::error!),
//! [`warn!`](crate::warn!), [`info!`](crate::info!), and
//! [`debug!`](crate::debug!).
//!
//! The maximum level comes from the `BS_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`; default `info`), read once
//! on first use; [`set_max_log_level`] overrides it programmatically.
//! Lines go to stderr as `[LEVEL target] message key=value …`, or —
//! with `BS_LOG_FORMAT=json` (or [`set_log_format`]) — as one JSON
//! object per line (`ts_ms`, `level`, `target`, `message`, `kvs`) so
//! logs are machine-ingestable alongside the trace export.
//!
//! Warn-or-worse records are additionally forwarded to the `bs-trace`
//! flight recorder (when tracing is enabled), attributed to the
//! current trace span.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severities, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The pipeline cannot proceed as asked.
    Error = 1,
    /// Something is degraded but the pipeline continues.
    Warn = 2,
    /// Operator-facing progress (the default).
    Info = 3,
    /// Per-stage detail for debugging.
    Debug = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn counter_name(self) -> &'static str {
        match self {
            Level::Error => "log.error",
            Level::Warn => "log.warn",
            Level::Info => "log.info",
            Level::Debug => "log.debug",
        }
    }
}

const LEVEL_OFF: u8 = 0;
const LEVEL_UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> u8 {
    let parsed = match std::env::var("BS_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => LEVEL_OFF,
            "error" => Level::Error as u8,
            "warn" | "warning" => Level::Warn as u8,
            "info" => Level::Info as u8,
            "debug" | "trace" => Level::Debug as u8,
            _ => Level::Info as u8,
        },
        Err(_) => Level::Info as u8,
    };
    MAX_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Override the maximum level (`None` silences the logger). Takes
/// precedence over `BS_LOG` from the moment it is called.
pub fn set_max_log_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(LEVEL_OFF), Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
pub fn log_enabled(level: Level) -> bool {
    let mut max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == LEVEL_UNSET {
        max = level_from_env();
    }
    level as u8 <= max
}

/// Log output encodings (see [`set_log_format`] / `BS_LOG_FORMAT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LogFormat {
    /// `[LEVEL target] message key=value …` (the default).
    Text = 0,
    /// One JSON object per line:
    /// `{"ts_ms":…,"level":"…","target":"…","message":"…","kvs":{…}}`.
    Json = 1,
}

const FORMAT_UNSET: u8 = u8::MAX;

static FORMAT: AtomicU8 = AtomicU8::new(FORMAT_UNSET);

fn format_from_env() -> u8 {
    let parsed = match std::env::var("BS_LOG_FORMAT") {
        Ok(v) if v.trim().eq_ignore_ascii_case("json") => LogFormat::Json as u8,
        _ => LogFormat::Text as u8,
    };
    FORMAT.store(parsed, Ordering::Relaxed);
    parsed
}

/// Override the output encoding. Takes precedence over
/// `BS_LOG_FORMAT` from the moment it is called.
pub fn set_log_format(format: LogFormat) {
    FORMAT.store(format as u8, Ordering::Relaxed);
}

fn current_format() -> LogFormat {
    let mut f = FORMAT.load(Ordering::Relaxed);
    if f == FORMAT_UNSET {
        f = format_from_env();
    }
    if f == LogFormat::Json as u8 {
        LogFormat::Json
    } else {
        LogFormat::Text
    }
}

/// Render one record in the given format (separated from the emission
/// path so both encodings are unit-testable).
fn render(
    format: LogFormat,
    ts_ms: u128,
    level: Level,
    target: &str,
    message: &str,
    kvs: &[(&str, String)],
) -> String {
    match format {
        LogFormat::Text => {
            let mut line = format!("[{} {}] {}", level.as_str(), target, message);
            for (k, v) in kvs {
                line.push(' ');
                line.push_str(k);
                line.push('=');
                line.push_str(v);
            }
            line
        }
        LogFormat::Json => {
            let mut line = format!(
                "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":\"{}\",\"message\":\"{}\",\"kvs\":{{",
                level.as_str(),
                crate::export::json_escape(target),
                crate::export::json_escape(message)
            );
            for (i, (k, v)) in kvs.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(
                    line,
                    "\"{}\":\"{}\"",
                    crate::export::json_escape(k),
                    crate::export::json_escape(v)
                );
            }
            line.push_str("}}");
            line
        }
    }
}

/// Emit one structured line. Callers go through the level macros, which
/// check [`log_enabled`] first.
pub fn log_emit(level: Level, target: &str, message: &str, kvs: &[(&str, String)]) {
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    eprintln!("{}", render(current_format(), ts_ms, level, target, message, kvs));
    if level <= Level::Warn && bs_trace::is_enabled() {
        // The flight recorder keeps warn-or-worse records with their
        // key=value pairs rendered into the message.
        let traced = render(LogFormat::Text, ts_ms, level, target, message, kvs);
        let stripped = traced.split_once("] ").map(|(_, m)| m).unwrap_or(&traced);
        bs_trace::record_log(level.as_str(), target, stripped);
    }
    crate::counter_add(level.counter_name(), 1);
}

/// Log at an explicit [`Level`]: `log_at!(level, target, fmt, args…;
/// key = value, …)`. The level macros are the usual entry points.
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, $target:expr, $fmt:literal $(, $arg:expr)* $(; $($k:ident = $v:expr),+ $(,)?)?) => {{
        let lvl = $lvl;
        if $crate::log_enabled(lvl) {
            $crate::log_emit(
                lvl,
                $target,
                &::std::format!($fmt $(, $arg)*),
                &[$($((::core::stringify!($k), ::std::format!("{}", $v))),+)?],
            );
        }
    }};
}

/// Log an error: `error!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Error, $($t)+) };
}

/// Log a warning: `warn!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! warn {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Warn, $($t)+) };
}

/// Log progress: `info!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! info {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Info, $($t)+) };
}

/// Log debug detail: `debug!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Debug, $($t)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_filters_and_macros_expand() {
        set_max_log_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));

        // Every macro arity compiles and respects the filter.
        let n = 3;
        crate::error!("test", "plain");
        crate::warn!("test", "formatted {} and {n}", 7);
        crate::info!("test", "suppressed");
        crate::debug!("test", "suppressed {}", 1; k = 2);
        crate::error!("test", "with kvs"; records = n, window = "w0");
        crate::log_at!(Level::Warn, "test", "explicit level"; x = 1.5,);

        set_max_log_level(Some(Level::Debug));
        assert!(log_enabled(Level::Debug));
        set_max_log_level(None);
        assert!(!log_enabled(Level::Error));
        // Restore the default for other tests in this process.
        set_max_log_level(Some(Level::Info));
    }

    #[test]
    fn text_render_is_bracketed_with_kvs() {
        let line = render(
            LogFormat::Text,
            123,
            Level::Warn,
            "sensor",
            "window evicted",
            &[("records", "42".to_string()), ("window", "w3".to_string())],
        );
        assert_eq!(line, "[WARN sensor] window evicted records=42 window=w3");
    }

    #[test]
    fn json_render_is_one_parseable_object_per_line() {
        let line = render(
            LogFormat::Json,
            1700000000123,
            Level::Error,
            "core.pipeline",
            "bad \"input\"\nline",
            &[("path", "a\\b".to_string())],
        );
        assert!(!line.contains('\n'), "one object per line — escapes keep it single-line");
        let v = bs_trace::json::parse(&line).expect("json log line parses");
        assert_eq!(v.get("ts_ms").and_then(|t| t.as_f64()), Some(1700000000123.0));
        assert_eq!(v.get("level").and_then(|l| l.as_str()), Some("ERROR"));
        assert_eq!(v.get("target").and_then(|t| t.as_str()), Some("core.pipeline"));
        assert_eq!(v.get("message").and_then(|m| m.as_str()), Some("bad \"input\"\nline"));
        assert_eq!(v.get("kvs").and_then(|k| k.get("path")).and_then(|p| p.as_str()), Some("a\\b"));
    }

    #[test]
    fn json_render_empty_kvs_is_valid() {
        let line = render(LogFormat::Json, 0, Level::Info, "t", "m", &[]);
        let v = bs_trace::json::parse(&line).expect("parses");
        assert_eq!(v.get("kvs").and_then(|k| k.as_object()).map(<[_]>::len), Some(0));
    }

    #[test]
    fn set_log_format_overrides_env() {
        set_log_format(LogFormat::Json);
        assert_eq!(current_format(), LogFormat::Json);
        set_log_format(LogFormat::Text);
        assert_eq!(current_format(), LogFormat::Text);
    }

    #[test]
    fn emitted_events_count_when_registry_enabled() {
        crate::enable();
        set_max_log_level(Some(Level::Info));
        let before = crate::registry().counter("log.info").get();
        crate::info!("test", "counted event");
        let after = crate::registry().counter("log.info").get();
        assert!(after > before);
    }
}
