//! The leveled structured logger behind [`error!`](crate::error!),
//! [`warn!`](crate::warn!), [`info!`](crate::info!), and
//! [`debug!`](crate::debug!).
//!
//! The maximum level comes from the `BS_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`; default `info`), read once
//! on first use; [`set_max_log_level`] overrides it programmatically.
//! Lines go to stderr as `[LEVEL target] message key=value …`.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severities, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The pipeline cannot proceed as asked.
    Error = 1,
    /// Something is degraded but the pipeline continues.
    Warn = 2,
    /// Operator-facing progress (the default).
    Info = 3,
    /// Per-stage detail for debugging.
    Debug = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn counter_name(self) -> &'static str {
        match self {
            Level::Error => "log.error",
            Level::Warn => "log.warn",
            Level::Info => "log.info",
            Level::Debug => "log.debug",
        }
    }
}

const LEVEL_OFF: u8 = 0;
const LEVEL_UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> u8 {
    let parsed = match std::env::var("BS_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => LEVEL_OFF,
            "error" => Level::Error as u8,
            "warn" | "warning" => Level::Warn as u8,
            "info" => Level::Info as u8,
            "debug" | "trace" => Level::Debug as u8,
            _ => Level::Info as u8,
        },
        Err(_) => Level::Info as u8,
    };
    MAX_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Override the maximum level (`None` silences the logger). Takes
/// precedence over `BS_LOG` from the moment it is called.
pub fn set_max_log_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(LEVEL_OFF), Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
pub fn log_enabled(level: Level) -> bool {
    let mut max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == LEVEL_UNSET {
        max = level_from_env();
    }
    level as u8 <= max
}

/// Emit one structured line. Callers go through the level macros, which
/// check [`log_enabled`] first.
pub fn log_emit(level: Level, target: &str, message: &str, kvs: &[(&str, String)]) {
    let mut line = format!("[{} {}] {}", level.as_str(), target, message);
    for (k, v) in kvs {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    eprintln!("{line}");
    crate::counter_add(level.counter_name(), 1);
}

/// Log at an explicit [`Level`]: `log_at!(level, target, fmt, args…;
/// key = value, …)`. The level macros are the usual entry points.
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, $target:expr, $fmt:literal $(, $arg:expr)* $(; $($k:ident = $v:expr),+ $(,)?)?) => {{
        let lvl = $lvl;
        if $crate::log_enabled(lvl) {
            $crate::log_emit(
                lvl,
                $target,
                &::std::format!($fmt $(, $arg)*),
                &[$($((::core::stringify!($k), ::std::format!("{}", $v))),+)?],
            );
        }
    }};
}

/// Log an error: `error!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Error, $($t)+) };
}

/// Log a warning: `warn!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! warn {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Warn, $($t)+) };
}

/// Log progress: `info!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! info {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Info, $($t)+) };
}

/// Log debug detail: `debug!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Debug, $($t)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_filters_and_macros_expand() {
        set_max_log_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));

        // Every macro arity compiles and respects the filter.
        let n = 3;
        crate::error!("test", "plain");
        crate::warn!("test", "formatted {} and {n}", 7);
        crate::info!("test", "suppressed");
        crate::debug!("test", "suppressed {}", 1; k = 2);
        crate::error!("test", "with kvs"; records = n, window = "w0");
        crate::log_at!(Level::Warn, "test", "explicit level"; x = 1.5,);

        set_max_log_level(Some(Level::Debug));
        assert!(log_enabled(Level::Debug));
        set_max_log_level(None);
        assert!(!log_enabled(Level::Error));
        // Restore the default for other tests in this process.
        set_max_log_level(Some(Level::Info));
    }

    #[test]
    fn emitted_events_count_when_registry_enabled() {
        crate::enable();
        set_max_log_level(Some(Level::Info));
        let before = crate::registry().counter("log.info").get();
        crate::info!("test", "counted event");
        let after = crate::registry().counter("log.info").get();
        assert!(after > before);
    }
}
