//! The leveled structured logger behind [`error!`](crate::error!),
//! [`warn!`](crate::warn!), [`info!`](crate::info!), and
//! [`debug!`](crate::debug!).
//!
//! The maximum level comes from the `BS_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`; default `info`), read once
//! on first use; [`set_max_log_level`] overrides it programmatically.
//! Lines go to stderr as `[LEVEL target] message key=value …`, or —
//! with `BS_LOG_FORMAT=json` (or [`set_log_format`]) — as one JSON
//! object per line (`ts_ms`, `level`, `target`, `message`, `kvs`) so
//! logs are machine-ingestable alongside the trace export.
//!
//! Warn-or-worse records are additionally forwarded to the `bs-trace`
//! flight recorder (when tracing is enabled), attributed to the
//! current trace span.
//!
//! # Rate limiting
//!
//! Hot-path call sites can flood stderr under storm scenarios (one
//! eviction warning per record is a self-inflicted denial of service).
//! Every `log_at!` expansion therefore owns a per-call-site token
//! bucket ([`LogSite`]): a site may burst [`SITE_BURST`] lines, then
//! refills at [`SITE_REFILL_PER_SEC`] lines per second. Suppressed
//! lines are counted globally (`telemetry.log.suppressed`) and per
//! target (`telemetry.log.suppressed.<target>`, so `stats` can name
//! the flooding site), and the next line that passes is preceded by a
//! one-line summary of how many were
//! dropped, so floods stay diagnosable without being replayed.
//! `Error` lines always pass, and direct [`log_emit`] calls are never
//! limited.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severities, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The pipeline cannot proceed as asked.
    Error = 1,
    /// Something is degraded but the pipeline continues.
    Warn = 2,
    /// Operator-facing progress (the default).
    Info = 3,
    /// Per-stage detail for debugging.
    Debug = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn counter_name(self) -> &'static str {
        match self {
            Level::Error => "log.error",
            Level::Warn => "log.warn",
            Level::Info => "log.info",
            Level::Debug => "log.debug",
        }
    }
}

const LEVEL_OFF: u8 = 0;
const LEVEL_UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> u8 {
    let parsed = match std::env::var("BS_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => LEVEL_OFF,
            "error" => Level::Error as u8,
            "warn" | "warning" => Level::Warn as u8,
            "info" => Level::Info as u8,
            "debug" | "trace" => Level::Debug as u8,
            _ => Level::Info as u8,
        },
        Err(_) => Level::Info as u8,
    };
    MAX_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Override the maximum level (`None` silences the logger). Takes
/// precedence over `BS_LOG` from the moment it is called.
pub fn set_max_log_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(LEVEL_OFF), Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
pub fn log_enabled(level: Level) -> bool {
    let mut max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == LEVEL_UNSET {
        max = level_from_env();
    }
    level as u8 <= max
}

/// Log output encodings (see [`set_log_format`] / `BS_LOG_FORMAT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LogFormat {
    /// `[LEVEL target] message key=value …` (the default).
    Text = 0,
    /// One JSON object per line:
    /// `{"ts_ms":…,"level":"…","target":"…","message":"…","kvs":{…}}`.
    Json = 1,
}

const FORMAT_UNSET: u8 = u8::MAX;

static FORMAT: AtomicU8 = AtomicU8::new(FORMAT_UNSET);

fn format_from_env() -> u8 {
    let parsed = match std::env::var("BS_LOG_FORMAT") {
        Ok(v) if v.trim().eq_ignore_ascii_case("json") => LogFormat::Json as u8,
        _ => LogFormat::Text as u8,
    };
    FORMAT.store(parsed, Ordering::Relaxed);
    parsed
}

/// Override the output encoding. Takes precedence over
/// `BS_LOG_FORMAT` from the moment it is called.
pub fn set_log_format(format: LogFormat) {
    FORMAT.store(format as u8, Ordering::Relaxed);
}

fn current_format() -> LogFormat {
    let mut f = FORMAT.load(Ordering::Relaxed);
    if f == FORMAT_UNSET {
        f = format_from_env();
    }
    if f == LogFormat::Json as u8 {
        LogFormat::Json
    } else {
        LogFormat::Text
    }
}

/// Render one record in the given format (separated from the emission
/// path so both encodings are unit-testable).
fn render(
    format: LogFormat,
    ts_ms: u128,
    level: Level,
    target: &str,
    message: &str,
    kvs: &[(&str, String)],
) -> String {
    match format {
        LogFormat::Text => {
            let mut line = format!("[{} {}] {}", level.as_str(), target, message);
            for (k, v) in kvs {
                line.push(' ');
                line.push_str(k);
                line.push('=');
                line.push_str(v);
            }
            line
        }
        LogFormat::Json => {
            let mut line = format!(
                "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":\"{}\",\"message\":\"{}\",\"kvs\":{{",
                level.as_str(),
                crate::export::json_escape(target),
                crate::export::json_escape(message)
            );
            for (i, (k, v)) in kvs.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(
                    line,
                    "\"{}\":\"{}\"",
                    crate::export::json_escape(k),
                    crate::export::json_escape(v)
                );
            }
            line.push_str("}}");
            line
        }
    }
}

/// Emit one structured line. Callers go through the level macros, which
/// check [`log_enabled`] first.
pub fn log_emit(level: Level, target: &str, message: &str, kvs: &[(&str, String)]) {
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    eprintln!("{}", render(current_format(), ts_ms, level, target, message, kvs));
    if level <= Level::Warn && bs_trace::is_enabled() {
        // The flight recorder keeps warn-or-worse records with their
        // key=value pairs rendered into the message.
        let traced = render(LogFormat::Text, ts_ms, level, target, message, kvs);
        let stripped = traced.split_once("] ").map(|(_, m)| m).unwrap_or(&traced);
        bs_trace::record_log(level.as_str(), target, stripped);
    }
    crate::counter_add(level.counter_name(), 1);
}

/// Lines a call site may emit back-to-back before the limiter engages.
pub const SITE_BURST: u64 = 32;
/// Steady-state lines per second a call site refills at.
pub const SITE_REFILL_PER_SEC: u64 = 16;

/// Milli-token scale: refill math stays in integers with sub-line
/// resolution (one line costs 1000 milli-tokens).
const MILLI: u64 = 1_000;
const BURST_MILLI: u64 = SITE_BURST * MILLI;
const REFILL_MILLI_PER_SEC: u64 = SITE_REFILL_PER_SEC * MILLI;

/// Nanoseconds since the first call in this process — a monotonic
/// clock that fits an atomic, unlike `Instant` itself.
fn monotonic_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The per-call-site token bucket behind [`log_at!`]. One static
/// instance is generated inside every macro expansion, so each textual
/// call site is limited independently — a flooding loop cannot starve
/// unrelated log lines elsewhere.
///
/// All state is relaxed atomics: a racing pair of threads may briefly
/// over- or under-count by a line, which is an acceptable price for
/// keeping the limiter lock-free on the logging hot path.
#[derive(Debug)]
pub struct LogSite {
    /// Milli-tokens available (starts at the full burst).
    tokens_milli: AtomicU64,
    /// `monotonic_ns` of the last refill credit.
    last_refill_ns: AtomicU64,
    /// Lines suppressed since the last admitted line.
    suppressed: AtomicU64,
}

impl LogSite {
    /// A fresh bucket holding a full burst. `const` so `log_at!` can
    /// put one in a `static`.
    pub const fn new() -> Self {
        LogSite {
            tokens_milli: AtomicU64::new(BURST_MILLI),
            last_refill_ns: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Decide whether this site may emit a line right now. On
    /// admission returns `Some(n)` where `n` is the number of lines
    /// suppressed at this site since the previous admission (so the
    /// caller can surface the gap); on suppression returns `None`,
    /// bumps the site's tally, and advances both the global
    /// `telemetry.log.suppressed` counter and the per-site
    /// `telemetry.log.suppressed.<target>` counter. `Error` lines
    /// always pass.
    pub fn admit(&self, level: Level, target: &str) -> Option<u64> {
        if level == Level::Error {
            return Some(self.suppressed.swap(0, Ordering::Relaxed));
        }
        let now = monotonic_ns();
        let last = self.last_refill_ns.load(Ordering::Relaxed);
        let refill = (now.saturating_sub(last) as u128 * REFILL_MILLI_PER_SEC as u128
            / 1_000_000_000) as u64;
        // Claim the elapsed window only when it is worth at least one
        // milli-token — claiming shorter windows would discard the
        // accumulated fraction on every tight-loop iteration and the
        // bucket would never refill under sustained load.
        if refill > 0
            && self
                .last_refill_ns
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let _ = self.tokens_milli.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some((t + refill).min(BURST_MILLI))
            });
        }
        let took = self.tokens_milli.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
            if t >= MILLI {
                Some(t - MILLI)
            } else {
                None
            }
        });
        match took {
            Ok(_) => Some(self.suppressed.swap(0, Ordering::Relaxed)),
            Err(_) => {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                crate::counter_add("telemetry.log.suppressed", 1);
                // Already on the slow (suppressed) path, so the
                // per-site name allocation is acceptable.
                crate::counter_add(&format!("telemetry.log.suppressed.{target}"), 1);
                None
            }
        }
    }
}

impl Default for LogSite {
    fn default() -> Self {
        LogSite::new()
    }
}

/// Log at an explicit [`Level`]: `log_at!(level, target, fmt, args…;
/// key = value, …)`. The level macros are the usual entry points.
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, $target:expr, $fmt:literal $(, $arg:expr)* $(; $($k:ident = $v:expr),+ $(,)?)?) => {{
        let lvl = $lvl;
        if $crate::log_enabled(lvl) {
            static __BS_LOG_SITE: $crate::LogSite = $crate::LogSite::new();
            if let ::core::option::Option::Some(suppressed) = __BS_LOG_SITE.admit(lvl, $target) {
                if suppressed > 0 {
                    $crate::log_emit(
                        lvl,
                        $target,
                        &::std::format!(
                            "(rate limiter: {suppressed} earlier lines from this call site suppressed)"
                        ),
                        &[],
                    );
                }
                $crate::log_emit(
                    lvl,
                    $target,
                    &::std::format!($fmt $(, $arg)*),
                    &[$($((::core::stringify!($k), ::std::format!("{}", $v))),+)?],
                );
            }
        }
    }};
}

/// Log an error: `error!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Error, $($t)+) };
}

/// Log a warning: `warn!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! warn {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Warn, $($t)+) };
}

/// Log progress: `info!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! info {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Info, $($t)+) };
}

/// Log debug detail: `debug!("target", "fmt {}", arg; key = value)`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)+) => { $crate::log_at!($crate::Level::Debug, $($t)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_filters_and_macros_expand() {
        set_max_log_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));

        // Every macro arity compiles and respects the filter.
        let n = 3;
        crate::error!("test", "plain");
        crate::warn!("test", "formatted {} and {n}", 7);
        crate::info!("test", "suppressed");
        crate::debug!("test", "suppressed {}", 1; k = 2);
        crate::error!("test", "with kvs"; records = n, window = "w0");
        crate::log_at!(Level::Warn, "test", "explicit level"; x = 1.5,);

        set_max_log_level(Some(Level::Debug));
        assert!(log_enabled(Level::Debug));
        set_max_log_level(None);
        assert!(!log_enabled(Level::Error));
        // Restore the default for other tests in this process.
        set_max_log_level(Some(Level::Info));
    }

    #[test]
    fn text_render_is_bracketed_with_kvs() {
        let line = render(
            LogFormat::Text,
            123,
            Level::Warn,
            "sensor",
            "window evicted",
            &[("records", "42".to_string()), ("window", "w3".to_string())],
        );
        assert_eq!(line, "[WARN sensor] window evicted records=42 window=w3");
    }

    #[test]
    fn json_render_is_one_parseable_object_per_line() {
        let line = render(
            LogFormat::Json,
            1700000000123,
            Level::Error,
            "core.pipeline",
            "bad \"input\"\nline",
            &[("path", "a\\b".to_string())],
        );
        assert!(!line.contains('\n'), "one object per line — escapes keep it single-line");
        let v = bs_trace::json::parse(&line).expect("json log line parses");
        assert_eq!(v.get("ts_ms").and_then(|t| t.as_f64()), Some(1700000000123.0));
        assert_eq!(v.get("level").and_then(|l| l.as_str()), Some("ERROR"));
        assert_eq!(v.get("target").and_then(|t| t.as_str()), Some("core.pipeline"));
        assert_eq!(v.get("message").and_then(|m| m.as_str()), Some("bad \"input\"\nline"));
        assert_eq!(v.get("kvs").and_then(|k| k.get("path")).and_then(|p| p.as_str()), Some("a\\b"));
    }

    #[test]
    fn json_render_empty_kvs_is_valid() {
        let line = render(LogFormat::Json, 0, Level::Info, "t", "m", &[]);
        let v = bs_trace::json::parse(&line).expect("parses");
        assert_eq!(v.get("kvs").and_then(|k| k.as_object()).map(<[_]>::len), Some(0));
    }

    #[test]
    fn set_log_format_overrides_env() {
        set_log_format(LogFormat::Json);
        assert_eq!(current_format(), LogFormat::Json);
        set_log_format(LogFormat::Text);
        assert_eq!(current_format(), LogFormat::Text);
    }

    #[test]
    fn token_bucket_suppresses_floods_then_reports_the_gap() {
        crate::enable();
        let counter_before = crate::registry().counter("telemetry.log.suppressed").get();
        let site_before = crate::registry().counter("telemetry.log.suppressed.test.bucket").get();
        let site = LogSite::new();
        let (mut admitted, mut suppressed) = (0u64, 0u64);
        for _ in 0..10_000 {
            match site.admit(Level::Warn, "test.bucket") {
                Some(_) => admitted += 1,
                None => suppressed += 1,
            }
        }
        // The burst plus whatever refills during the loop; even a slow
        // machine spends well under a second here.
        assert!(admitted >= SITE_BURST, "the burst must pass: {admitted}");
        assert!(admitted <= SITE_BURST + 2 * SITE_REFILL_PER_SEC, "flood leaked: {admitted}");
        assert_eq!(admitted + suppressed, 10_000);
        let counter_after = crate::registry().counter("telemetry.log.suppressed").get();
        assert!(
            counter_after - counter_before >= suppressed,
            "every suppression must be counted (delta={})",
            counter_after - counter_before
        );
        let site_after = crate::registry().counter("telemetry.log.suppressed.test.bucket").get();
        assert_eq!(
            site_after - site_before,
            suppressed,
            "the per-site counter tallies exactly this site's suppressions"
        );
        // Errors bypass the limiter and drain the gap report.
        let gap = site.admit(Level::Error, "test.bucket").expect("errors always pass");
        assert_eq!(gap, suppressed, "the next admitted line learns the gap size");
        // The gap was drained: an immediately following admission
        // (error again, bucket is empty) reports zero.
        assert_eq!(site.admit(Level::Error, "test.bucket"), Some(0));
    }

    #[test]
    fn token_bucket_refills_after_quiet_period() {
        let site = LogSite::new();
        while site.admit(Level::Warn, "test.refill").is_some() {}
        assert!(site.admit(Level::Warn, "test.refill").is_none(), "bucket is dry");
        // One refill quantum at SITE_REFILL_PER_SEC lines/s.
        std::thread::sleep(std::time::Duration::from_millis(1_000 / SITE_REFILL_PER_SEC + 50));
        assert!(site.admit(Level::Warn, "test.refill").is_some(), "a token refilled while quiet");
    }

    #[test]
    fn macro_call_sites_are_limited_independently() {
        crate::enable();
        set_max_log_level(Some(Level::Info));
        let emitted_before = crate::registry().counter("log.warn").get();
        for i in 0..5_000 {
            crate::warn!("test.flood", "storm line {i}");
        }
        let emitted = crate::registry().counter("log.warn").get() - emitted_before;
        // This site may burst, refill a little, and prepend gap
        // summaries; other tests also log warns concurrently, so the
        // bound is generous — without limiting it would be ≥ 5000.
        assert!(emitted <= 500, "flooding site emitted {emitted} lines");
    }

    #[test]
    fn emitted_events_count_when_registry_enabled() {
        crate::enable();
        set_max_log_level(Some(Level::Info));
        let before = crate::registry().counter("log.info").get();
        crate::info!("test", "counted event");
        let after = crate::registry().counter("log.info").get();
        assert!(after > before);
    }
}
