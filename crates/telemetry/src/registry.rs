//! The name-indexed metric registry and its process-global instance.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// A set of named metrics. One process-global instance backs the crate's
/// free functions; tests may create private ones.
///
/// Lookups take a read lock on a `BTreeMap` (uncontended in practice:
/// writers only appear the first time a name is seen). Hot paths that
/// cannot afford even that should hold the returned [`Arc`] handle.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

static GLOBAL: Registry = Registry::new();

/// The process-global registry.
pub(crate) fn global() -> &'static Registry {
    &GLOBAL
}

impl Registry {
    /// An empty, disabled registry.
    pub const fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Zero every metric **in place** (the enabled flag is untouched).
    /// Names stay registered and existing `Arc` handles stay connected:
    /// a caller that cached `registry.counter("x")` before the reset
    /// keeps recording into the same instance the next snapshot reads.
    /// (Dropping the map entries instead would silently detach cached
    /// handles — they would keep counting into an orphan the snapshot
    /// never sees again.)
    pub fn reset(&self) {
        for c in self.counters.read().expect("registry lock").values() {
            c.reset();
        }
        for g in self.gauges.read().expect("registry lock").values() {
            g.reset();
        }
        for h in self.histograms.read().expect("registry lock").values() {
            h.reset();
        }
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().expect("registry lock").get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(name.to_string()).or_default())
}

/// A frozen copy of a registry, ready for export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.counter("a").add(2);
        r.counter("b").add(10);
        assert_eq!(r.counter("a").get(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 3);
        assert_eq!(snap.counters["b"], 10);
    }

    #[test]
    fn reset_zeroes_all_kinds_in_place() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(5);
        r.histogram("h").record(9);
        r.enable();
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 0, "names survive reset with zeroed values");
        assert_eq!(snap.gauges["g"], 0);
        assert_eq!(snap.histograms["h"].count, 0);
        assert_eq!(snap.histograms["h"].sum, 0);
        assert_eq!(snap.histograms["h"].max, 0);
        assert!(r.is_enabled(), "reset keeps the enabled flag");
    }

    #[test]
    fn cached_handles_survive_reset() {
        // Regression: reset used to drop the map entries, so a handle
        // cached before the reset kept recording into an orphaned
        // metric that no later snapshot could see.
        let r = Registry::new();
        let c = r.counter("cached.counter");
        let g = r.gauge("cached.gauge");
        let h = r.histogram("cached.hist");
        c.add(7);
        g.set(7);
        h.record(7);
        r.reset();
        c.add(3);
        g.add(3);
        h.record(3);
        let snap = r.snapshot();
        assert_eq!(snap.counters["cached.counter"], 3, "post-reset adds are visible");
        assert_eq!(snap.gauges["cached.gauge"], 3);
        assert_eq!(snap.histograms["cached.hist"].count, 1);
        assert_eq!(snap.histograms["cached.hist"].sum, 3);
        assert!(
            Arc::ptr_eq(&c, &r.counter("cached.counter")),
            "the registry still hands out the same instance"
        );
    }

    #[test]
    fn concurrent_interning_and_increments() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Contend on a shared name and a private one.
                        r.counter("shared").inc();
                        r.counter(&format!("private.{t}")).inc();
                        r.histogram("lat").record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 40_000);
        for t in 0..8 {
            assert_eq!(r.counter(&format!("private.{t}")).get(), 5_000);
        }
        assert_eq!(r.histogram("lat").count(), 40_000);
    }
}
