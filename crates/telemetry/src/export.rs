//! Snapshot exporters: JSON and Prometheus text format.

use crate::registry::Snapshot;
use std::fmt::Write;

/// Escape a string for a JSON document (shared with the JSON logger).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Turn a dotted metric name into a Prometheus-safe one: `bs_` prefix,
/// every character outside `[a-zA-Z0-9_]` replaced by `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("bs_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl Snapshot {
    /// Serialize as a JSON document:
    ///
    /// ```json
    /// {
    ///   "counters":   { "netsim.contacts": 123 },
    ///   "gauges":     { "sensor.window_evicted": 0 },
    ///   "histograms": { "core.retrain": { "count": 2, "sum": 900,
    ///                     "max": 500, "p50": 447, "p90": 511, "p99": 511 } }
    /// }
    /// ```
    ///
    /// Histogram fields are in the recorded unit — nanoseconds for every
    /// span-fed histogram.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json_escape(k), v);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json_escape(k), v);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{ \"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                json_escape(k),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p90,
                h.p99
            );
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Serialize in the Prometheus text exposition format. Histograms
    /// export as summaries (`quantile` labels plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, v) in &self.gauges {
            let n = prom_name(k);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, h) in &self.histograms {
            let n = prom_name(k);
            let _ = writeln!(out, "# TYPE {n} summary");
            let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{n}{{quantile=\"0.9\"}} {}", h.p90);
            let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("netsim.contacts".into(), 42);
        s.counters.insert("sensor.records".into(), 7);
        s.gauges.insert("sensor.window_evicted".into(), -1);
        s.histograms.insert(
            "core.retrain".into(),
            HistogramSnapshot { count: 2, sum: 900, max: 500, p50: 447, p90: 511, p99: 511 },
        );
        s
    }

    #[test]
    fn json_contains_every_metric_and_is_well_formed() {
        let j = sample().to_json();
        assert!(j.contains("\"netsim.contacts\": 42"));
        assert!(j.contains("\"sensor.records\": 7"));
        assert!(j.contains("\"sensor.window_evicted\": -1"));
        assert!(j.contains("\"core.retrain\""));
        assert!(j.contains("\"p99\": 511"));
        // Structural sanity: balanced braces, quotes in pairs.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
        // No trailing commas before closing braces.
        assert!(!j.contains(",\n  }") || !j.contains(", }"));
        assert!(!j.contains(",}"));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let j = Snapshot::default().to_json();
        assert_eq!(j, "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n");
    }

    #[test]
    fn json_escapes_awkward_names() {
        let mut s = Snapshot::default();
        s.counters.insert("weird\"name\\with\nstuff".into(), 1);
        let j = s.to_json();
        assert!(j.contains("weird\\\"name\\\\with\\nstuff"));
    }

    #[test]
    fn json_snapshot_parses_with_real_parser() {
        // Structural checks above are heuristic; this is the real test:
        // a snapshot full of hostile names must survive a JSON parser.
        let mut s = sample();
        s.counters.insert("quote\"back\\slash".into(), 1);
        s.counters.insert("newline\nand\ttab".into(), 2);
        s.counters.insert("ctrl\u{1}char".into(), 3);
        s.gauges.insert("gauge\"quoted\"".into(), -9);
        s.histograms.insert(
            "hist\\path".into(),
            HistogramSnapshot { count: 0, sum: 0, max: 0, p50: 0, p90: 0, p99: 0 },
        );
        let v = bs_trace::json::parse(&s.to_json()).expect("snapshot_json must be valid JSON");
        let counters = v.get("counters").expect("counters object");
        assert_eq!(counters.get("quote\"back\\slash").and_then(|c| c.as_f64()), Some(1.0));
        assert_eq!(counters.get("newline\nand\ttab").and_then(|c| c.as_f64()), Some(2.0));
        assert_eq!(counters.get("ctrl\u{1}char").and_then(|c| c.as_f64()), Some(3.0));
        assert_eq!(
            v.get("gauges").and_then(|g| g.get("gauge\"quoted\"")).and_then(|g| g.as_f64()),
            Some(-9.0)
        );
        let h = v.get("histograms").and_then(|h| h.get("hist\\path")).expect("histogram");
        assert_eq!(h.get("count").and_then(|c| c.as_f64()), Some(0.0));
    }

    #[test]
    fn empty_json_snapshot_parses_too() {
        bs_trace::json::parse(&Snapshot::default().to_json()).expect("empty snapshot is valid");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prom_name("core.retrain"), "bs_core_retrain");
        assert_eq!(prom_name("a.b-c/d e"), "bs_a_b_c_d_e");
        assert_eq!(prom_name("Já7"), "bs_J_7");
        assert_eq!(prom_name(""), "bs_");
    }

    #[test]
    fn prometheus_text_format_conformance() {
        let mut s = sample();
        s.counters.insert("weird name/with.bits".into(), 5);
        let p = s.to_prometheus();
        let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for line in p.lines() {
            assert!(!line.is_empty(), "no blank lines in exposition output");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("TYPE line has a name");
                let kind = parts.next().expect("TYPE line has a kind");
                assert!(matches!(kind, "counter" | "gauge" | "summary"), "kind {kind}");
                assert!(typed.insert(name), "TYPE declared once per metric: {name}");
                continue;
            }
            // Sample line: `name value` or `name{quantile="q"} value`.
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            let base = name_part.split('{').next().unwrap();
            assert!(
                base.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "metric name {base:?} must be [a-zA-Z0-9_]"
            );
            assert!(value.parse::<f64>().is_ok(), "value {value:?} must be numeric");
            let owner = base
                .strip_suffix("_sum")
                .filter(|b| typed.contains(b))
                .or_else(|| base.strip_suffix("_count").filter(|b| typed.contains(b)))
                .unwrap_or(base);
            assert!(typed.contains(owner), "sample {base} precedes its TYPE line");
            if let Some(labels) = name_part.strip_prefix(base) {
                if !labels.is_empty() {
                    assert!(labels.starts_with("{quantile=\"") && labels.ends_with("\"}"));
                }
            }
        }
        // Summaries carry the full complement of lines.
        assert!(p.contains("bs_core_retrain_sum 900"));
        assert!(p.contains("bs_core_retrain_count 2"));
        assert!(p.contains("bs_core_retrain{quantile=\"0.5\"} 447"));
    }

    #[test]
    fn prometheus_format_lines() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE bs_netsim_contacts counter"));
        assert!(p.contains("bs_netsim_contacts 42"));
        assert!(p.contains("# TYPE bs_sensor_window_evicted gauge"));
        assert!(p.contains("bs_sensor_window_evicted -1"));
        assert!(p.contains("# TYPE bs_core_retrain summary"));
        assert!(p.contains("bs_core_retrain{quantile=\"0.5\"} 447"));
        assert!(p.contains("bs_core_retrain_sum 900"));
        assert!(p.contains("bs_core_retrain_count 2"));
    }

    #[test]
    fn global_snapshot_exports_via_free_functions() {
        crate::enable();
        crate::counter_add("export.test.counter", 5);
        crate::observe("export.test.hist", 100);
        let j = crate::snapshot_json();
        assert!(j.contains("\"export.test.counter\": 5"));
        let p = crate::snapshot_prometheus();
        assert!(p.contains("bs_export_test_counter 5"));
    }
}
