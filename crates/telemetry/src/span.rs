//! Wall-clock span timers for pipeline stages.

use std::time::Instant;

/// A stage timer: created by [`crate::span`], records elapsed
/// nanoseconds into the histogram named after the stage when dropped.
///
/// One instrumentation point feeds two sinks: the metrics histogram
/// (this crate) and, when `bs-trace` is enabled, a hierarchical trace
/// span that nests under the caller's current span — so the same
/// `span("core.retrain")` call yields both an aggregate latency
/// distribution and a causally-parented event in the flight recorder.
///
/// While both registries are disabled at creation the guard is inert —
/// it never reads the clock — so wrapping a stage costs two relaxed
/// atomic loads (one per sink).
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    trace: bs_trace::SpanGuard,
}

impl Span {
    pub(crate) fn start(name: &'static str) -> Self {
        let start = if crate::is_enabled() { Some(Instant::now()) } else { None };
        Span { name, start, trace: bs_trace::span(name) }
    }

    /// The stage name this span records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The trace context of this span, for manual cross-thread
    /// propagation (`None` when tracing was disabled at creation).
    pub fn trace_context(&self) -> Option<bs_trace::TraceContext> {
        self.trace.context()
    }

    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::registry().histogram(self.name).record(nanos);
        }
        // `self.trace` drops after this body runs, ending the trace
        // span and restoring the caller's context.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_named_histogram() {
        crate::enable();
        {
            let g = crate::span("span.test.stage");
            assert_eq!(g.name(), "span.test.stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = crate::registry().histogram("span.test.stage");
        assert!(h.count() >= 1);
        assert!(h.max() >= 1_000_000, "at least 1ms recorded, got {}ns", h.max());
    }

    #[test]
    fn disabled_span_is_inert() {
        // bs-trace stays disabled for this whole test binary, and the
        // metrics half is modeled with an explicit `start: None` so the
        // test is immune to other tests enabling the global registry.
        let s = Span { name: "span.test.inert", start: None, trace: bs_trace::span("x") };
        assert!(s.trace.is_inert(), "tracing is off in this process");
        assert!(s.trace_context().is_none());
        drop(s);
        crate::enable();
        assert_eq!(crate::registry().histogram("span.test.inert").count(), 0);
    }
}
