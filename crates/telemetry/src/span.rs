//! Wall-clock span timers for pipeline stages.

use std::time::Instant;

/// A stage timer: created by [`crate::span`], records elapsed
/// nanoseconds into the histogram named after the stage when dropped.
///
/// While the registry is disabled at creation the guard is inert — it
/// never reads the clock — so wrapping a stage costs one atomic load.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn start(name: &'static str) -> Self {
        let start = if crate::is_enabled() { Some(Instant::now()) } else { None };
        Span { name, start }
    }

    /// The stage name this span records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::registry().histogram(self.name).record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_named_histogram() {
        crate::enable();
        {
            let g = crate::span("span.test.stage");
            assert_eq!(g.name(), "span.test.stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = crate::registry().histogram("span.test.stage");
        assert!(h.count() >= 1);
        assert!(h.max() >= 1_000_000, "at least 1ms recorded, got {}ns", h.max());
    }

    #[test]
    fn disabled_span_is_inert() {
        let s = Span { name: "span.test.inert", start: None };
        drop(s);
        crate::enable();
        assert_eq!(crate::registry().histogram("span.test.inert").count(), 0);
    }
}
