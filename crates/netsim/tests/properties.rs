//! Property-based tests for the world model and simulator.

use bs_dns::SimTime;
use bs_netsim::det::mix64;
use bs_netsim::hierarchy::AuthorityId;
use bs_netsim::types::{Contact, ContactKind};
use bs_netsim::world::{World, WorldConfig};
use bs_netsim::{Simulator, SimulatorConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn world() -> World {
    World::new(WorldConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every world fact is self-consistent at any address: roles imply
    /// existence, shared resolvers live in usable space, AS implies
    /// country.
    #[test]
    fn world_facts_are_consistent(raw in any::<u32>()) {
        let w = world();
        let addr = Ipv4Addr::from(raw);
        if w.host_role(addr).is_some() {
            prop_assert!(w.host_exists(addr));
        }
        if w.as_of(addr).is_some() {
            prop_assert!(w.country_of(addr).is_some());
        }
        if w.country_of(addr).is_some() {
            let r = w.shared_resolver_for(addr);
            prop_assert!(w.country_of(r.0).is_some(), "resolver in unusable space: {r}");
            let o = r.0.octets();
            prop_assert_eq!(o[2], 0);
            prop_assert!((10..14).contains(&o[3]));
        }
    }

    /// Reactions are deterministic and independent of contact time.
    #[test]
    fn reactions_deterministic(orig in any::<u32>(), target in any::<u32>(), t in 0u64..1_000_000) {
        let w = world();
        let mk = |time| Contact {
            time: SimTime(time),
            originator: Ipv4Addr::from(orig),
            target: Ipv4Addr::from(target),
            kind: ContactKind::ProbeTcp(22),
        };
        prop_assert_eq!(w.reactions(&mk(t)), w.reactions(&mk(0)));
    }

    /// The simulator never logs at unobserved authorities, and observed
    /// logs stay within the contact time range.
    #[test]
    fn simulator_logs_are_scoped(seeds in proptest::collection::vec(any::<u64>(), 1..60)) {
        let w = world();
        let jp = bs_netsim::types::CountryCode::new("jp").unwrap();
        let observed = AuthorityId::National(jp);
        let mut sim = Simulator::new(&w, SimulatorConfig::observing([observed]));
        let mut max_t = 0;
        for (i, s) in seeds.iter().enumerate() {
            let t = (i as u64) * 60;
            max_t = t;
            sim.contact(Contact {
                time: SimTime(t),
                originator: w.random_public_addr(*s),
                target: w.random_public_addr(mix64(*s)),
                kind: ContactKind::Smtp,
            });
        }
        let logs = sim.into_logs();
        prop_assert_eq!(logs.len(), 1);
        for r in logs[&observed].records() {
            prop_assert!(r.time.secs() <= max_t);
            // National(jp) only ever sees JP-space originators.
            prop_assert_eq!(w.country_of(r.originator), Some(jp));
        }
    }

    /// Processing the same contacts twice through fresh simulators
    /// yields identical logs (full determinism).
    #[test]
    fn simulation_is_reproducible(seeds in proptest::collection::vec(any::<u64>(), 1..40)) {
        let w = world();
        let observed = AuthorityId::final_for(Ipv4Addr::new(203, 0, 113, 9));
        let contacts: Vec<Contact> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| Contact {
                time: SimTime(i as u64),
                originator: Ipv4Addr::new(203, 0, 113, 9),
                target: w.random_public_addr(*s),
                kind: ContactKind::ProbeIcmp,
            })
            .collect();
        let run = |contacts: &[Contact]| {
            let mut sim = Simulator::new(&w, SimulatorConfig::observing([observed]));
            sim.process(contacts.iter().copied());
            sim.into_logs()
        };
        prop_assert_eq!(run(&contacts), run(&contacts));
    }
}
