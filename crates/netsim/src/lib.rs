//! A procedurally-generated Internet and the DNS plumbing that turns
//! network-wide activity into backscatter.
//!
//! The backscatter paper observes reverse-DNS queries at three kinds of
//! authoritative servers. Reproducing its experiments needs an Internet
//! to point the sensor at: address space with geographic and
//! organizational structure, hosts with roles and reverse names, the
//! recursive resolvers those hosts use, and the authority hierarchy that
//! serves `in-addr.arpa`. This crate provides all of that.
//!
//! # The world is a function
//!
//! Instead of materializing billions of host records, the [`World`]
//! computes every static fact about the Internet *deterministically from
//! the world seed and the address*: which country a /8 belongs to, which
//! AS owns a /16, what kind of network a /24 is, whether a host exists at
//! an address, what its role and reverse name are, and which recursive
//! resolver it uses. Two queries about the same address always agree, any
//! address can be queried in O(1), and full-Internet scans are cheap.
//! Only *caches* — the source of backscatter attenuation — are stateful,
//! and they live in the [`engine::Simulator`].
//!
//! # From contact to backscatter
//!
//! Activity models (crate `bs-activity`) emit [`Contact`]s: "originator
//! *o* touched target *t* with traffic of kind *k* at time *s*". The
//! simulator decides whether the target's infrastructure reacts with a
//! reverse lookup, routes the lookup through the resolver's PTR cache and
//! the delegation hierarchy, and appends a [`QueryLogRecord`] at every
//! instrumented authority that gets asked. The logs are what the sensor
//! in `bs-sensor` consumes — exactly the `(originator, querier,
//! authority)` tuples of paper §III-A.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod det;
pub mod engine;
pub mod experiment;
pub mod hierarchy;
pub mod log;
pub mod naming;
pub mod resolver;
pub mod types;
pub mod world;

pub use engine::{Simulator, SimulatorConfig};
pub use hierarchy::{AuthorityId, AuthorityLevel};
pub use log::{QueryLog, QueryLogRecord};
pub use types::{AsId, Contact, ContactKind, CountryCode, HostRole, NameOutcome, ResolverId};
pub use world::{World, WorldConfig};
