//! Query logs: what instrumented authorities record.
//!
//! Each record is the paper's `(originator, querier, authority)` tuple
//! plus a timestamp and response code — exactly the fields §III-A
//! extracts from packet captures. Logs serialize to a simple
//! tab-separated text format (one record per line) so datasets can be
//! written to disk, inspected, and re-read, like a minimal `dnstap`.

use crate::hierarchy::AuthorityId;
use bs_dns::{Rcode, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// One reverse query as seen by one authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryLogRecord {
    /// Arrival time at the authority.
    pub time: SimTime,
    /// The source address of the DNS packet: the recursive resolver (or
    /// self-resolving host) asking on a target's behalf.
    pub querier: Ipv4Addr,
    /// The originator, recovered from the reverse QNAME.
    pub originator: Ipv4Addr,
    /// The response the authority gave.
    pub rcode: Rcode,
}

/// An append-only query log for one authority.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryLog {
    records: Vec<QueryLogRecord>,
}

impl QueryLog {
    /// An empty log.
    pub fn new() -> Self {
        QueryLog::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: QueryLogRecord) {
        self.records.push(r);
    }

    /// All records in arrival order.
    pub fn records(&self) -> &[QueryLogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merge another log into this one, preserving time order if both
    /// inputs were ordered.
    pub fn merge(&mut self, other: QueryLog) {
        let mut merged = Vec::with_capacity(self.records.len() + other.records.len());
        let mut a = std::mem::take(&mut self.records).into_iter().peekable();
        let mut b = other.records.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.time <= y.time {
                        merged.push(a.next().expect("peeked"));
                    } else {
                        merged.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.records = merged;
    }

    /// Serialize to the TSV text format, one record per line:
    /// `time\tquerier\toriginator\trcode`.
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 48);
        for r in &self.records {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                r.time.secs(),
                r.querier,
                r.originator,
                rcode_str(r.rcode)
            ));
        }
        out
    }

    /// Parse the TSV text format. Blank lines and `#` comments are
    /// skipped; malformed lines produce an error naming the line number.
    pub fn from_tsv(text: &str) -> Result<Self, LogParseError> {
        let mut log = QueryLog::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut f = line.split('\t');
            fn parse<'a>(
                s: Option<&'a str>,
                line: usize,
                what: &'static str,
            ) -> Result<&'a str, LogParseError> {
                s.ok_or(LogParseError { line, what })
            }
            let time: u64 = parse(f.next(), i + 1, "time")?
                .parse()
                .map_err(|_| LogParseError { line: i + 1, what: "time" })?;
            let querier: Ipv4Addr = parse(f.next(), i + 1, "querier")?
                .parse()
                .map_err(|_| LogParseError { line: i + 1, what: "querier" })?;
            let originator: Ipv4Addr = parse(f.next(), i + 1, "originator")?
                .parse()
                .map_err(|_| LogParseError { line: i + 1, what: "originator" })?;
            let rcode = rcode_from_str(parse(f.next(), i + 1, "rcode")?)
                .ok_or(LogParseError { line: i + 1, what: "rcode" })?;
            if f.next().is_some() {
                return Err(LogParseError { line: i + 1, what: "trailing fields" });
            }
            log.push(QueryLogRecord { time: SimTime(time), querier, originator, rcode });
        }
        bs_telemetry::counter_add("netsim.log.parsed_records", log.len() as u64);
        Ok(log)
    }
}

fn rcode_str(rc: Rcode) -> &'static str {
    match rc {
        Rcode::NoError => "NOERROR",
        Rcode::FormErr => "FORMERR",
        Rcode::ServFail => "SERVFAIL",
        Rcode::NxDomain => "NXDOMAIN",
        Rcode::NotImp => "NOTIMP",
        Rcode::Refused => "REFUSED",
    }
}

fn rcode_from_str(s: &str) -> Option<Rcode> {
    Some(match s {
        "NOERROR" => Rcode::NoError,
        "FORMERR" => Rcode::FormErr,
        "SERVFAIL" => Rcode::ServFail,
        "NXDOMAIN" => Rcode::NxDomain,
        "NOTIMP" => Rcode::NotImp,
        "REFUSED" => Rcode::Refused,
        _ => return None,
    })
}

/// A malformed line in the TSV format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogParseError {
    /// 1-based line number.
    pub line: usize,
    /// Which field failed.
    pub what: &'static str,
}

impl fmt::Display for LogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: bad {}", self.line, self.what)
    }
}

impl std::error::Error for LogParseError {}

/// Labeled logs for a set of authorities, as produced by one simulation.
pub type AuthorityLogs = std::collections::BTreeMap<AuthorityId, QueryLog>;

impl FromStr for QueryLog {
    type Err = LogParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        QueryLog::from_tsv(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, q: &str, o: &str, rc: Rcode) -> QueryLogRecord {
        QueryLogRecord {
            time: SimTime(t),
            querier: q.parse().unwrap(),
            originator: o.parse().unwrap(),
            rcode: rc,
        }
    }

    #[test]
    fn tsv_round_trip() {
        let mut log = QueryLog::new();
        log.push(rec(0, "192.0.2.1", "203.0.113.9", Rcode::NoError));
        log.push(rec(30, "192.0.2.53", "203.0.113.9", Rcode::NxDomain));
        log.push(rec(65, "198.51.100.7", "203.0.113.10", Rcode::ServFail));
        let text = log.to_tsv();
        assert_eq!(QueryLog::from_tsv(&text).unwrap(), log);
    }

    #[test]
    fn tsv_skips_comments_and_blanks() {
        let text = "# header\n\n0\t192.0.2.1\t203.0.113.9\tNOERROR\n";
        let log = QueryLog::from_tsv(text).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn tsv_reports_bad_lines() {
        let cases = [
            ("banana\t192.0.2.1\t203.0.113.9\tNOERROR", "time"),
            ("0\tnot-an-ip\t203.0.113.9\tNOERROR", "querier"),
            ("0\t192.0.2.1\tnope\tNOERROR", "originator"),
            ("0\t192.0.2.1\t203.0.113.9\tWHAT", "rcode"),
            ("0\t192.0.2.1\t203.0.113.9", "rcode"),
            ("0\t192.0.2.1\t203.0.113.9\tNOERROR\textra", "trailing fields"),
        ];
        for (line, what) in cases {
            let err = QueryLog::from_tsv(line).unwrap_err();
            assert_eq!(err.what, what, "for {line:?}");
            assert_eq!(err.line, 1);
        }
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mut a = QueryLog::new();
        a.push(rec(0, "192.0.2.1", "203.0.113.9", Rcode::NoError));
        a.push(rec(100, "192.0.2.1", "203.0.113.9", Rcode::NoError));
        let mut b = QueryLog::new();
        b.push(rec(50, "192.0.2.2", "203.0.113.9", Rcode::NoError));
        b.push(rec(150, "192.0.2.2", "203.0.113.9", Rcode::NoError));
        a.merge(b);
        let times: Vec<u64> = a.records().iter().map(|r| r.time.secs()).collect();
        assert_eq!(times, vec![0, 50, 100, 150]);
    }

    #[test]
    fn empty_log_round_trips() {
        let log = QueryLog::new();
        assert!(log.is_empty());
        assert_eq!(QueryLog::from_tsv(&log.to_tsv()).unwrap(), log);
    }
}
