//! Deterministic hashing utilities.
//!
//! The world model derives every static fact from `(seed, key)` pairs via
//! a strong 64-bit mixer, so facts are reproducible, order-independent,
//! and need no storage. The simulator also uses these for per-event
//! randomness: a decision about event `e` depends only on the seed and
//! `e`'s identity, never on how many events preceded it — which keeps
//! simulations stable under re-sharding and makes failures replayable.

/// SplitMix64 finalizer: a bijective mixer with good avalanche behaviour.
/// (Sebastiano Vigna's constants, as used by `rand` and JDK 17.)
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine a seed with up to three keys into one well-mixed word.
#[inline]
pub fn hash3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    // Feed each word through the mixer with distinct round constants so
    // that (a, b) and (b, a) land far apart.
    let mut h = mix64(seed ^ 0x243F_6A88_85A3_08D3);
    h = mix64(h ^ a.wrapping_mul(0x1319_8A2E_0370_7344));
    h = mix64(h ^ b.wrapping_mul(0xA409_3822_299F_31D0));
    h = mix64(h ^ c.wrapping_mul(0x082E_FA98_EC4E_6C89));
    h
}

/// Two-key convenience wrapper over [`hash3`].
#[inline]
pub fn hash2(seed: u64, a: u64, b: u64) -> u64 {
    hash3(seed, a, b, 0x4528_21E6_38D0_1377)
}

/// One-key convenience wrapper over [`hash3`].
#[inline]
pub fn hash1(seed: u64, a: u64) -> u64 {
    hash2(seed, a, 0xBE54_66CF_34E9_0C6C)
}

/// Map a hash to a uniform float in `[0, 1)` using the top 53 bits.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic Bernoulli trial: true with probability `p`.
#[inline]
pub fn bernoulli(h: u64, p: f64) -> bool {
    unit_f64(h) < p
}

/// Map a hash to `0..n` without modulo bias (Lemire's multiply-shift).
#[inline]
pub fn bounded(h: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((h as u128 * n as u128) >> 64) as u64
}

/// Pick an index from a weight table proportionally to the weights.
///
/// Weights must be non-negative and not all zero.
pub fn weighted_pick(h: u64, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let mut x = unit_f64(h) * total;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Sample an exponential inter-arrival time with the given rate (events
/// per second). Returns `f64::INFINITY` when the rate is zero.
#[inline]
pub fn exponential(h: u64, rate_per_sec: f64) -> f64 {
    if rate_per_sec <= 0.0 {
        return f64::INFINITY;
    }
    let u = unit_f64(h).max(f64::MIN_POSITIVE);
    -u.ln() / rate_per_sec
}

/// Sample a log-normal value with the given parameters of the underlying
/// normal (a Box–Muller pair built from two derived hashes).
pub fn log_normal(h: u64, mu: f64, sigma: f64) -> f64 {
    let u1 = unit_f64(mix64(h ^ 0x5555_5555_5555_5555)).max(f64::MIN_POSITIVE);
    let u2 = unit_f64(mix64(h ^ 0xAAAA_AAAA_AAAA_AAAA));
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Sample from a bounded Pareto distribution on `[lo, hi]` with shape
/// `alpha`. Heavy-tailed footprints (paper Fig. 9) come from here.
pub fn bounded_pareto(h: u64, alpha: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
    let u = unit_f64(h).clamp(0.0, 1.0 - 1e-12);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_small_inputs() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0u64..10_000).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn hash_argument_order_matters() {
        assert_ne!(hash2(1, 2, 3), hash2(1, 3, 2));
        assert_ne!(hash3(1, 2, 3, 4), hash3(1, 4, 3, 2));
        assert_ne!(hash1(1, 2), hash1(2, 1));
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut lo = 0;
        let mut hi = 0;
        for i in 0..10_000u64 {
            let x = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        // Roughly balanced halves.
        assert!((lo as i64 - hi as i64).abs() < 500, "lo={lo} hi={hi}");
    }

    #[test]
    fn bernoulli_matches_probability() {
        let p = 0.137;
        let hits = (0..100_000u64).filter(|&i| bernoulli(hash1(9, i), p)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - p).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn bounded_is_uniform_enough() {
        let n = 7u64;
        let mut counts = [0u32; 7];
        for i in 0..70_000u64 {
            counts[bounded(mix64(i), n) as usize] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts={counts:?}");
        }
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0u32; 3];
        for i in 0..100_000u64 {
            counts[weighted_pick(mix64(i), &w)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 100_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let rate = 0.25;
        let n = 50_000u64;
        let sum: f64 = (0..n).map(|i| exponential(mix64(i), rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean={mean}");
        assert_eq!(exponential(1, 0.0), f64::INFINITY);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds_and_skews_low() {
        let mut below_double_lo = 0;
        for i in 0..10_000u64 {
            let x = bounded_pareto(mix64(i), 1.2, 20.0, 10_000.0);
            assert!((20.0..=10_000.0).contains(&x), "x={x}");
            if x < 40.0 {
                below_double_lo += 1;
            }
        }
        // A heavy-tailed sample concentrates near the lower bound.
        assert!(below_double_lo > 5_000, "below={below_double_lo}");
    }

    #[test]
    fn log_normal_is_positive() {
        for i in 0..1_000u64 {
            assert!(log_normal(mix64(i), 0.0, 1.5) > 0.0);
        }
    }
}
