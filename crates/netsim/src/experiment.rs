//! Controlled-scan experiments (paper §IV-D, Fig. 4).
//!
//! The paper probes a known fraction of IPv4 from a host whose reverse
//! zone it controls, with the PTR TTL set to zero so caching cannot hide
//! queriers, and counts the queriers arriving at the final authority and
//! at the roots. This module reproduces that experiment inside the
//! simulator: same TTL-0 trick, same observation points, any scan size.

use crate::det::hash2;
use crate::engine::{Simulator, SimulatorConfig};
use crate::hierarchy::{AuthorityId, PtrPolicy, RootServer};
use crate::types::{Contact, ContactKind};
use crate::world::World;
use bs_dns::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Parameters of one controlled scan.
#[derive(Debug, Clone)]
pub struct ControlledScan {
    /// The probing host. Its /16's final authority is instrumented.
    pub prober: Ipv4Addr,
    /// How many distinct targets to probe.
    pub targets: u64,
    /// Probe traffic kind (the paper runs ICMP, TCP 22/23/80, UDP 53/123).
    pub kind: ContactKind,
    /// Wall-clock duration of the scan; probes spread uniformly over it.
    pub duration: SimDuration,
    /// Seed for target selection (varies across trials).
    pub trial_seed: u64,
}

/// Queriers observed at each vantage point during a controlled scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanObservation {
    /// Number of probes actually sent.
    pub targets_probed: u64,
    /// Unique querier addresses at the prober's final authority.
    pub queriers_at_final: usize,
    /// Unique querier addresses at each root.
    pub queriers_at_root: BTreeMap<RootServer, usize>,
    /// Raw query counts at the final authority (pre-uniquing).
    pub queries_at_final: usize,
}

/// Run one controlled scan and report what each authority saw.
pub fn run_controlled_scan(world: &World, scan: &ControlledScan) -> ScanObservation {
    let final_auth = AuthorityId::final_for(scan.prober);
    let observed = [final_auth, AuthorityId::Root(RootServer::B), AuthorityId::Root(RootServer::M)];
    let mut sim = Simulator::new(world, SimulatorConfig::observing(observed));
    // The experiment's defining trick: TTL 0 on the prober's PTR record.
    sim.override_ptr_policy(scan.prober, PtrPolicy::Exists { ttl: 0 });

    let dur = scan.duration.secs().max(1);
    for i in 0..scan.targets {
        let h = hash2(world.seed() ^ 0xC0_57AB, scan.trial_seed, i);
        let target = world.random_public_addr(h);
        let time = SimTime(i * dur / scan.targets.max(1));
        sim.contact(Contact { time, originator: scan.prober, target, kind: scan.kind });
    }

    let logs = sim.into_logs();
    let uniq = |auth: AuthorityId| -> usize {
        logs[&auth].records().iter().map(|r| r.querier).collect::<HashSet<_>>().len()
    };
    let mut queriers_at_root = BTreeMap::new();
    queriers_at_root.insert(RootServer::B, uniq(AuthorityId::Root(RootServer::B)));
    queriers_at_root.insert(RootServer::M, uniq(AuthorityId::Root(RootServer::M)));
    ScanObservation {
        targets_probed: scan.targets,
        queriers_at_final: uniq(final_auth),
        queriers_at_root,
        queries_at_final: logs[&final_auth].len(),
    }
}

/// Fit `y = c · xᵖ` through observations by least squares in log space,
/// returning `(c, p)`. This is how the paper summarizes Fig. 4 ("roughly
/// 1 querier per 1000 targets … a power-law fit with power of 0.71").
pub fn power_law_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let p = (n * sxy - sx * sy) / denom;
    let lnc = (sy - p * sx) / n;
    Some((lnc.exp(), p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    fn prober(w: &World) -> Ipv4Addr {
        // Any delegated address works; the override supplies the PTR.
        for i in 0..10_000u64 {
            let a = w.random_public_addr(crate::det::hash1(0xAB, i));
            if matches!(w.delegation(a), crate::hierarchy::Delegation::Delegated { .. }) {
                return a;
            }
        }
        panic!("no delegated prober");
    }

    #[test]
    fn bigger_scans_find_more_queriers() {
        let w = world();
        let p = prober(&w);
        let small = run_controlled_scan(
            &w,
            &ControlledScan {
                prober: p,
                targets: 4_000,
                kind: ContactKind::ProbeIcmp,
                duration: SimDuration::from_hours(1),
                trial_seed: 1,
            },
        );
        let large = run_controlled_scan(
            &w,
            &ControlledScan {
                prober: p,
                targets: 200_000,
                kind: ContactKind::ProbeIcmp,
                duration: SimDuration::from_hours(13),
                trial_seed: 1,
            },
        );
        assert!(large.queriers_at_final > small.queriers_at_final);
        assert!(large.queriers_at_final >= 20, "large scan crosses detection threshold");
    }

    #[test]
    fn roots_see_tiny_fraction() {
        let w = world();
        let p = prober(&w);
        let obs = run_controlled_scan(
            &w,
            &ControlledScan {
                prober: p,
                targets: 150_000,
                kind: ContactKind::ProbeTcp(22),
                duration: SimDuration::from_hours(10),
                trial_seed: 2,
            },
        );
        let root_total: usize = obs.queriers_at_root.values().sum();
        assert!(obs.queriers_at_final > 50);
        assert!(
            root_total < obs.queriers_at_final / 4,
            "roots {root_total} vs final {}",
            obs.queriers_at_final
        );
    }

    #[test]
    fn power_law_fit_recovers_known_law() {
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let x = (i * 1000) as f64;
                (x, 0.003 * x.powf(0.71))
            })
            .collect();
        let (c, p) = power_law_fit(&pts).unwrap();
        assert!((p - 0.71).abs() < 1e-9, "p={p}");
        assert!((c - 0.003).abs() < 1e-9, "c={c}");
    }

    #[test]
    fn power_law_fit_rejects_degenerate_input() {
        assert_eq!(power_law_fit(&[]), None);
        assert_eq!(power_law_fit(&[(10.0, 5.0)]), None);
        assert_eq!(power_law_fit(&[(10.0, 5.0), (10.0, 7.0)]), None);
        assert_eq!(power_law_fit(&[(0.0, 5.0), (-3.0, 7.0)]), None);
    }
}
