//! The backscatter simulator: contacts in, authority query logs out.
//!
//! For every [`Contact`] the simulator asks the world which target-side
//! queriers react, then drives each reaction through that querier's
//! resolver state:
//!
//! 1. **Leaf PTR cache** — a hit (positive or negative) ends the story;
//!    no authority sees anything.
//! 2. **Delegation walk** — on a miss, the resolver may need to refresh
//!    referrals. Cold referrals surface as logged queries at the root
//!    (always instrumentable) and, for countries that run one, at the
//!    national registry.
//! 3. **Leaf query** — delegated space sends the query to the final
//!    authority, whose [`PtrPolicy`] decides the answer and what gets
//!    cached. *Undelegated* space terminates with NXDOMAIN at the parent
//!    (root or national) — which is why scanners operating from
//!    unregistered hosting space light up the roots in the paper's data.
//!
//! Observation is explicit: only authorities listed in
//! [`SimulatorConfig::observed`] accumulate logs, optionally with the
//! deterministic 1-in-N sampling used for the paper's M-sampled dataset.

use crate::det::{bernoulli, hash1};
use crate::hierarchy::{AuthorityId, Delegation, PtrPolicy, Region, RootServer};
use crate::log::{AuthorityLogs, QueryLog, QueryLogRecord};
use crate::resolver::{ReferralCheck, ReferralConfig, ReferralLevel, ResolverState};
use crate::types::{Contact, ResolverId};
use crate::world::World;
use bs_dns::{CacheConfig, Rcode, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Authorities that keep query logs.
    pub observed: BTreeSet<AuthorityId>,
    /// Per-authority deterministic sampling: keep 1 of every N queries.
    /// Authorities not listed keep everything.
    pub sampling: BTreeMap<AuthorityId, u32>,
    /// Referral-warmth parameters.
    pub referral: ReferralConfig,
    /// Leaf PTR cache parameters applied to every resolver.
    pub cache: CacheConfig,
    /// Fraction of *broken* resolvers that ignore DNS timeout rules:
    /// they never cache leaf answers and re-send each query several
    /// times within seconds. These are the queriers the paper's
    /// 30-second deduplication exists for ("to avoid excessive skew of
    /// querier rate estimates due to queriers that do not follow DNS
    /// timeout rules"). Real traces put them at a few percent.
    pub broken_resolver_fraction: f64,
    /// Fraction of resolvers using QNAME minimization (RFC 7816).
    /// Minimizing resolvers send only the label needed at each level,
    /// so upper authorities learn the /8 or /24 being walked but never
    /// the originator address — their backscatter signal vanishes
    /// (paper §VII: "use of query minimization at the queriers will
    /// constrain the signal to only the local authority"). Default 0,
    /// matching the paper's 2014–2015 measurement era.
    pub qname_minimization: f64,
}

impl SimulatorConfig {
    /// Observe the given authorities with no sampling.
    pub fn observing(authorities: impl IntoIterator<Item = AuthorityId>) -> Self {
        SimulatorConfig {
            observed: authorities.into_iter().collect(),
            sampling: BTreeMap::new(),
            referral: ReferralConfig::default(),
            cache: CacheConfig::default(),
            broken_resolver_fraction: 0.02,
            qname_minimization: 0.0,
        }
    }

    /// Set the QNAME-minimization adoption fraction.
    pub fn with_qname_minimization(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.qname_minimization = fraction;
        self
    }

    /// Set 1-in-N sampling for one authority.
    pub fn with_sampling(mut self, authority: AuthorityId, n: u32) -> Self {
        assert!(n >= 1, "sampling rate must be at least 1");
        self.sampling.insert(authority, n);
        self
    }
}

/// Aggregate counters for a run (pre-sampling, pre-observation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Contacts processed.
    pub contacts: u64,
    /// Contacts that triggered at least one reverse lookup.
    pub reacting_contacts: u64,
    /// Individual reverse lookups attempted (reactions).
    pub lookups: u64,
    /// Lookups answered from a resolver's leaf cache.
    pub leaf_cache_hits: u64,
    /// Queries that reached a root server.
    pub root_queries: u64,
    /// Queries that reached a national registry.
    pub national_queries: u64,
    /// Queries that reached (or were sent toward) a final authority.
    pub final_queries: u64,
    /// Records actually appended to an observed authority's log
    /// (post-observation, post-sampling).
    pub logged_records: u64,
}

/// The event-driven backscatter simulator.
///
/// Borrow a [`World`], feed it contacts in time order, then take the
/// logs. Feeding out-of-order contacts is allowed but degrades cache
/// realism; dataset generators sort their event streams.
pub struct Simulator<'w> {
    world: &'w World,
    config: SimulatorConfig,
    resolvers: HashMap<ResolverId, ResolverState>,
    logs: AuthorityLogs,
    arrival_counters: BTreeMap<AuthorityId, u64>,
    ptr_overrides: HashMap<Ipv4Addr, PtrPolicy>,
    stats: SimStats,
    /// Stats already flushed to the telemetry registry (delta tracking).
    published: SimStats,
}

impl<'w> Simulator<'w> {
    /// Create a simulator over `world`.
    pub fn new(world: &'w World, config: SimulatorConfig) -> Self {
        let logs = config.observed.iter().map(|a| (*a, QueryLog::new())).collect();
        Simulator {
            world,
            config,
            resolvers: HashMap::new(),
            logs,
            arrival_counters: BTreeMap::new(),
            ptr_overrides: HashMap::new(),
            stats: SimStats::default(),
            published: SimStats::default(),
        }
    }

    /// Override the PTR policy for one originator (e.g. TTL 0 for the
    /// controlled-scan experiment, or a fast-flux style tiny TTL).
    pub fn override_ptr_policy(&mut self, originator: Ipv4Addr, policy: PtrPolicy) {
        self.ptr_overrides.insert(originator, policy);
    }

    /// Process a single contact.
    pub fn contact(&mut self, c: Contact) {
        self.stats.contacts += 1;
        let reactions = self.world.reactions(&c);
        if reactions.is_empty() {
            return;
        }
        self.stats.reacting_contacts += 1;
        for r in reactions {
            self.stats.lookups += 1;
            self.lookup(r.querier, !r.direct, c.originator, c.time);
        }
    }

    /// Process a batch of contacts.
    pub fn process(&mut self, contacts: impl IntoIterator<Item = Contact>) {
        for c in contacts {
            self.contact(c);
        }
        self.publish_metrics();
    }

    /// Flush counter deltas accumulated since the last publication into
    /// the global telemetry registry (`netsim.*`). Called automatically
    /// at the end of every [`Simulator::process`] batch and on
    /// [`Simulator::into_logs`]; near-free while telemetry is disabled.
    pub fn publish_metrics(&mut self) {
        if !bs_telemetry::is_enabled() {
            return;
        }
        let s = self.stats;
        let p = self.published;
        bs_telemetry::counter_add("netsim.contacts", s.contacts - p.contacts);
        bs_telemetry::counter_add("netsim.lookups", s.lookups - p.lookups);
        bs_telemetry::counter_add("netsim.cache.hit", s.leaf_cache_hits - p.leaf_cache_hits);
        bs_telemetry::counter_add(
            "netsim.cache.miss",
            (s.lookups - s.leaf_cache_hits) - (p.lookups - p.leaf_cache_hits),
        );
        bs_telemetry::counter_add("netsim.queries.root", s.root_queries - p.root_queries);
        bs_telemetry::counter_add(
            "netsim.queries.national",
            s.national_queries - p.national_queries,
        );
        bs_telemetry::counter_add("netsim.queries.final", s.final_queries - p.final_queries);
        bs_telemetry::counter_add("netsim.records.logged", s.logged_records - p.logged_records);
        bs_telemetry::gauge_set("netsim.resolvers.live", self.resolvers.len() as i64);
        self.published = s;
    }

    /// Drive one reverse lookup from `querier`'s resolver.
    fn lookup(&mut self, querier: ResolverId, shared: bool, originator: Ipv4Addr, now: SimTime) {
        let orig_key = u32::from(originator);
        let seed = self.world.seed();
        let cache_cfg = self.config.cache;
        // A small population of broken resolvers ignores TTLs entirely
        // and stutters duplicates — the noise the sensor's 30-second
        // dedup was designed to absorb.
        let broken = self.config.broken_resolver_fraction > 0.0
            && bernoulli(
                hash1(seed ^ 0xB40_CE2, u32::from(querier.0) as u64),
                self.config.broken_resolver_fraction,
            );
        let resolver = self
            .resolvers
            .entry(querier)
            .or_insert_with(|| ResolverState::new(seed, querier, shared, cache_cfg));

        // 1. Leaf cache (positive and negative answers suppress alike).
        if !broken && resolver.ptr_cache.is_cached(orig_key, now) {
            self.stats.leaf_cache_hits += 1;
            return;
        }

        // 2. Delegation walk. The root serves `in-addr.arpa` and the /8
        // zones; the national registry (where one exists) serves the /16
        // zone and is asked for /24 delegations; otherwise an
        // uninstrumented RIR server plays that part.
        //
        // Resolvers using QNAME minimization still walk the tree, but
        // their upper-level queries carry only the zone being fetched,
        // not the full reverse name — the authority cannot recover the
        // originator, so nothing useful is logged above the final
        // authority.
        let minimizing = self.config.qname_minimization > 0.0
            && bernoulli(
                hash1(self.world.seed() ^ 0x9A17_u64, u32::from(querier.0) as u64),
                self.config.qname_minimization,
            );
        let delegation = self.world.delegation(originator);
        let root = self.root_for(querier);
        let slash8 = u32::from(originator) >> 24;
        let slash24 = u32::from(originator) >> 8;
        let ref_cfg = self.config.referral;

        // /8 referral from the root, warmed by ~1 % of background traffic.
        // Broken resolvers ignore referral TTLs too: every lookup walks.
        let resolver = self.resolvers.get_mut(&querier).expect("just inserted");
        if broken
            || resolver.check_referral(
                ReferralLevel::Root,
                slash8,
                now,
                ref_cfg.root_ttl,
                ref_cfg.root_bg_share,
            ) == ReferralCheck::Cold
        {
            self.stats.root_queries += 1;
            if !minimizing {
                self.record(AuthorityId::Root(root), now, querier, originator, Rcode::NoError);
                if broken {
                    self.record_stutter(
                        AuthorityId::Root(root),
                        now,
                        querier,
                        originator,
                        Rcode::NoError,
                    );
                }
            }
        }

        let country = self.world.country_of(originator);
        match delegation {
            Delegation::Undelegated { at_national } => {
                // The chain dies below the observable parent, which
                // answers NXDOMAIN for the leaf name itself. Every
                // leaf-cache miss pays this cost — undelegated space is
                // loud at its parent.
                let (auth, neg_ttl) = if at_national {
                    match country.map(AuthorityId::National) {
                        Some(a) => {
                            self.stats.national_queries += 1;
                            (Some(a), ref_cfg.national_neg_ttl)
                        }
                        None => (None, ref_cfg.national_neg_ttl),
                    }
                } else {
                    self.stats.root_queries += 1;
                    (Some(AuthorityId::Root(root)), ref_cfg.root_neg_ttl)
                };
                if let Some(auth) = auth {
                    if !minimizing {
                        self.record(auth, now, querier, originator, Rcode::NxDomain);
                        if broken {
                            self.record_stutter(auth, now, querier, originator, Rcode::NxDomain);
                        }
                    }
                }
                let resolver = self.resolvers.get_mut(&querier).expect("present");
                resolver.ptr_cache.insert(orig_key, neg_ttl, now);
                return;
            }
            Delegation::Delegated { via_national } => {
                // /24 delegation fetch. Only national registries are
                // instrumentable; the per-/24 key means background
                // traffic almost never keeps it warm, so nearly every
                // distinct resolver surfaces here once per TTL.
                let resolver = self.resolvers.get_mut(&querier).expect("present");
                if (broken
                    || resolver.check_referral(
                        ReferralLevel::National,
                        slash24,
                        now,
                        ref_cfg.national_ttl,
                        ref_cfg.national_bg_share,
                    ) == ReferralCheck::Cold)
                    && via_national
                {
                    if let Some(auth) = country.map(AuthorityId::National) {
                        self.stats.national_queries += 1;
                        if !minimizing {
                            self.record(auth, now, querier, originator, Rcode::NoError);
                            if broken {
                                self.record_stutter(auth, now, querier, originator, Rcode::NoError);
                            }
                        }
                    }
                }
            }
        }

        // 3. Leaf query at the final authority.
        self.stats.final_queries += 1;
        let policy = self
            .ptr_overrides
            .get(&originator)
            .cloned()
            .unwrap_or_else(|| self.world.ptr_policy(originator));
        let final_auth = AuthorityId::final_for(originator);
        match policy {
            PtrPolicy::Exists { ttl } => {
                self.record(final_auth, now, querier, originator, Rcode::NoError);
                if broken {
                    self.record_stutter(final_auth, now, querier, originator, Rcode::NoError);
                }
                let resolver = self.resolvers.get_mut(&querier).expect("present");
                resolver.ptr_cache.insert(orig_key, ttl, now);
            }
            PtrPolicy::NxDomain { neg_ttl } => {
                self.record(final_auth, now, querier, originator, Rcode::NxDomain);
                if broken {
                    self.record_stutter(final_auth, now, querier, originator, Rcode::NxDomain);
                }
                let resolver = self.resolvers.get_mut(&querier).expect("present");
                resolver.ptr_cache.insert(orig_key, neg_ttl, now);
            }
            PtrPolicy::Unreachable => {
                // The server is dead: it cannot log, and the resolver
                // remembers the failure only briefly.
                let servfail_ttl = ref_cfg.servfail_ttl;
                let resolver = self.resolvers.get_mut(&querier).expect("present");
                resolver.ptr_cache.insert(orig_key, servfail_ttl, now);
            }
        }
    }

    /// Which root this resolver walks to, stable per resolver, biased by
    /// the resolver's region (paper §VI-B: M-Root's Asian provisioning
    /// gives it a different view than B-Root's US-only site).
    fn root_for(&self, querier: ResolverId) -> RootServer {
        let region = self.world.region_of(querier.0).unwrap_or(Region::Americas);
        let h = hash1(self.world.seed() ^ 0xB00_7007, u32::from(querier.0) as u64);
        if bernoulli(h, region.m_root_preference()) {
            RootServer::M
        } else {
            RootServer::B
        }
    }

    /// A broken resolver's duplicate burst: 2-5 repeats of the same
    /// query within ten seconds of the original.
    fn record_stutter(
        &mut self,
        authority: AuthorityId,
        now: SimTime,
        querier: ResolverId,
        originator: Ipv4Addr,
        rcode: Rcode,
    ) {
        let h = hash1(
            self.world.seed() ^ 0x57u64,
            (u32::from(querier.0) as u64) ^ ((u32::from(originator) as u64) << 32) ^ now.secs(),
        );
        let repeats = 2 + (h % 4);
        for k in 0..repeats {
            let dt = 1 + (crate::det::mix64(h ^ k) % 9);
            self.record(
                authority,
                now + bs_dns::SimDuration::from_secs(dt),
                querier,
                originator,
                rcode,
            );
        }
    }

    /// Record a query arrival at `authority`, honouring observation and
    /// sampling configuration.
    fn record(
        &mut self,
        authority: AuthorityId,
        time: SimTime,
        querier: ResolverId,
        originator: Ipv4Addr,
        rcode: Rcode,
    ) {
        if !self.config.observed.contains(&authority) {
            return;
        }
        let count = self.arrival_counters.entry(authority).or_insert(0);
        let seq = *count;
        *count += 1;
        if let Some(&n) = self.config.sampling.get(&authority) {
            if !seq.is_multiple_of(n as u64) {
                return;
            }
        }
        self.stats.logged_records += 1;
        self.logs
            .get_mut(&authority)
            .expect("observed authorities have logs")
            .push(QueryLogRecord { time, querier: querier.0, originator, rcode });
    }

    /// Logs accumulated so far.
    pub fn logs(&self) -> &AuthorityLogs {
        &self.logs
    }

    /// Consume the simulator, returning the logs.
    pub fn into_logs(mut self) -> AuthorityLogs {
        self.publish_metrics();
        self.logs
    }

    /// Counters for the run.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Number of distinct resolvers that have been exercised.
    pub fn resolver_count(&self) -> usize {
        self.resolvers.len()
    }

    /// Drop expired cache entries everywhere and forget resolvers with
    /// no remaining state. Long-running dataset builds call this
    /// between days to keep memory proportional to the *live* cache
    /// footprint rather than the whole history. Forgotten resolvers are
    /// recreated deterministically on their next lookup (only their
    /// private roll counters restart — a stochastic detail, not an
    /// observable bias).
    pub fn sweep(&mut self, now: SimTime) {
        self.resolvers.retain(|_, r| !r.sweep(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ContactKind;
    use crate::world::WorldConfig;
    use bs_dns::SimDuration;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    /// Find an address whose host reacts to SMTP by direct resolution,
    /// inside delegated space, so tests get a deterministic signal.
    fn find_direct_mail_target(w: &World, orig: Ipv4Addr) -> Contact {
        for i in 0..3_000_000u64 {
            let t = w.random_public_addr(crate::det::hash1(0xF1, i));
            let c =
                Contact { time: SimTime(0), originator: orig, target: t, kind: ContactKind::Smtp };
            let rs = w.reactions(&c);
            if rs.len() == 1 && rs[0].direct && rs[0].querier.0 == t {
                return c;
            }
        }
        panic!("no direct mail target found");
    }

    fn delegated_named_originator(w: &World) -> Ipv4Addr {
        for i in 0..100_000u64 {
            let o = w.random_public_addr(crate::det::hash1(0xF2, i));
            if matches!(w.delegation(o), Delegation::Delegated { .. })
                && matches!(w.ptr_policy(o), PtrPolicy::Exists { .. })
            {
                return o;
            }
        }
        panic!("no delegated named originator");
    }

    #[test]
    fn final_authority_sees_first_lookup_and_caches_repeat() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let c = find_direct_mail_target(&w, orig);
        let final_auth = AuthorityId::final_for(orig);
        let mut sim = Simulator::new(&w, SimulatorConfig::observing([final_auth]));
        sim.contact(c);
        assert_eq!(sim.logs()[&final_auth].len(), 1, "first lookup reaches final authority");
        // Immediate repeat: leaf cache absorbs it.
        let mut c2 = c;
        c2.time = SimTime(10);
        sim.contact(c2);
        assert_eq!(sim.logs()[&final_auth].len(), 1, "cached repeat adds nothing");
        assert_eq!(sim.stats().leaf_cache_hits, 1);
        // After the PTR TTL the record expires and the authority is asked again.
        let ttl = match w.ptr_policy(orig) {
            PtrPolicy::Exists { ttl } => ttl,
            other => panic!("expected Exists, got {other:?}"),
        };
        let mut c3 = c;
        c3.time = SimTime(0) + SimDuration::from_secs(ttl as u64 + 1);
        sim.contact(c3);
        assert_eq!(sim.logs()[&final_auth].len(), 2, "expired record re-queried");
    }

    #[test]
    fn unobserved_authorities_keep_no_logs() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let c = find_direct_mail_target(&w, orig);
        let mut sim = Simulator::new(&w, SimulatorConfig::observing([]));
        sim.contact(c);
        assert!(sim.logs().is_empty());
        assert!(sim.stats().final_queries >= 1, "queries still happen unobserved");
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let final_auth = AuthorityId::final_for(orig);
        let config = SimulatorConfig::observing([final_auth]).with_sampling(final_auth, 10);
        let mut sim = Simulator::new(&w, config);
        // Generate many distinct queriers by touching many targets.
        let mut sent = 0u64;
        for i in 0..3_000_000u64 {
            if sent >= 400 {
                break;
            }
            let t = w.random_public_addr(crate::det::hash1(0xF3, i));
            let c = Contact {
                time: SimTime(sent),
                originator: orig,
                target: t,
                kind: ContactKind::Smtp,
            };
            if !w.reactions(&c).is_empty() {
                sent += 1;
            }
            sim.contact(c);
        }
        let arrived = sim.arrival_counters[&final_auth];
        let kept = sim.logs()[&final_auth].len() as u64;
        assert!(arrived >= 100, "arrived={arrived}");
        // Deterministic 1-in-10: ceil(arrived / 10).
        assert_eq!(kept, arrived.div_ceil(10), "arrived={arrived} kept={kept}");
    }

    #[test]
    fn undelegated_space_hits_parent_with_nxdomain() {
        let w = world();
        // Find an undelegated originator in non-national space.
        let mut orig = None;
        for i in 0..300_000u64 {
            let o = w.random_public_addr(crate::det::hash1(0xF4, i));
            if matches!(w.delegation(o), Delegation::Undelegated { at_national: false }) {
                orig = Some(o);
                break;
            }
        }
        let orig = orig.expect("undelegated space exists");
        let both_roots = [AuthorityId::Root(RootServer::B), AuthorityId::Root(RootServer::M)];
        let mut sim = Simulator::new(&w, SimulatorConfig::observing(both_roots));
        let c = find_direct_mail_target(&w, orig);
        sim.contact(c);
        let root_records: usize = both_roots.iter().map(|a| sim.logs()[a].len()).sum();
        assert!(root_records >= 1, "undelegated lookup must reach a root");
        let nx = both_roots
            .iter()
            .flat_map(|a| sim.logs()[a].records())
            .any(|r| r.rcode == Rcode::NxDomain);
        assert!(nx, "undelegated answer is NXDOMAIN");
        assert_eq!(sim.stats().final_queries, 0, "nothing reaches a final authority");
    }

    #[test]
    fn ptr_override_with_zero_ttl_disables_caching() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let final_auth = AuthorityId::final_for(orig);
        let mut sim = Simulator::new(&w, SimulatorConfig::observing([final_auth]));
        sim.override_ptr_policy(orig, PtrPolicy::Exists { ttl: 0 });
        let c = find_direct_mail_target(&w, orig);
        for k in 0..5u64 {
            let mut ck = c;
            ck.time = SimTime(k * 60);
            sim.contact(ck);
        }
        assert_eq!(sim.logs()[&final_auth].len(), 5, "TTL 0 means every lookup arrives");
    }

    #[test]
    fn roots_see_far_less_than_final_authority() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let final_auth = AuthorityId::final_for(orig);
        let observed =
            [final_auth, AuthorityId::Root(RootServer::B), AuthorityId::Root(RootServer::M)];
        let mut sim = Simulator::new(&w, SimulatorConfig::observing(observed));
        sim.override_ptr_policy(orig, PtrPolicy::Exists { ttl: 0 });
        // A large scan: many targets, one contact each.
        let mut t = 0u64;
        for i in 0..400_000u64 {
            let target = w.random_public_addr(crate::det::hash1(0xF5, i));
            t += 1;
            sim.contact(Contact {
                time: SimTime(t / 100),
                originator: orig,
                target,
                kind: ContactKind::ProbeTcp(22),
            });
        }
        let finals = sim.logs()[&final_auth].len();
        let roots = sim.logs()[&observed[1]].len() + sim.logs()[&observed[2]].len();
        assert!(finals > 100, "final saw {finals}");
        assert!(
            (roots as f64) < (finals as f64) * 0.25,
            "roots ({roots}) should be heavily attenuated vs final ({finals})"
        );
    }

    #[test]
    fn sweep_forgets_stateless_resolvers_without_changing_observations() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let final_auth = AuthorityId::final_for(orig);
        let mut sim = Simulator::new(&w, SimulatorConfig::observing([final_auth]));
        let c = find_direct_mail_target(&w, orig);
        sim.contact(c);
        assert!(sim.resolver_count() >= 1);
        // Far in the future everything has expired.
        sim.sweep(SimTime::from_days(30));
        assert_eq!(sim.resolver_count(), 0, "all state expired");
        // A repeat contact re-creates the resolver and queries again.
        let mut c2 = c;
        c2.time = SimTime::from_days(31);
        sim.contact(c2);
        assert_eq!(sim.logs()[&final_auth].len(), 2);
    }

    #[test]
    fn broken_resolvers_stutter_and_ignore_caches() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let final_auth = AuthorityId::final_for(orig);
        let c = find_direct_mail_target(&w, orig);
        let run = |broken: f64| {
            let mut cfg = SimulatorConfig::observing([final_auth]);
            cfg.broken_resolver_fraction = broken;
            let mut sim = Simulator::new(&w, cfg);
            sim.contact(c);
            let mut c2 = c;
            c2.time = SimTime(40); // within any sane PTR TTL
            sim.contact(c2);
            sim.into_logs()[&final_auth].len()
        };
        let clean = run(0.0);
        let broken = run(1.0);
        assert_eq!(clean, 1, "well-behaved resolver queries once");
        // Broken: 1 + 2..=5 stutters per lookup, two uncached lookups.
        assert!(broken >= 6, "broken resolver should hammer: {broken} records");
        // The stutter burst stays within the sensor's dedup window.
        let mut cfg = SimulatorConfig::observing([final_auth]);
        cfg.broken_resolver_fraction = 1.0;
        let mut sim = Simulator::new(&w, cfg);
        sim.contact(c);
        let log = &sim.logs()[&final_auth];
        let mut times: Vec<SimTime> = log.records().iter().map(|r| r.time).collect();
        times.sort();
        assert!(
            times.last().unwrap().secs() - times.first().unwrap().secs() <= 10,
            "stutter burst stays within ten seconds"
        );
    }

    #[test]
    fn full_qname_minimization_blinds_upper_levels_not_final() {
        let w = world();
        let orig = delegated_named_originator(&w);
        let final_auth = AuthorityId::final_for(orig);
        let observed =
            [final_auth, AuthorityId::Root(RootServer::B), AuthorityId::Root(RootServer::M)];
        let run = |qmin: f64| {
            let cfg = SimulatorConfig::observing(observed).with_qname_minimization(qmin);
            let mut sim = Simulator::new(&w, cfg);
            sim.override_ptr_policy(orig, PtrPolicy::Exists { ttl: 0 });
            for i in 0..120_000u64 {
                let target = w.random_public_addr(crate::det::hash1(0xF9, i));
                sim.contact(Contact {
                    time: SimTime(i / 50),
                    originator: orig,
                    target,
                    kind: ContactKind::ProbeTcp(22),
                });
            }
            let logs = sim.into_logs();
            let roots = logs[&observed[1]].len() + logs[&observed[2]].len();
            (logs[&final_auth].len(), roots)
        };
        let (final_plain, roots_plain) = run(0.0);
        let (final_qmin, roots_qmin) = run(1.0);
        assert_eq!(roots_qmin, 0, "full adoption blinds the roots");
        assert!(roots_plain > 0, "baseline roots see something");
        // The final authority is unaffected (identical walk below).
        assert_eq!(final_plain, final_qmin);
    }

    #[test]
    fn resolver_choice_of_root_is_sticky() {
        let w = world();
        let sim = Simulator::new(&w, SimulatorConfig::observing([]));
        let q = ResolverId("98.7.0.10".parse().unwrap());
        let first = sim.root_for(q);
        for _ in 0..10 {
            assert_eq!(sim.root_for(q), first);
        }
    }
}
