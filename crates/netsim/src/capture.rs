//! Packet-level captures: query logs as real DNS messages.
//!
//! The paper's data arrives as packet captures or `dnstap` logs
//! (§III-A: "DNS packet capture techniques are widely used"). This
//! module round-trips a [`QueryLog`] through that representation: every
//! record becomes an actual wire-format query/response exchange,
//! encoded with the RFC 1035 codec from `bs-dns`, and ingestion decodes
//! the packets and re-applies the paper's collection filter (PTR over
//! `in-addr.arpa` only). Corrupted frames are skipped and counted, the
//! way a capture pipeline tolerates packet damage.
//!
//! # Format
//!
//! ```text
//! magic  "BSCAP1\n"
//! frame* direction:u8 (0 = query to authority, 1 = response)
//!        peer:u32     (the querier's IPv4 address, big-endian)
//!        time:u64     (seconds since scenario epoch, big-endian)
//!        len:u16      (message length, big-endian)
//!        message      (RFC 1035 wire format)
//! ```

use crate::log::{QueryLog, QueryLogRecord};
use bs_dns::message::{Message, QType, RecordData, ResourceRecord};
use bs_dns::reverse::{parse_reverse_v4, reverse_name};
use bs_dns::{DomainName, Rcode, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// Magic bytes opening a capture stream.
pub const MAGIC: &[u8; 7] = b"BSCAP1\n";

/// Errors from reading a capture stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// A frame header was truncated.
    TruncatedFrame {
        /// Byte offset of the broken frame.
        offset: usize,
    },
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::BadMagic => write!(f, "missing BSCAP1 magic"),
            CaptureError::TruncatedFrame { offset } => {
                write!(f, "truncated frame at byte {offset}")
            }
        }
    }
}

impl std::error::Error for CaptureError {}

/// Statistics from reading a capture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Frames read.
    pub frames: u64,
    /// Frames whose DNS payload failed to decode (skipped).
    pub undecodable: u64,
    /// Decoded messages that were not reverse-DNS responses (filtered,
    /// like the paper's collection step).
    pub filtered: u64,
    /// Records recovered.
    pub records: u64,
}

fn put_frame(out: &mut Vec<u8>, direction: u8, peer: Ipv4Addr, time: SimTime, msg: &Message) {
    let bytes = msg.encode();
    out.push(direction);
    out.extend_from_slice(&u32::from(peer).to_be_bytes());
    out.extend_from_slice(&time.secs().to_be_bytes());
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(&bytes);
}

/// Serialize a query log as a capture: one query/response exchange per
/// record, with transaction IDs derived from the record sequence.
pub fn write_capture(log: &QueryLog) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + log.len() * 96);
    out.extend_from_slice(MAGIC);
    for (seq, r) in log.records().iter().enumerate() {
        let id = (seq as u16).wrapping_mul(31).wrapping_add(7);
        let query = Message::query(id, reverse_name(r.originator), QType::Ptr);
        let mut response = Message::response(&query, r.rcode, Vec::new());
        if r.rcode == Rcode::NoError {
            // A nominal PTR answer (the sensor never reads it; the
            // paper explicitly ignores the originator's own name).
            response.answers.push(ResourceRecord {
                name: query.questions[0].qname.clone(),
                ttl: 3600,
                data: RecordData::Ptr(DomainName::parse("host.invalid").expect("static name")),
            });
        }
        put_frame(&mut out, 0, r.querier, r.time, &query);
        put_frame(&mut out, 1, r.querier, r.time, &response);
    }
    out
}

/// Parse a capture back into a query log, recovering records from the
/// *response* frames (they carry both the question and the rcode).
/// Returns the log plus read statistics.
pub fn read_capture(bytes: &[u8]) -> Result<(QueryLog, CaptureStats), CaptureError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CaptureError::BadMagic);
    }
    let mut log = QueryLog::new();
    let mut stats = CaptureStats::default();
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        // direction(1) + peer(4) + time(8) + len(2)
        if pos + 15 > bytes.len() {
            return Err(CaptureError::TruncatedFrame { offset: pos });
        }
        let direction = bytes[pos];
        let peer = Ipv4Addr::from(u32::from_be_bytes(
            bytes[pos + 1..pos + 5].try_into().expect("4 bytes"),
        ));
        let time =
            SimTime(u64::from_be_bytes(bytes[pos + 5..pos + 13].try_into().expect("8 bytes")));
        let len =
            u16::from_be_bytes(bytes[pos + 13..pos + 15].try_into().expect("2 bytes")) as usize;
        let body_start = pos + 15;
        if body_start + len > bytes.len() {
            return Err(CaptureError::TruncatedFrame { offset: pos });
        }
        let body = &bytes[body_start..body_start + len];
        pos = body_start + len;
        stats.frames += 1;

        // Only responses carry the rcode; query frames are redundant.
        if direction != 1 {
            continue;
        }
        let Ok(msg) = Message::decode(body) else {
            stats.undecodable += 1;
            continue;
        };
        let reverse = msg.is_response
            && msg
                .question()
                .map(|q| q.qtype == QType::Ptr && parse_reverse_v4(&q.qname).is_some())
                .unwrap_or(false);
        if !reverse {
            stats.filtered += 1;
            continue;
        }
        let originator = parse_reverse_v4(&msg.question().expect("checked").qname)
            .expect("checked reverse name");
        log.push(QueryLogRecord { time, querier: peer, originator, rcode: msg.rcode });
        stats.records += 1;
    }
    Ok((log, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> QueryLog {
        let mut log = QueryLog::new();
        for (t, q, o, rc) in [
            (0u64, "192.0.2.1", "203.0.113.9", Rcode::NoError),
            (30, "192.0.2.53", "203.0.113.9", Rcode::NxDomain),
            (65, "198.51.100.7", "203.0.113.10", Rcode::ServFail),
        ] {
            log.push(QueryLogRecord {
                time: SimTime(t),
                querier: q.parse().unwrap(),
                originator: o.parse().unwrap(),
                rcode: rc,
            });
        }
        log
    }

    #[test]
    fn capture_round_trips() {
        let log = sample_log();
        let bytes = write_capture(&log);
        let (back, stats) = read_capture(&bytes).unwrap();
        assert_eq!(back, log);
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.records, 3);
        assert_eq!(stats.undecodable, 0);
    }

    #[test]
    fn empty_log_round_trips() {
        let log = QueryLog::new();
        let (back, stats) = read_capture(&write_capture(&log)).unwrap();
        assert!(back.is_empty());
        assert_eq!(stats.frames, 0);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(read_capture(b"NOTCAP!"), Err(CaptureError::BadMagic));
        assert_eq!(read_capture(b""), Err(CaptureError::BadMagic));
    }

    #[test]
    fn truncation_is_detected_with_offset() {
        let bytes = write_capture(&sample_log());
        let cut = &bytes[..bytes.len() - 3];
        match read_capture(cut) {
            Err(CaptureError::TruncatedFrame { offset }) => assert!(offset > MAGIC.len()),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_payload_is_skipped_not_fatal() {
        let mut bytes = write_capture(&sample_log());
        // Smash the middle of the first response's DNS payload in a way
        // that breaks name parsing (0xFF is an invalid label type).
        let start = MAGIC.len() + 15;
        // First frame is the query; find the second frame.
        let qlen = u16::from_be_bytes(bytes[start - 2..start].try_into().unwrap()) as usize;
        let resp_header = start + qlen;
        let resp_body = resp_header + 15;
        for b in &mut bytes[resp_body + 12..resp_body + 16] {
            *b = 0xFF;
        }
        let (log, stats) = read_capture(&bytes).unwrap();
        assert_eq!(stats.undecodable, 1);
        assert_eq!(log.len(), 2, "remaining records recovered");
    }

    #[test]
    fn non_reverse_responses_are_filtered() {
        // Hand-build a capture with a forward A response: it must be
        // dropped by the collection filter, like the paper's step one.
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let fwd_q = Message::query(1, DomainName::parse("www.example.com").unwrap(), QType::A);
        let fwd_r = Message::response(&fwd_q, Rcode::NoError, vec![]);
        put_frame(&mut out, 1, "192.0.2.1".parse().unwrap(), SimTime(5), &fwd_r);
        let (log, stats) = read_capture(&out).unwrap();
        assert!(log.is_empty());
        assert_eq!(stats.filtered, 1);
    }
}
