//! Shared identifier and event types for the simulated Internet.

use bs_dns::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A two-letter country code. The world assigns one to every /8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Construct from a two-ASCII-letter string such as `"jp"`.
    pub fn new(s: &str) -> Option<Self> {
        let b = s.as_bytes();
        if b.len() == 2 && b.iter().all(|c| c.is_ascii_lowercase()) {
            Some(CountryCode([b[0], b[1]]))
        } else {
            None
        }
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("constructed from ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An autonomous-system number. The world assigns one per /16-aligned
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A recursive resolver, identified by the IPv4 address it queries from.
/// This address is what authorities log as the *querier*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResolverId(pub Ipv4Addr);

impl fmt::Display for ResolverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The role a host plays in its network, which determines both its
/// reverse name (paper §III-C's keyword classes) and how it reacts to
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostRole {
    /// Residential CPE / home machine with an auto-generated name like
    /// `home1-2-3-4.example.com`.
    Home,
    /// A mail server (`mail.example.com`, `mx2.example.jp`, …).
    MailServer,
    /// A shared recursive name server (`ns.isp.net`, `cache1.example.com`).
    NameServer,
    /// A firewall that logs probes (`fw.example.com`).
    Firewall,
    /// A dedicated anti-spam appliance (`ironport1.example.com`).
    AntiSpam,
    /// A web server (`www.example.com`).
    WebServer,
    /// An NTP server (`ntp1.example.org`).
    NtpServer,
    /// CDN edge infrastructure (Akamai-style names).
    CdnNode,
    /// Cloud infrastructure named under a hosting provider
    /// (`ec2-…​.amazonaws.sim`).
    CloudNode,
    /// A generic enterprise host with an unrevealing name.
    Generic,
}

impl HostRole {
    /// All roles, for exhaustive iteration in tests and tables.
    pub const ALL: [HostRole; 10] = [
        HostRole::Home,
        HostRole::MailServer,
        HostRole::NameServer,
        HostRole::Firewall,
        HostRole::AntiSpam,
        HostRole::WebServer,
        HostRole::NtpServer,
        HostRole::CdnNode,
        HostRole::CloudNode,
        HostRole::Generic,
    ];
}

/// The outcome of reverse-resolving a querier's own address, which feeds
/// the sensor's static features: a name, a provable non-existence
/// (`nxdomain`), or an unreachable authority (`unreach`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NameOutcome {
    /// The reverse lookup returned this name.
    Name(bs_dns::DomainName),
    /// The reverse zone exists but the address has no PTR record.
    NxDomain,
    /// The authority for the reverse zone did not answer.
    Unreachable,
}

/// The kind of traffic an originator sends a target. Application classes
/// in `bs-activity` map to these network-level kinds; the target-side
/// reaction model keys off them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContactKind {
    /// SMTP delivery (mailing lists, legitimate bulk mail).
    Smtp,
    /// SMTP delivery that content filters score as spam. Targets cannot
    /// see intent, but anti-spam appliances inspect suspicious mail more
    /// aggressively — including extra reverse lookups — which is what
    /// gives spammers their heavier `antispam` querier fraction.
    SmtpSpam,
    /// A TCP SYN probe to the given port.
    ProbeTcp(u16),
    /// A UDP probe to the given port.
    ProbeUdp(u16),
    /// An ICMP echo probe.
    ProbeIcmp,
    /// An HTTP fetch initiated by the originator (crawlers).
    HttpFetch,
    /// Target-initiated web object fetch that exposes the originator to
    /// the target's middleboxes (ad trackers, web bugs).
    WebBug,
    /// Target-initiated content delivery from a CDN edge.
    CdnDelivery,
    /// Target-initiated cloud application traffic.
    CloudApp,
    /// Target-initiated software-update poll.
    UpdatePoll,
    /// DNS service traffic (large open resolvers and roots as originators).
    DnsService,
    /// NTP service traffic.
    NtpService,
    /// Mobile push-notification keep-alive (TCP 5223).
    PushKeepalive,
    /// Peer-to-peer protocol chatter.
    P2p,
}

/// One originator→target interaction at a point in simulated time.
///
/// This is the unit of work the simulator consumes; activity models
/// produce streams of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contact {
    /// When the traffic arrives at the target.
    pub time: SimTime,
    /// The source of the network-wide activity.
    pub originator: Ipv4Addr,
    /// The host being touched.
    pub target: Ipv4Addr,
    /// What the traffic looks like on the wire.
    pub kind: ContactKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_code_validation() {
        assert_eq!(CountryCode::new("jp").unwrap().as_str(), "jp");
        assert!(CountryCode::new("JP").is_none());
        assert!(CountryCode::new("jpn").is_none());
        assert!(CountryCode::new("j").is_none());
        assert!(CountryCode::new("j1").is_none());
    }

    #[test]
    fn display_impls() {
        assert_eq!(CountryCode::new("us").unwrap().to_string(), "us");
        assert_eq!(AsId(64500).to_string(), "AS64500");
        assert_eq!(ResolverId("192.0.2.53".parse().unwrap()).to_string(), "192.0.2.53");
    }

    #[test]
    fn host_role_all_is_exhaustive_and_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = HostRole::ALL.iter().collect();
        assert_eq!(set.len(), HostRole::ALL.len());
    }
}
