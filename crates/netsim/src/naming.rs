//! Reverse-name generation.
//!
//! The sensor's static features come entirely from querier domain names
//! (paper §III-C): `home1-2-3-4.example.com`, `mail.example.jp`,
//! `ns.isp.net`, and so on. This module generates those names for the
//! simulated world, following real Internet naming conventions, so that
//! an *independently implemented* keyword matcher in `bs-sensor` can
//! recover the role mix the way the paper's matcher does on real data.
//!
//! Names are deterministic functions of `(seed, address, role)`.

use crate::det::{bounded, hash2, hash3, mix64};
use crate::types::{CountryCode, HostRole};
use bs_dns::name::{DomainName, Label};
use std::net::Ipv4Addr;

/// Hostname keywords for residential/dynamic pools (paper's `home` list).
const HOME_KEYWORDS: &[&str] = &[
    "ap", "cable", "cpe", "customer", "dsl", "dynamic", "fiber", "flets", "home", "host", "ip",
    "net", "pool", "pop", "retail", "user",
];

/// Keywords for mail infrastructure (paper's `mail` list).
const MAIL_KEYWORDS: &[&str] = &[
    "mail",
    "mx",
    "smtp",
    "post",
    "correo",
    "poczta",
    "sendmail",
    "lists",
    "newsletter",
    "zimbra",
    "mta",
    "imap",
];

/// Keywords for name servers (paper's `ns` list).
const NS_KEYWORDS: &[&str] = &["cns", "dns", "ns", "cache", "resolv", "name"];

/// Keywords for firewalls (paper's `fw` list).
const FW_KEYWORDS: &[&str] = &["firewall", "wall", "fw"];

/// Keywords for anti-spam appliances (paper's `antispam` list).
const ANTISPAM_KEYWORDS: &[&str] = &["ironport", "spam"];

/// Suffixes used by simulated CDN operators (the paper matches Akamai,
/// Edgecast, CDNetworks, LLNW; ours are fictional lookalikes).
pub const CDN_SUFFIXES: &[&str] =
    &["akamai.sim", "edgecast.sim", "cdnetworks.sim", "llnw.sim", "chinacache.sim"];

/// Suffix used by the simulated AWS.
pub const AWS_SUFFIX: &str = "amazonaws.sim";

/// Suffix used by the simulated Azure.
pub const MS_SUFFIX: &str = "azure.sim";

/// Suffix used by the simulated Google.
pub const GOOGLE_SUFFIX: &str = "google.sim";

/// Generic TLD pool for organization domains.
const GTLDS: &[&str] = &["com", "net", "org"];

/// Syllables for synthetic organization names.
const SYLLABLES: &[&str] = &[
    "ka", "ne", "to", "ri", "mo", "sa", "lu", "ven", "dor", "bel", "tan", "gra", "pix", "nor",
    "ser", "vi", "tel", "da", "zu", "mi",
];

/// Build a pronounceable organization label from a hash.
fn org_label(h: u64, syllable_count: usize) -> String {
    let mut s = String::new();
    let mut x = h;
    for _ in 0..syllable_count {
        s.push_str(SYLLABLES[bounded(x, SYLLABLES.len() as u64) as usize]);
        x = mix64(x);
    }
    // A numeric suffix on roughly a third of orgs, like real ISP branding.
    if x.is_multiple_of(3) {
        s.push_str(&format!("{}", x % 90 + 10));
    }
    s
}

/// The domain an organization hangs its hosts under, e.g.
/// `kanet23.jp` or `venlu.net`. Deterministic per `(seed, org_key)`.
///
/// `org_key` is typically the /24 or /16 the organization owns;
/// `country` steers the TLD (country TLD two-thirds of the time).
pub fn org_domain(seed: u64, org_key: u64, country: CountryCode) -> DomainName {
    let h = hash2(seed ^ 0x0126_5732_81AC_0001, org_key, 1);
    let label = org_label(h, 2 + (h % 2) as usize);
    let tld_h = mix64(h ^ 0x77);
    let tld = if !tld_h.is_multiple_of(3) {
        country.as_str().to_string()
    } else {
        GTLDS[bounded(tld_h, GTLDS.len() as u64) as usize].to_string()
    };
    DomainName::parse(&format!("{label}.{tld}")).expect("generated org domain is valid")
}

fn pick<'a>(h: u64, table: &'a [&'a str]) -> &'a str {
    table[bounded(h, table.len() as u64) as usize]
}

/// Generate the reverse name for a host, given its role and the domain
/// of the organization that owns its block.
///
/// The left-most label carries the role keyword (possibly with a numeric
/// suffix or embedded address octets), because the sensor's matcher
/// favours left-most labels exactly as the paper's does.
pub fn host_name(seed: u64, addr: Ipv4Addr, role: HostRole, org: &DomainName) -> DomainName {
    let o = addr.octets();
    let h = hash3(seed ^ 0x4057_B3D0_31C5_0002, u32::from(addr) as u64, role_tag(role), 7);
    let leftmost: String = match role {
        HostRole::Home => {
            let kw = pick(h, HOME_KEYWORDS);
            // Two real-world shapes: kw1-2-3-4 and kw-1-2-3-4.
            if mix64(h).is_multiple_of(2) {
                format!("{kw}{}-{}-{}-{}", o[0], o[1], o[2], o[3])
            } else {
                format!("{kw}-{}-{}-{}-{}", o[0], o[1], o[2], o[3])
            }
        }
        HostRole::MailServer => numbered(h, pick(h, MAIL_KEYWORDS)),
        HostRole::NameServer => numbered(h, pick(h, NS_KEYWORDS)),
        HostRole::Firewall => numbered(h, pick(h, FW_KEYWORDS)),
        HostRole::AntiSpam => numbered(h, pick(h, ANTISPAM_KEYWORDS)),
        HostRole::WebServer => numbered(h, "www"),
        HostRole::NtpServer => numbered(h, "ntp"),
        HostRole::CdnNode | HostRole::CloudNode => {
            // Provider-style machine label: a1-2-3-4.deploy.<provider>.
            format!("a{}-{}-{}-{}", o[0], o[1], o[2], o[3])
        }
        HostRole::Generic => {
            // Unrevealing label that matches none of the keyword tables.
            format!("{}{}", org_label(mix64(h ^ 0x99), 2), h % 100)
        }
    };
    let l = Label::new(&leftmost).expect("generated label is valid");
    org.child(l).expect("generated host name fits")
}

/// Occasionally append a digit: `mail` / `mail2` / `mx01`.
fn numbered(h: u64, kw: &str) -> String {
    match mix64(h ^ 0x1234) % 4 {
        0 => format!("{kw}{}", h % 9 + 1),
        1 => format!("{kw}0{}", h % 9 + 1),
        _ => kw.to_string(),
    }
}

/// The deployment domain for a CDN or cloud node: `deploy.akamai.sim`,
/// `compute.amazonaws.sim`, …
pub fn provider_domain(seed: u64, addr: Ipv4Addr, role: HostRole) -> DomainName {
    let h = hash2(seed ^ 0x6E5A_1B00_77F0_0003, u32::from(addr) as u64 >> 8, role_tag(role));
    let suffix = match role {
        HostRole::CdnNode => pick(h, CDN_SUFFIXES).to_string(),
        HostRole::CloudNode => {
            // Weighted toward AWS like the real cloud market.
            match mix64(h) % 5 {
                0 | 1 => AWS_SUFFIX.to_string(),
                2 => MS_SUFFIX.to_string(),
                3 => GOOGLE_SUFFIX.to_string(),
                _ => AWS_SUFFIX.to_string(),
            }
        }
        _ => unreachable!("provider_domain only applies to CDN/cloud roles"),
    };
    let zone = match mix64(h ^ 0x5150) % 3 {
        0 => "deploy",
        1 => "compute",
        _ => "edge",
    };
    DomainName::parse(&format!("{zone}.{suffix}")).expect("provider domain is valid")
}

fn role_tag(role: HostRole) -> u64 {
    HostRole::ALL.iter().position(|r| *r == role).expect("role in ALL") as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s).unwrap()
    }

    #[test]
    fn org_domains_are_deterministic_and_vary() {
        let a = org_domain(1, 100, cc("jp"));
        let b = org_domain(1, 100, cc("jp"));
        let c = org_domain(1, 101, cc("jp"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn home_names_embed_octets() {
        let org = org_domain(1, 5, cc("us"));
        let addr: Ipv4Addr = "203.5.7.9".parse().unwrap();
        let n = host_name(1, addr, HostRole::Home, &org);
        let left = n.leftmost().unwrap().to_lowercase();
        assert!(
            left.contains("203") && left.contains('5') && left.contains('7') && left.contains('9'),
            "home name should embed octets: {n}"
        );
        assert!(n.is_subdomain_of(&org));
    }

    #[test]
    fn role_keywords_appear_in_leftmost_label() {
        let org = org_domain(2, 9, cc("de"));
        let addr: Ipv4Addr = "198.51.100.25".parse().unwrap();
        let cases: &[(HostRole, &[&str])] = &[
            (HostRole::MailServer, MAIL_KEYWORDS),
            (HostRole::NameServer, NS_KEYWORDS),
            (HostRole::Firewall, FW_KEYWORDS),
            (HostRole::AntiSpam, ANTISPAM_KEYWORDS),
            (HostRole::WebServer, &["www"]),
            (HostRole::NtpServer, &["ntp"]),
        ];
        for (role, table) in cases {
            let n = host_name(2, addr, *role, &org);
            let left = n.leftmost().unwrap().to_lowercase();
            assert!(
                table.iter().any(|kw| left.starts_with(kw)),
                "{role:?} name {n} should start with one of {table:?}"
            );
        }
    }

    #[test]
    fn generic_names_match_no_keyword_table() {
        let org = org_domain(3, 77, cc("fr"));
        for i in 0..50u8 {
            let addr = Ipv4Addr::new(198, 51, i, 1);
            let n = host_name(3, addr, HostRole::Generic, &org);
            let left = n.leftmost().unwrap().to_lowercase();
            for table in [HOME_KEYWORDS, MAIL_KEYWORDS, NS_KEYWORDS, FW_KEYWORDS, ANTISPAM_KEYWORDS]
            {
                for kw in table {
                    assert!(
                        !left.starts_with(kw),
                        "generic name {left} collides with keyword {kw}"
                    );
                }
            }
        }
    }

    #[test]
    fn provider_domains_use_known_suffixes() {
        for i in 0..20u8 {
            let addr = Ipv4Addr::new(23, i, 0, 1);
            let cdn = provider_domain(4, addr, HostRole::CdnNode);
            assert!(CDN_SUFFIXES.iter().any(|s| cdn.to_string().ends_with(s)), "cdn domain {cdn}");
            let cloud = provider_domain(4, addr, HostRole::CloudNode);
            let cs = cloud.to_string();
            assert!(
                cs.ends_with(AWS_SUFFIX) || cs.ends_with(MS_SUFFIX) || cs.ends_with(GOOGLE_SUFFIX),
                "cloud domain {cs}"
            );
        }
    }

    #[test]
    fn names_are_stable_across_calls() {
        let org = org_domain(5, 1, cc("jp"));
        let addr: Ipv4Addr = "192.0.2.10".parse().unwrap();
        let a = host_name(5, addr, HostRole::MailServer, &org);
        let b = host_name(5, addr, HostRole::MailServer, &org);
        assert_eq!(a, b);
    }
}
