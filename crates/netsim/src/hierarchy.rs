//! The reverse-DNS authority hierarchy.
//!
//! Three levels of authority see backscatter, each with a different view
//! (paper §II): the **root** potentially sees all originators but is
//! heavily attenuated by caching of the top of the tree; a **national**
//! registry sees only originators inside address space delegated to its
//! country but with less attenuation; the **final** authority for an
//! originator's prefix sees every querier.
//!
//! We model two instrumented root identities, `B` and `M`, mirroring the
//! paper's B-Root (single North-American site) and M-Root (anycast sites
//! concentrated in Asia and Europe). Which root a resolver walks to is a
//! preference derived from the resolver's region, reproducing the
//! paper's observation that M-Root sees Chinese CDN activity B-Root
//! misses.

use crate::types::CountryCode;
use bs_dns::ReverseZone;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The two instrumented root-server identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RootServer {
    /// Single site on the US west coast.
    B,
    /// Seven anycast sites in Asia, North America, and Europe.
    M,
}

/// Coarse geography used for root-server affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North and South America.
    Americas,
    /// Europe, Middle East, Africa.
    Emea,
    /// Asia and Oceania.
    Apac,
}

impl Region {
    /// Probability that a resolver in this region sends its root queries
    /// to M-Root rather than B-Root. M is well provisioned in Asia and
    /// Europe; B only in North America.
    pub fn m_root_preference(self) -> f64 {
        match self {
            Region::Americas => 0.25,
            Region::Emea => 0.70,
            Region::Apac => 0.85,
        }
    }
}

/// An authority whose query stream can be instrumented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AuthorityId {
    /// One of the two modeled root servers.
    Root(RootServer),
    /// The national registry's reverse server for one country.
    National(CountryCode),
    /// The final authority for a /24 of originator space (the paper's
    /// `3.2.1.in-addr.arpa` level: "typically the originator's company
    /// or ISP").
    Final(Ipv4Addr),
}

impl AuthorityId {
    /// Final authority for the /24 containing `addr`.
    pub fn final_for(addr: Ipv4Addr) -> AuthorityId {
        let z = ReverseZone::new(addr, 24).expect("24 is a valid plen");
        AuthorityId::Final(z.prefix())
    }

    /// The level of this authority in the hierarchy.
    pub fn level(&self) -> AuthorityLevel {
        match self {
            AuthorityId::Root(_) => AuthorityLevel::Root,
            AuthorityId::National(_) => AuthorityLevel::National,
            AuthorityId::Final(_) => AuthorityLevel::Final,
        }
    }
}

impl fmt::Display for AuthorityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthorityId::Root(RootServer::B) => write!(f, "b-root"),
            AuthorityId::Root(RootServer::M) => write!(f, "m-root"),
            AuthorityId::National(cc) => write!(f, "{cc}-national"),
            AuthorityId::Final(p) => write!(f, "final-{p}/24"),
        }
    }
}

/// Position in the delegation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AuthorityLevel {
    /// Serves `in-addr.arpa` and /8 delegations.
    Root,
    /// Serves a country's /8s, delegating /16s.
    National,
    /// Serves the leaf PTR records for a /16.
    Final,
}

/// How the leaf PTR lookup for an originator resolves, as configured in
/// its final authority's zone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtrPolicy {
    /// A PTR record exists with this TTL.
    Exists {
        /// Record TTL in seconds (0 disables caching, as in the paper's
        /// controlled experiment).
        ttl: u32,
    },
    /// The name does not exist; negative answers carry this SOA MINIMUM.
    NxDomain {
        /// Negative-cache TTL from the zone SOA.
        neg_ttl: u32,
    },
    /// The final authority does not respond (dark or misconfigured
    /// space); resolvers cache the failure only briefly.
    Unreachable,
}

/// Delegation status of the /24 containing an originator: whether the
/// walk down the tree even reaches a final authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delegation {
    /// Normal: parent zones delegate down to a final /24 authority.
    Delegated {
        /// True when a national registry serves the /16 (and is asked
        /// for the /24 delegation); false means an uninstrumented RIR
        /// server does.
        via_national: bool,
    },
    /// No delegation exists below the observable parent: it answers
    /// NXDOMAIN for the leaf name itself, so *every* uncached leaf query
    /// lands on the parent. This is why scanners from unregistered
    /// hosting space light up the roots and national registries.
    Undelegated {
        /// True when the NXDOMAIN comes from a national registry rather
        /// than the root-served /8 zone.
        at_national: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_for_truncates_to_24() {
        let a = AuthorityId::final_for("203.45.67.89".parse().unwrap());
        assert_eq!(a, AuthorityId::Final("203.45.67.0".parse().unwrap()));
        assert_eq!(a.level(), AuthorityLevel::Final);
    }

    #[test]
    fn same_slash24_shares_final_authority() {
        let a = AuthorityId::final_for("203.45.67.2".parse().unwrap());
        let b = AuthorityId::final_for("203.45.67.250".parse().unwrap());
        let c = AuthorityId::final_for("203.45.68.2".parse().unwrap());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(AuthorityId::Root(RootServer::B).to_string(), "b-root");
        assert_eq!(AuthorityId::Root(RootServer::M).to_string(), "m-root");
        let jp = CountryCode::new("jp").unwrap();
        assert_eq!(AuthorityId::National(jp).to_string(), "jp-national");
    }

    #[test]
    fn root_affinity_orders_by_region() {
        assert!(Region::Apac.m_root_preference() > Region::Emea.m_root_preference());
        assert!(Region::Emea.m_root_preference() > Region::Americas.m_root_preference());
    }

    #[test]
    fn levels_order_root_first() {
        assert!(AuthorityLevel::Root < AuthorityLevel::National);
        assert!(AuthorityLevel::National < AuthorityLevel::Final);
    }
}
