//! Per-resolver cache state and the referral-warmth model.
//!
//! Two caching effects shape what each authority sees:
//!
//! 1. **Leaf PTR caching.** Once a resolver has resolved (or negatively
//!    resolved) an originator's reverse name, it answers from cache for
//!    the record TTL. This is modeled *exactly*, with a real
//!    [`bs_dns::Cache`] per resolver, because it controls per-querier
//!    query counts at the final authority.
//!
//! 2. **Delegation caching.** Walking down from the root requires NS
//!    referrals for `⟨a⟩.in-addr.arpa` (served by the root) and
//!    `⟨b⟩.⟨a⟩.in-addr.arpa` (served by the national registry where one
//!    exists). These referrals have long TTLs and are refreshed by *all*
//!    of a resolver's reverse traffic — including the background traffic
//!    our simulation does not generate. A busy ISP resolver essentially
//!    never shows up at the root; an idle CPE stub does every TTL. We
//!    model this with a stochastic renewal approximation (below) instead
//!    of simulating the whole Internet's background load.
//!
//! # The warmth model
//!
//! Each resolver has a background reverse-lookup rate `λ` (log-normally
//! distributed across resolvers, heavier for shared resolvers). For a
//! referral with TTL `T`:
//!
//! * On first touch, the referral is already warm with the stationary
//!   probability `λT / (1 + λT)` (fraction of time a renewal process
//!   with exponential idle gaps spends inside a TTL window).
//! * When a stored expiry has passed and `Δ` seconds have elapsed since
//!   it, background traffic has re-fetched the referral — making it warm
//!   without us seeing a query — with probability `1 − exp(−λΔ)`.
//! * Otherwise our query is the one that walks up, and the observing
//!   authority logs it.
//!
//! The approximation is crude but mechanistic, and it reproduces the
//! paper's root-level attenuation of roughly three orders of magnitude
//! (Fig. 4) from first principles rather than by curve fitting.

use crate::det::{bernoulli, hash2, log_normal, mix64, unit_f64};
use crate::types::ResolverId;
use bs_dns::{CacheConfig, SimDuration, SimTime};
use std::collections::HashMap;

/// A compact leaf PTR cache keyed by originator address.
///
/// Semantically this is `bs_dns::Cache` specialized to the one lookup
/// the engine performs per reaction: positive and negative entries
/// suppress upstream queries identically (the response code is decided
/// by the authority's policy, not the cache), so only the expiry needs
/// storing. Keying by `u32` instead of a lowercased QNAME string keeps
/// the hot path allocation-free — the protocol-faithful cache remains
/// in `bs-dns` for message-level use.
#[derive(Debug, Default)]
pub struct AddrPtrCache {
    map: HashMap<u32, SimTime>,
}

impl AddrPtrCache {
    /// Is a (positive or negative) answer for `addr` still cached?
    #[inline]
    pub fn is_cached(&mut self, addr: u32, now: SimTime) -> bool {
        match self.map.get(&addr) {
            Some(expiry) if *expiry > now => true,
            Some(_) => {
                self.map.remove(&addr);
                false
            }
            None => false,
        }
    }

    /// Cache an answer for `addr` with the given TTL (0 = uncached).
    #[inline]
    pub fn insert(&mut self, addr: u32, ttl: u32, now: SimTime) {
        if ttl > 0 {
            self.map.insert(addr, now + SimDuration::from_secs(ttl as u64));
        }
    }

    /// Drop expired entries; true when empty afterwards.
    pub fn expire(&mut self, now: SimTime) -> bool {
        self.map.retain(|_, e| *e > now);
        self.map.is_empty()
    }

    /// Number of live-or-stale entries held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Referral levels a resolver may need to refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReferralLevel {
    /// `⟨a⟩.in-addr.arpa` NS sets — served by the root, keyed per /8.
    /// Background traffic across the whole /8 keeps these warm.
    Root,
    /// `⟨c⟩.⟨b⟩.⟨a⟩.in-addr.arpa` NS sets — served by the national
    /// registry's /16 zone, keyed per **/24 of the originator**. Almost
    /// no background traffic touches any specific /24, so nearly every
    /// distinct resolver surfaces at the national registry once per TTL
    /// — which is why JP-DNS sees tens of thousands of queriers for a
    /// single busy spammer while the roots see a handful.
    National,
}

/// Outcome of consulting the referral cache for one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferralCheck {
    /// Cached (ours or background-refreshed): no upward query.
    Warm,
    /// Our query walks up; the parent authority sees it.
    Cold,
}

/// Mutable state of one recursive resolver.
#[derive(Debug)]
pub struct ResolverState {
    /// Exact leaf PTR cache (positive + negative entries).
    pub ptr_cache: AddrPtrCache,
    /// Background reverse-lookup rate in queries/second.
    background_rate: f64,
    /// Stored referral expiries keyed by (level, zone key).
    referrals: HashMap<(ReferralLevel, u32), SimTime>,
    /// Per-resolver deterministic decision counter (so repeated rolls
    /// within one resolver differ).
    rolls: u64,
    seed: u64,
}

/// Parameters of the referral model.
#[derive(Debug, Clone, Copy)]
pub struct ReferralConfig {
    /// TTL of /8 referrals served by the root (seconds). Real root-zone
    /// delegations use 2 days.
    pub root_ttl: u64,
    /// TTL of /24 delegations served by national /16 zones (seconds).
    pub national_ttl: u64,
    /// Fraction of a resolver's background reverse traffic that warms
    /// any one /8 referral (≈ 1 / number of popular /8s).
    pub root_bg_share: f64,
    /// Fraction of background traffic warming one specific /24
    /// delegation (≈ 1 in ten million; effectively zero).
    pub national_bg_share: f64,
    /// How long a SERVFAIL (unreachable final authority) is remembered.
    pub servfail_ttl: u32,
    /// Negative TTL applied when a root-served /8 zone answers NXDOMAIN
    /// for undelegated space (the 2-day daggers of the paper's
    /// Table VIII).
    pub root_neg_ttl: u32,
    /// Negative TTL when a national registry answers NXDOMAIN for
    /// undelegated space.
    pub national_neg_ttl: u32,
}

impl Default for ReferralConfig {
    fn default() -> Self {
        ReferralConfig {
            root_ttl: 2 * 86_400,
            national_ttl: 86_400,
            root_bg_share: 0.01,
            national_bg_share: 1.0e-7,
            servfail_ttl: 300,
            root_neg_ttl: 2 * 86_400,
            national_neg_ttl: 900,
        }
    }
}

impl ResolverState {
    /// Create state for `id`. `shared` resolvers (ISP caches) get
    /// heavier background rates than dedicated hosts doing their own
    /// lookups.
    pub fn new(seed: u64, id: ResolverId, shared: bool, _cache_config: CacheConfig) -> Self {
        let h = hash2(seed ^ 0x5E50_1BE4, u32::from(id.0) as u64, shared as u64);
        // Median ≈ 3 q/s for shared resolvers, ≈ 0.002 q/s for hosts
        // resolving for themselves; both spread over orders of magnitude.
        let (mu, sigma) = if shared { (1.1, 1.6) } else { (-6.2, 2.0) };
        ResolverState {
            ptr_cache: AddrPtrCache::default(),
            background_rate: log_normal(h, mu, sigma),
            referrals: HashMap::new(),
            rolls: 0,
            seed: mix64(seed ^ u32::from(id.0) as u64),
        }
    }

    /// The modeled background reverse-query rate (queries/second).
    pub fn background_rate(&self) -> f64 {
        self.background_rate
    }

    /// Drop expired cache and referral entries; returns true when the
    /// resolver holds no state at all afterwards (so the simulator can
    /// forget it — state is recreated deterministically on next use).
    pub fn sweep(&mut self, now: SimTime) -> bool {
        self.ptr_cache.expire(now);
        self.referrals.retain(|_, expiry| *expiry > now);
        self.ptr_cache.is_empty() && self.referrals.is_empty()
    }

    fn next_roll(&mut self) -> u64 {
        self.rolls += 1;
        hash2(self.seed, self.rolls, 0x5EAF)
    }

    /// Consult (and update) the referral cache for `level` over `zone`
    /// (the /8 or /24 key) at time `now` with referral TTL `ttl`.
    ///
    /// `bg_share` scales the resolver's background rate down to the
    /// fraction that touches this particular zone.
    pub fn check_referral(
        &mut self,
        level: ReferralLevel,
        zone: u32,
        now: SimTime,
        ttl: u64,
        bg_share: f64,
    ) -> ReferralCheck {
        let lambda = self.background_rate * bg_share;
        let key = (level, zone);
        match self.referrals.get(&key).copied() {
            Some(expiry) if now < expiry => ReferralCheck::Warm,
            Some(expiry) => {
                // Expired Δ seconds ago; background refreshed it with
                // probability 1 − exp(−λΔ).
                let delta = now.since(expiry).secs() as f64;
                let roll = self.next_roll();
                if bernoulli(roll, 1.0 - (-lambda * delta).exp()) {
                    // Refreshed at an unknown instant; give the entry a
                    // uniform residual lifetime (inspection paradox).
                    let residual = (ttl as f64 * unit_f64(mix64(roll))) as u64;
                    self.referrals.insert(key, now + SimDuration::from_secs(residual.max(1)));
                    ReferralCheck::Warm
                } else {
                    self.referrals.insert(key, now + SimDuration::from_secs(ttl));
                    ReferralCheck::Cold
                }
            }
            None => {
                // First touch: stationary warm probability λT/(1+λT).
                let lt = lambda * ttl as f64;
                let roll = self.next_roll();
                if bernoulli(roll, lt / (1.0 + lt)) {
                    let residual = (ttl as f64 * unit_f64(mix64(roll))) as u64;
                    self.referrals.insert(key, now + SimDuration::from_secs(residual.max(1)));
                    ReferralCheck::Warm
                } else {
                    self.referrals.insert(key, now + SimDuration::from_secs(ttl));
                    ReferralCheck::Cold
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn resolver(shared: bool, ip: u8) -> ResolverState {
        ResolverState::new(
            1,
            ResolverId(Ipv4Addr::new(198, 51, 100, ip)),
            shared,
            CacheConfig::default(),
        )
    }

    #[test]
    fn shared_resolvers_are_busier() {
        // Compare medians over many resolver identities.
        let shared: Vec<f64> = (0..200u8).map(|i| resolver(true, i).background_rate()).collect();
        let dedicated: Vec<f64> =
            (0..200u8).map(|i| resolver(false, i).background_rate()).collect();
        let med = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(med(shared) > 100.0 * med(dedicated));
    }

    #[test]
    fn warm_referral_never_queries_up_before_expiry() {
        let mut r = resolver(false, 1);
        // Force a cold fetch to install a definite expiry.
        let mut attempts = 0;
        let install_time = loop {
            let t = SimTime(attempts * 10);
            if r.check_referral(ReferralLevel::Root, 7, t, 1000, 0.01) == ReferralCheck::Cold {
                break t;
            }
            attempts += 1;
            assert!(attempts < 10_000, "never went cold");
        };
        // Within TTL it is always warm.
        for dt in [1u64, 10, 500, 999] {
            assert_eq!(
                r.check_referral(
                    ReferralLevel::Root,
                    7,
                    install_time + SimDuration(dt),
                    1000,
                    0.01
                ),
                ReferralCheck::Warm
            );
        }
    }

    #[test]
    fn national_referrals_are_effectively_never_background_warmed() {
        // Even a busy shared resolver almost never has the /24
        // delegation of a random originator warm on first touch.
        let mut cold = 0;
        for i in 0..200u8 {
            let mut r = resolver(true, i);
            if r.check_referral(ReferralLevel::National, 12345, SimTime(0), 86_400, 1.0e-7)
                == ReferralCheck::Cold
            {
                cold += 1;
            }
        }
        assert!(cold >= 160, "national referrals should start cold: {cold}/200");
    }

    #[test]
    fn idle_resolver_goes_cold_after_expiry() {
        let mut r = resolver(false, 2);
        // Idle resolvers have tiny λ: once expired, the next touch is
        // almost surely cold. Find an installation, jump far ahead.
        let mut t = SimTime(0);
        loop {
            if r.check_referral(ReferralLevel::National, 9, t, 100, 1.0e-6) == ReferralCheck::Cold {
                break;
            }
            t += SimDuration(1000);
        }
        let mut cold = 0;
        let mut total = 0;
        for i in 0..50u64 {
            let probe = t + SimDuration(200 + i * 1000);
            if r.check_referral(ReferralLevel::National, 9, probe, 100, 1.0e-6)
                == ReferralCheck::Cold
            {
                cold += 1;
            }
            total += 1;
        }
        assert!(cold * 2 > total, "idle resolver should usually be cold: {cold}/{total}");
    }

    #[test]
    fn busy_resolver_rarely_cold_at_root() {
        let mut cold = 0;
        let mut total = 0;
        for i in 0..200u8 {
            let mut r = resolver(true, i);
            // λT for shared resolvers over a 2-day TTL is large even at
            // a 1 % background share.
            if r.check_referral(ReferralLevel::Root, 3, SimTime(0), 2 * 86_400, 0.01)
                == ReferralCheck::Cold
            {
                cold += 1;
            }
            total += 1;
        }
        assert!(
            (cold as f64 / total as f64) < 0.15,
            "busy resolvers cold too often: {cold}/{total}"
        );
    }

    #[test]
    fn zones_are_independent() {
        let mut r = resolver(false, 3);
        // Going cold on one /8 does not warm another.
        let mut t = SimTime(0);
        loop {
            if r.check_referral(ReferralLevel::Root, 1, t, 10_000, 0.01) == ReferralCheck::Cold {
                break;
            }
            t += SimDuration(100);
        }
        // Other zones are fresh: their first-touch outcome is
        // independent (for an idle resolver, almost surely cold).
        let mut any_cold = false;
        for z in 2..40u32 {
            if r.check_referral(ReferralLevel::Root, z, t, 10_000, 0.01) == ReferralCheck::Cold {
                any_cold = true;
            }
        }
        assert!(any_cold);
    }
}
