//! The simulated Internet.
//!
//! A [`World`] answers every *static* question about the network —
//! geography, topology, host population, naming, resolver wiring, PTR
//! zone contents — as a pure function of the world seed and the address
//! being asked about. Nothing is stored per-host, so worlds scale to
//! full-Internet scans; only the country table and AS bookkeeping are
//! materialized (a few KiB).
//!
//! The layout mirrors how the real registries carve up IPv4:
//!
//! * each usable **/8** belongs to a country (contiguous runs, so the /8
//!   prefix of an address is geographically meaningful — the basis of
//!   the sensor's *global entropy* feature);
//! * each **/16** belongs to an autonomous system of some
//!   [`AsType`] (ISP, hosting, enterprise, …);
//! * each **/24** gets a [`BlockProfile`] conditioned on its AS type
//!   (residential pool, server room, CDN PoP, …) that drives host
//!   density, host roles, reverse naming, and middlebox behaviour.

use crate::det::{bernoulli, bounded, hash1, hash2, hash3, mix64, unit_f64, weighted_pick};
use crate::hierarchy::{Delegation, PtrPolicy, Region};
use crate::naming;
use crate::types::{AsId, Contact, ContactKind, CountryCode, HostRole, NameOutcome, ResolverId};
use bs_dns::DomainName;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One country in the world specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountrySpec {
    /// Two-letter code.
    pub code: CountryCode,
    /// Relative share of the usable /8 space.
    pub weight: f64,
    /// Coarse region, for root-server affinity.
    pub region: Region,
    /// Whether a national registry serves this country's reverse zones
    /// (sits between root and final authorities, like JPNIC).
    pub national_authority: bool,
}

fn spec(code: &str, weight: f64, region: Region, national: bool) -> CountrySpec {
    CountrySpec {
        code: CountryCode::new(code).expect("valid code"),
        weight,
        region,
        national_authority: national,
    }
}

/// The broad business of an autonomous system, which conditions what its
/// blocks look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsType {
    /// Access ISP: mostly residential pools plus some infrastructure.
    Isp,
    /// Hosting / datacenter provider: servers, scanners-for-hire, VPSes.
    Hosting,
    /// Enterprise network: offices behind firewalls, mail gateways.
    Enterprise,
    /// University or research network.
    Academic,
    /// Content-delivery operator.
    CdnProvider,
    /// Public cloud operator.
    CloudProvider,
}

impl AsType {
    /// All variants.
    pub const ALL: [AsType; 6] = [
        AsType::Isp,
        AsType::Hosting,
        AsType::Enterprise,
        AsType::Academic,
        AsType::CdnProvider,
        AsType::CloudProvider,
    ];
}

/// What a /24 is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockProfile {
    /// Residential access pool (dense, home names).
    Residential,
    /// Datacenter floor (servers of all kinds).
    Hosting,
    /// Enterprise office block (firewalled, mail/fw/generic hosts).
    Enterprise,
    /// Campus network.
    Academic,
    /// ISP infrastructure block (resolvers, mail relays, ntp).
    IspInfra,
    /// CDN point of presence.
    CdnPop,
    /// Cloud datacenter block.
    CloudDc,
    /// Dark / unassigned space.
    Unused,
}

/// Tunable world parameters. Defaults are calibrated so the paper's
/// shapes hold (occupancy, reaction rates, attenuation); see DESIGN.md.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every fact derives from it.
    pub seed: u64,
    /// Country table. The default has 24 countries with JP, KR and BR
    /// operating national reverse registries.
    pub countries: Vec<CountrySpec>,
    /// Probability that a /16 of hosting space is undelegated (reverse
    /// walks die with NXDOMAIN at the parent).
    pub undelegated_hosting: f64,
    /// Undelegated probability for all other space.
    pub undelegated_other: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x5EED_0001,
            countries: vec![
                spec("us", 30.0, Region::Americas, false),
                spec("cn", 12.0, Region::Apac, false),
                spec("jp", 9.0, Region::Apac, true),
                spec("de", 6.0, Region::Emea, false),
                spec("gb", 5.0, Region::Emea, false),
                spec("kr", 4.0, Region::Apac, true),
                spec("fr", 4.0, Region::Emea, false),
                spec("br", 4.0, Region::Americas, true),
                spec("ca", 3.0, Region::Americas, false),
                spec("it", 3.0, Region::Emea, false),
                spec("au", 2.5, Region::Apac, false),
                spec("ru", 2.5, Region::Emea, false),
                spec("nl", 2.0, Region::Emea, false),
                spec("in", 2.0, Region::Apac, false),
                spec("es", 2.0, Region::Emea, false),
                spec("se", 1.5, Region::Emea, false),
                spec("pl", 1.5, Region::Emea, false),
                spec("tw", 1.5, Region::Apac, false),
                spec("mx", 1.0, Region::Americas, false),
                spec("id", 1.0, Region::Apac, false),
                spec("tr", 1.0, Region::Emea, false),
                spec("th", 1.0, Region::Apac, false),
                spec("za", 0.5, Region::Emea, false),
                spec("ar", 0.5, Region::Americas, false),
            ],
            undelegated_hosting: 0.15,
            undelegated_other: 0.03,
        }
    }
}

/// Reaction of target-side infrastructure to a contact: who performs the
/// reverse lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reaction {
    /// The querier as seen (and logged) by authorities.
    pub querier: ResolverId,
    /// True when the reacting host resolves for itself rather than
    /// through a shared recursive resolver. Direct queriers expose their
    /// own (role-revealing) reverse names; shared ones look like `ns.*`.
    pub direct: bool,
}

/// The simulated Internet. Cheap to clone conceptually but normally
/// shared by reference; all methods take `&self`.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    /// `/8` index → country table index (None = reserved space).
    slash8_country: [Option<u16>; 256],
    /// ASes allocated per country, proportional to weight.
    as_counts: Vec<u32>,
    /// Per-country /8 lists (inverse of `slash8_country`).
    country_slash8s: Vec<Vec<u8>>,
}

/// /8s we never allocate: current/private/loopback/multicast/reserved.
fn reserved_slash8(a: u8) -> bool {
    matches!(a, 0 | 10 | 127) || a >= 224
}

impl World {
    /// Build a world from a configuration.
    pub fn new(config: WorldConfig) -> Self {
        assert!(!config.countries.is_empty(), "need at least one country");
        let total_weight: f64 = config.countries.iter().map(|c| c.weight).sum();
        assert!(total_weight > 0.0, "country weights must be positive");

        // Contiguous /8 runs per country, proportional to weight.
        let usable: Vec<u8> = (0u8..=255).filter(|a| !reserved_slash8(*a)).collect();
        let mut slash8_country = [None; 256];
        let n = usable.len() as f64;
        let mut cursor = 0usize;
        let mut acc = 0.0;
        for (ci, c) in config.countries.iter().enumerate() {
            acc += c.weight;
            let end = ((acc / total_weight) * n).round() as usize;
            for &a in &usable[cursor..end.min(usable.len())] {
                slash8_country[a as usize] = Some(ci as u16);
            }
            cursor = end;
        }
        // Rounding may leave a tail; give it to the last country.
        for &a in &usable[cursor..] {
            slash8_country[a as usize] = Some((config.countries.len() - 1) as u16);
        }

        let as_counts = config
            .countries
            .iter()
            .map(|c| ((c.weight / total_weight) * 2000.0).ceil().max(8.0) as u32)
            .collect();

        let mut country_slash8s = vec![Vec::new(); config.countries.len()];
        for (a, ci) in slash8_country.iter().enumerate() {
            if let Some(ci) = ci {
                country_slash8s[*ci as usize].push(a as u8);
            }
        }

        World { config, slash8_country, as_counts, country_slash8s }
    }

    /// The active configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The world seed.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    // -- Geography ---------------------------------------------------------

    /// The country owning `addr`'s /8, if the space is usable.
    pub fn country_of(&self, addr: Ipv4Addr) -> Option<CountryCode> {
        self.slash8_country[addr.octets()[0] as usize]
            .map(|ci| self.config.countries[ci as usize].code)
    }

    /// Country spec lookup by code.
    pub fn country_spec(&self, code: CountryCode) -> Option<&CountrySpec> {
        self.config.countries.iter().find(|c| c.code == code)
    }

    /// The region of `addr`, if usable.
    pub fn region_of(&self, addr: Ipv4Addr) -> Option<Region> {
        self.slash8_country[addr.octets()[0] as usize]
            .map(|ci| self.config.countries[ci as usize].region)
    }

    /// All countries operating national reverse registries.
    pub fn national_registries(&self) -> impl Iterator<Item = CountryCode> + '_ {
        self.config.countries.iter().filter(|c| c.national_authority).map(|c| c.code)
    }

    /// The /8s belonging to `code`, for dataset generators that place
    /// originators inside one country.
    pub fn slash8s_of(&self, code: CountryCode) -> Vec<u8> {
        (0u8..=255)
            .filter(|a| {
                self.slash8_country[*a as usize]
                    .map(|ci| self.config.countries[ci as usize].code == code)
                    .unwrap_or(false)
            })
            .collect()
    }

    // -- Topology ----------------------------------------------------------

    /// The AS owning `addr`'s /16, if the space is usable.
    pub fn as_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        let ci = self.slash8_country[addr.octets()[0] as usize]? as usize;
        let slash16 = (u32::from(addr) >> 16) as u64;
        let idx =
            bounded(hash2(self.config.seed ^ 0xA5_0001, slash16, 11), self.as_counts[ci] as u64);
        Some(AsId(ci as u32 * 10_000 + idx as u32))
    }

    /// The business type of an AS.
    pub fn as_type(&self, as_id: AsId) -> AsType {
        let h = hash1(self.config.seed ^ 0xA5_0002, as_id.0 as u64);
        // ISP-heavy mix with a meaningful hosting sector.
        const W: [f64; 6] = [0.42, 0.18, 0.20, 0.06, 0.06, 0.08];
        AsType::ALL[weighted_pick(h, &W)]
    }

    /// The profile of `addr`'s /24, conditioned on its AS type.
    pub fn block_profile(&self, addr: Ipv4Addr) -> BlockProfile {
        let Some(as_id) = self.as_of(addr) else {
            return BlockProfile::Unused;
        };
        let slash24 = (u32::from(addr) >> 8) as u64;
        let h = hash2(self.config.seed ^ 0xA5_0003, slash24, as_id.0 as u64);
        use BlockProfile::*;
        let (profiles, weights): (&[BlockProfile], &[f64]) = match self.as_type(as_id) {
            AsType::Isp => {
                (&[Residential, IspInfra, Enterprise, Unused], &[0.62, 0.06, 0.12, 0.20])
            }
            AsType::Hosting => (&[Hosting, IspInfra, Unused], &[0.70, 0.05, 0.25]),
            AsType::Enterprise => (&[Enterprise, Unused], &[0.55, 0.45]),
            AsType::Academic => (&[Academic, Enterprise, Unused], &[0.50, 0.15, 0.35]),
            AsType::CdnProvider => (&[CdnPop, Unused], &[0.55, 0.45]),
            AsType::CloudProvider => (&[CloudDc, Unused], &[0.70, 0.30]),
        };
        profiles[weighted_pick(h, weights)]
    }

    // -- Host population ----------------------------------------------------

    /// Host density of a block profile: fraction of the /24's addresses
    /// with a live host. Tuned so that overall occupancy lands in the
    /// 6–8 % band the paper cites for probe responses.
    fn host_density(profile: BlockProfile) -> f64 {
        match profile {
            BlockProfile::Residential => 0.12,
            BlockProfile::Hosting => 0.18,
            BlockProfile::Enterprise => 0.10,
            BlockProfile::Academic => 0.12,
            BlockProfile::IspInfra => 0.10,
            BlockProfile::CdnPop => 0.30,
            BlockProfile::CloudDc => 0.28,
            BlockProfile::Unused => 0.0,
        }
    }

    /// Is there a live host at `addr`?
    pub fn host_exists(&self, addr: Ipv4Addr) -> bool {
        let profile = self.block_profile(addr);
        let d = Self::host_density(profile);
        if d == 0.0 {
            return false;
        }
        bernoulli(hash1(self.config.seed ^ 0xA5_0004, u32::from(addr) as u64), d)
    }

    /// The role of the host at `addr`, if one exists.
    pub fn host_role(&self, addr: Ipv4Addr) -> Option<HostRole> {
        if !self.host_exists(addr) {
            return None;
        }
        if self.is_shared_resolver_addr(addr) {
            return Some(HostRole::NameServer);
        }
        let profile = self.block_profile(addr);
        let h = hash1(self.config.seed ^ 0xA5_0005, u32::from(addr) as u64);
        use HostRole::*;
        let (roles, weights): (&[HostRole], &[f64]) = match profile {
            BlockProfile::Residential => (&[Home], &[1.0]),
            BlockProfile::Hosting => (
                &[WebServer, MailServer, NameServer, Generic, CloudNode],
                &[0.30, 0.14, 0.08, 0.44, 0.04],
            ),
            BlockProfile::Enterprise => (
                &[Generic, MailServer, Firewall, AntiSpam, WebServer, NameServer],
                &[0.48, 0.14, 0.14, 0.05, 0.11, 0.08],
            ),
            BlockProfile::Academic => (
                &[Generic, WebServer, MailServer, NameServer, NtpServer, Firewall],
                &[0.42, 0.16, 0.12, 0.10, 0.08, 0.12],
            ),
            BlockProfile::IspInfra => (
                &[NameServer, MailServer, NtpServer, Generic, Firewall],
                &[0.34, 0.22, 0.08, 0.28, 0.08],
            ),
            BlockProfile::CdnPop => (&[CdnNode, Generic], &[0.85, 0.15]),
            BlockProfile::CloudDc => (&[CloudNode, Generic], &[0.88, 0.12]),
            BlockProfile::Unused => unreachable!("no hosts in unused space"),
        };
        Some(roles[weighted_pick(h, weights)])
    }

    // -- Naming --------------------------------------------------------------

    /// The organization domain for `addr`'s network. ISP pools share one
    /// domain per AS (real access pools look like `*.bigisp.net`); other
    /// blocks get per-/24 org domains.
    pub fn org_domain(&self, addr: Ipv4Addr) -> DomainName {
        let country =
            self.country_of(addr).unwrap_or_else(|| CountryCode::new("us").expect("static code"));
        let profile = self.block_profile(addr);
        let key = match profile {
            BlockProfile::Residential | BlockProfile::IspInfra => {
                // Per-AS domain.
                self.as_of(addr).map(|a| a.0 as u64).unwrap_or(0) | 0x8000_0000_0000
            }
            _ => (u32::from(addr) >> 8) as u64,
        };
        naming::org_domain(self.config.seed, key, country)
    }

    /// Reverse-resolve `addr`: what a PTR lookup for it would return.
    ///
    /// This is used for *querier* classification by the sensor. Coverage
    /// gaps are realistic: the paper sees 14–19 % of queriers without
    /// reverse names, plus some behind unreachable authorities.
    pub fn reverse_name(&self, addr: Ipv4Addr) -> NameOutcome {
        let profile = self.block_profile(addr);
        let h = hash1(self.config.seed ^ 0xA5_0006, u32::from(addr) as u64);
        // Infrastructure special cases first: shared-resolver slots are
        // name servers (almost always with PTR records), and middlebox
        // gateways are firewalls — regardless of whether the host
        // density roll placed an ordinary host there.
        if self.is_shared_resolver_addr(addr) {
            let u = unit_f64(h);
            if u < 0.01 {
                return NameOutcome::Unreachable;
            }
            if u < 0.06 {
                return NameOutcome::NxDomain;
            }
            let org = self.org_domain(addr);
            return NameOutcome::Name(naming::host_name(
                self.config.seed,
                addr,
                HostRole::NameServer,
                &org,
            ));
        }
        if self.is_middlebox_gateway(addr) {
            let u = unit_f64(h);
            if u < 0.02 {
                return NameOutcome::Unreachable;
            }
            if u < 0.12 {
                return NameOutcome::NxDomain;
            }
            let org = self.org_domain(addr);
            return NameOutcome::Name(naming::host_name(
                self.config.seed,
                addr,
                HostRole::Firewall,
                &org,
            ));
        }
        let (p_nx, p_unreach) = match profile {
            BlockProfile::Residential => (0.06, 0.02),
            BlockProfile::Hosting => (0.28, 0.06),
            BlockProfile::Enterprise => (0.16, 0.04),
            BlockProfile::Academic => (0.08, 0.02),
            BlockProfile::IspInfra => (0.04, 0.01),
            BlockProfile::CdnPop => (0.10, 0.02),
            BlockProfile::CloudDc => (0.12, 0.02),
            BlockProfile::Unused => (0.75, 0.25),
        };
        let u = unit_f64(h);
        if u < p_unreach {
            return NameOutcome::Unreachable;
        }
        if u < p_unreach + p_nx {
            return NameOutcome::NxDomain;
        }
        // Role for naming: a live host uses its role; empty pool slots
        // still have pre-populated PTR records (home-style in pools,
        // generic elsewhere).
        let role = self.host_role(addr).unwrap_or(match profile {
            BlockProfile::Residential => HostRole::Home,
            BlockProfile::CdnPop => HostRole::CdnNode,
            BlockProfile::CloudDc => HostRole::CloudNode,
            _ => HostRole::Generic,
        });
        let org = match role {
            HostRole::CdnNode | HostRole::CloudNode => {
                naming::provider_domain(self.config.seed, addr, role)
            }
            _ => self.org_domain(addr),
        };
        NameOutcome::Name(naming::host_name(self.config.seed, addr, role, &org))
    }

    // -- Resolver wiring -------------------------------------------------------

    /// Is `addr` one of its AS's shared-resolver slots? We place up to
    /// four shared resolvers per AS at `x.y.0.10`–`x.y.0.13` of each of
    /// its /16s.
    fn is_shared_resolver_addr(&self, addr: Ipv4Addr) -> bool {
        let o = addr.octets();
        o[2] == 0 && (10..14).contains(&o[3]) && self.as_of(addr).is_some()
    }

    /// The shared recursive resolver serving `addr`.
    ///
    /// Resolver populations are concentrated, like the real Internet's:
    /// access ISPs funnel most customers through a couple of *central*
    /// resolvers for the whole AS, while enterprise and hosting blocks
    /// more often run a *local* resolver in their own /16. This
    /// concentration is what makes querier counts grow sub-linearly
    /// with scan size (paper Fig. 4): bigger scans keep re-hitting the
    /// same big resolvers.
    pub fn shared_resolver_for(&self, addr: Ipv4Addr) -> ResolverId {
        let slash24 = (u32::from(addr) >> 8) as u64;
        let h = hash1(self.config.seed ^ 0xA5_0007, slash24);
        if let Some(as_id) = self.as_of(addr) {
            let p_central = match self.as_type(as_id) {
                AsType::Isp => 0.75,
                AsType::Hosting => 0.30,
                AsType::Enterprise => 0.20,
                AsType::Academic => 0.25,
                AsType::CdnProvider | AsType::CloudProvider => 0.50,
            };
            if bernoulli(mix64(h ^ 0xCE), p_central) {
                let slot = bounded(mix64(h ^ 0xCF), 2) as u8;
                return self.central_resolver(as_id, slot);
            }
        }
        let o = addr.octets();
        let slot = bounded(h, 4) as u8;
        ResolverId(Ipv4Addr::new(o[0], o[1], 0, 10 + slot))
    }

    /// One of an AS's central resolvers: a stable address inside the
    /// AS's country, shaped like a resolver slot (`x.y.0.10+slot`) so
    /// it reverse-resolves as a name server.
    fn central_resolver(&self, as_id: AsId, slot: u8) -> ResolverId {
        let ci = (as_id.0 / 10_000) as usize;
        let h = hash1(self.config.seed ^ 0xA5_000C, as_id.0 as u64);
        // Pick a /8 of the AS's country and a stable second octet.
        let list = &self.country_slash8s[ci.min(self.country_slash8s.len() - 1)];
        let a = if list.is_empty() { 1 } else { list[bounded(h, list.len() as u64) as usize] };
        let b = (mix64(h ^ 0xB0) & 0xFF) as u8;
        ResolverId(Ipv4Addr::new(a, b, 0, 10 + (slot % 4)))
    }

    /// Probability that a host of `role` resolves reverse names for
    /// itself rather than through the shared resolver. Mail
    /// infrastructure mostly runs its own resolution; most other gear
    /// leans on the ISP or enterprise shared resolver — which is why
    /// scanners see so many `ns.*` queriers (paper Fig. 3).
    fn direct_resolution_prob(role: HostRole) -> f64 {
        match role {
            HostRole::MailServer => 0.80,
            HostRole::AntiSpam => 0.85,
            HostRole::Firewall => 0.30,
            HostRole::NameServer => 1.00,
            HostRole::WebServer => 0.35,
            HostRole::NtpServer => 0.40,
            HostRole::Home => 0.35,
            HostRole::CdnNode | HostRole::CloudNode => 0.50,
            HostRole::Generic => 0.20,
        }
    }

    /// Probability that a /24 of this profile has a logging middlebox.
    fn middlebox_presence_prob(profile: BlockProfile) -> f64 {
        match profile {
            BlockProfile::Enterprise => 0.55,
            BlockProfile::Academic => 0.45,
            BlockProfile::Hosting => 0.25,
            BlockProfile::IspInfra => 0.35,
            BlockProfile::Residential => 0.05,
            _ => 0.0,
        }
    }

    /// Does the /24 containing `addr` run a logging middlebox?
    pub fn middlebox_at(&self, addr: Ipv4Addr) -> bool {
        let p = Self::middlebox_presence_prob(self.block_profile(addr));
        if p == 0.0 {
            return false;
        }
        let slash24 = (u32::from(addr) >> 8) as u64;
        bernoulli(hash1(self.config.seed ^ 0xA5_0008 ^ 0x02, slash24), p)
    }

    /// Is `addr` the gateway address (`x.y.z.1`) of a block with a
    /// middlebox? Such addresses reverse-resolve as firewalls.
    fn is_middlebox_gateway(&self, addr: Ipv4Addr) -> bool {
        addr.octets()[3] == 1 && self.middlebox_at(addr)
    }

    /// How target-side infrastructure reacts to a contact: which
    /// queriers (if any) perform a reverse lookup of the originator.
    ///
    /// The decision is stable per `(originator, target, kind)`: the same
    /// pair always reacts the same way, so repeated contacts translate
    /// into repeated queries — the raw material of the sensor's
    /// queries-per-querier feature.
    pub fn reactions(&self, c: &Contact) -> Vec<Reaction> {
        let mut out = Vec::new();
        let seed = self.config.seed ^ 0xA5_0008;
        let key = hash3(
            seed,
            u32::from(c.originator) as u64,
            u32::from(c.target) as u64,
            contact_tag(c.kind),
        );

        // (a) The target host itself (or its CPE) logging / authenticating.
        if let Some(role) = self.host_role(c.target) {
            let p = host_reaction_prob(role, c.kind);
            if p > 0.0 && bernoulli(key, p) {
                let direct = bernoulli(mix64(key ^ 0x01), Self::direct_resolution_prob(role));
                let querier =
                    if direct { ResolverId(c.target) } else { self.shared_resolver_for(c.target) };
                out.push(Reaction { querier, direct });
            }
        }

        // (b) A block-level middlebox (firewall / IDS) guarding the /24,
        // present on enterprise-ish space. It reacts to probes even when
        // the probed address is empty — this is how scans of dark
        // corporate space still generate backscatter. Middleboxes mostly
        // resolve through the shared resolver, so scans show up as
        // `ns.*` queriers far more often than as `fw.*` ones.
        if is_probe(c.kind) && self.middlebox_at(c.target) {
            // The middlebox rate-limits lookups: it reacts to a given
            // originator with moderate probability per probed address.
            if bernoulli(mix64(key ^ 0x03), 0.35) {
                let slash24 = (u32::from(c.target) >> 8) as u64;
                let fw_addr = Ipv4Addr::from((slash24 << 8) as u32 | 1);
                let direct = bernoulli(mix64(key ^ 0x04), 0.25);
                let querier =
                    if direct { ResolverId(fw_addr) } else { self.shared_resolver_for(c.target) };
                out.push(Reaction { querier, direct });
            }
        }

        out
    }

    // -- Reverse-zone contents ---------------------------------------------------

    /// The delegation status of the /24 containing `addr`.
    pub fn delegation(&self, addr: Ipv4Addr) -> Delegation {
        let Some(country) = self.country_of(addr) else {
            return Delegation::Undelegated { at_national: false };
        };
        let via_national =
            self.country_spec(country).map(|c| c.national_authority).unwrap_or(false);
        let slash24 = (u32::from(addr) >> 8) as u64;
        let p_undelegated = match self.as_of(addr).map(|a| self.as_type(a)) {
            Some(AsType::Hosting) => self.config.undelegated_hosting,
            _ => self.config.undelegated_other,
        };
        if bernoulli(hash1(self.config.seed ^ 0xA5_0009, slash24), p_undelegated) {
            Delegation::Undelegated { at_national: via_national }
        } else {
            Delegation::Delegated { via_national }
        }
    }

    /// The leaf PTR policy for an originator: what its final authority
    /// serves, and with what TTL. Dataset generators may override this
    /// per-originator in the simulator (e.g. TTL 0 for controlled scans).
    pub fn ptr_policy(&self, originator: Ipv4Addr) -> PtrPolicy {
        match self.reverse_name(originator) {
            NameOutcome::Unreachable => PtrPolicy::Unreachable,
            NameOutcome::NxDomain => {
                // Negative TTLs drawn from common SOA MINIMUM values.
                let h = hash1(self.config.seed ^ 0xA5_000A, u32::from(originator) as u64);
                const NEG: [u32; 5] = [600, 900, 1200, 3600, 86_400];
                PtrPolicy::NxDomain { neg_ttl: NEG[bounded(h, NEG.len() as u64) as usize] }
            }
            NameOutcome::Name(_) => {
                let h = hash1(self.config.seed ^ 0xA5_000B, u32::from(originator) as u64);
                // TTL mix from the paper's Tables VII/VIII: minutes for
                // ad/CDN-style names up to a day for stable hosts.
                const TTLS: [u32; 7] = [300, 600, 1800, 3600, 28_800, 43_200, 86_400];
                const W: [f64; 7] = [0.08, 0.07, 0.08, 0.22, 0.15, 0.10, 0.30];
                PtrPolicy::Exists { ttl: TTLS[weighted_pick(h, &W)] }
            }
        }
    }

    /// Draw a usable public address uniformly from a hash (for target
    /// selection and scan drivers).
    pub fn random_public_addr(&self, h: u64) -> Ipv4Addr {
        // Rejection-free: map into usable /8 list, then random low bits.
        let usable: u64 = 256 - 35; // 3 low reserved + 32 high reserved
        let mut a = bounded(h, usable) as u8;
        // Skip reserved /8s in order (0, 10, 127, then 224..).
        for r in [0u8, 10, 127] {
            if a >= r {
                a += 1;
            }
        }
        let low = (mix64(h ^ 0xF00D) & 0x00FF_FFFF) as u32;
        Ipv4Addr::from(((a as u32) << 24) | low)
    }
}

/// Which contact kinds count as probes for middlebox logging.
fn is_probe(kind: ContactKind) -> bool {
    matches!(kind, ContactKind::ProbeTcp(_) | ContactKind::ProbeUdp(_) | ContactKind::ProbeIcmp)
}

fn contact_tag(kind: ContactKind) -> u64 {
    match kind {
        ContactKind::Smtp => 1,
        ContactKind::SmtpSpam => 13,
        ContactKind::ProbeTcp(p) => 0x1_0000 | p as u64,
        ContactKind::ProbeUdp(p) => 0x2_0000 | p as u64,
        ContactKind::ProbeIcmp => 3,
        ContactKind::HttpFetch => 4,
        ContactKind::WebBug => 5,
        ContactKind::CdnDelivery => 6,
        ContactKind::CloudApp => 7,
        ContactKind::UpdatePoll => 8,
        ContactKind::DnsService => 9,
        ContactKind::NtpService => 10,
        ContactKind::PushKeepalive => 11,
        ContactKind::P2p => 12,
    }
}

/// Probability that a host of `role` performs a reverse lookup when it
/// receives traffic of `kind`. These encode the paper's description of
/// who reacts: mail servers and anti-spam boxes on SMTP, firewalls on
/// probes, web servers on crawler fetches, CPE middleboxes on
/// target-initiated services.
fn host_reaction_prob(role: HostRole, kind: ContactKind) -> f64 {
    use ContactKind::*;
    use HostRole::*;
    match (role, kind) {
        (MailServer, Smtp) => 0.85,
        (MailServer, SmtpSpam) => 0.92,
        (AntiSpam, Smtp) => 0.55,
        (AntiSpam, SmtpSpam) => 0.95,
        (Generic, Smtp | SmtpSpam) => 0.05,
        (Home, Smtp | SmtpSpam) => 0.01,

        (Firewall, ProbeTcp(_) | ProbeUdp(_) | ProbeIcmp) => 0.85,
        (MailServer | WebServer | NameServer | NtpServer, ProbeTcp(_)) => 0.10,
        (Generic, ProbeTcp(_) | ProbeUdp(_)) => 0.06,
        (Generic, ProbeIcmp) => 0.04,
        (Home, ProbeTcp(_) | ProbeUdp(_) | ProbeIcmp) => 0.05,

        (WebServer, HttpFetch) => 0.50,
        (Generic, HttpFetch) => 0.08,

        // Target-initiated traffic: the CPE / local middlebox logs the
        // far end. Homes dominate CDN and update delivery.
        (Home, CdnDelivery) => 0.22,
        (Home, WebBug) => 0.18,
        (Home, CloudApp) => 0.15,
        (Home, UpdatePoll) => 0.15,
        (Home, PushKeepalive) => 0.12,
        (Generic, CdnDelivery | CloudApp | UpdatePoll) => 0.10,
        (Generic, WebBug) => 0.08,
        (Firewall, WebBug | CloudApp | CdnDelivery) => 0.30,

        (NameServer, DnsService) => 0.25,
        (Generic, DnsService) => 0.06,
        (NtpServer, NtpService) => 0.30,
        (Generic, NtpService) => 0.05,

        (Home, P2p) => 0.05,
        (Generic, P2p) => 0.04,

        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::SimTime;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn reserved_space_has_no_country() {
        let w = world();
        for a in [0u8, 10, 127, 224, 240, 255] {
            assert_eq!(w.country_of(Ipv4Addr::new(a, 1, 2, 3)), None, "/8 {a}");
        }
        assert!(w.country_of("8.8.8.8".parse().unwrap()).is_some());
    }

    #[test]
    fn countries_are_contiguous_per_slash8() {
        let w = world();
        // Every address in a /8 shares a country.
        let c1 = w.country_of("50.1.2.3".parse().unwrap());
        let c2 = w.country_of("50.200.9.9".parse().unwrap());
        assert_eq!(c1, c2);
    }

    #[test]
    fn big_countries_get_more_slash8s() {
        let w = world();
        let us = w.slash8s_of(CountryCode::new("us").unwrap()).len();
        let jp = w.slash8s_of(CountryCode::new("jp").unwrap()).len();
        let ar = w.slash8s_of(CountryCode::new("ar").unwrap()).len();
        assert!(us > jp, "us={us} jp={jp}");
        assert!(jp > ar, "jp={jp} ar={ar}");
        assert!(jp >= 10, "jp national space should be several /8s, got {jp}");
    }

    #[test]
    fn every_usable_slash8_is_assigned() {
        let w = world();
        for a in 0u8..=255 {
            let assigned = w.country_of(Ipv4Addr::new(a, 0, 0, 1)).is_some();
            assert_eq!(assigned, !reserved_slash8(a), "/8 {a}");
        }
    }

    #[test]
    fn as_assignment_is_per_slash16() {
        let w = world();
        let a = w.as_of("98.7.1.1".parse().unwrap());
        let b = w.as_of("98.7.200.200".parse().unwrap());
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn facts_are_deterministic() {
        let w1 = world();
        let w2 = world();
        for i in 0..200u32 {
            let addr = w1.random_public_addr(crate::det::mix64(i as u64));
            assert_eq!(w1.host_role(addr), w2.host_role(addr));
            assert_eq!(w1.reverse_name(addr), w2.reverse_name(addr));
            assert_eq!(w1.block_profile(addr), w2.block_profile(addr));
        }
    }

    #[test]
    fn occupancy_is_single_digit_percent() {
        let w = world();
        let n = 40_000u64;
        let occupied = (0..n)
            .filter(|i| w.host_exists(w.random_public_addr(crate::det::hash1(42, *i))))
            .count();
        let frac = occupied as f64 / n as f64;
        assert!((0.04..=0.12).contains(&frac), "occupancy {frac} outside the target band");
    }

    #[test]
    fn residential_blocks_hold_homes() {
        let w = world();
        let mut found = 0;
        let mut homes = 0;
        for i in 0..200_000u64 {
            let addr = w.random_public_addr(crate::det::hash1(7, i));
            if w.block_profile(addr) == BlockProfile::Residential {
                if let Some(role) = w.host_role(addr) {
                    found += 1;
                    if role == HostRole::Home {
                        homes += 1;
                    }
                }
            }
            if found >= 200 {
                break;
            }
        }
        assert!(found >= 100, "found only {found} residential hosts");
        assert_eq!(homes, found, "all residential hosts are homes");
    }

    #[test]
    fn reverse_names_have_realistic_gap_rate() {
        let w = world();
        let mut named = 0;
        let mut nx = 0;
        let mut unreach = 0;
        let mut n = 0;
        for i in 0..30_000u64 {
            let addr = w.random_public_addr(crate::det::hash1(13, i));
            if w.block_profile(addr) == BlockProfile::Unused {
                continue;
            }
            n += 1;
            match w.reverse_name(addr) {
                NameOutcome::Name(_) => named += 1,
                NameOutcome::NxDomain => nx += 1,
                NameOutcome::Unreachable => unreach += 1,
            }
        }
        let nx_frac = nx as f64 / n as f64;
        assert!(named > nx && nx > unreach, "named={named} nx={nx} unreach={unreach}");
        assert!((0.05..0.30).contains(&nx_frac), "nxdomain fraction {nx_frac}");
    }

    #[test]
    fn shared_resolver_is_stable_and_slot_shaped() {
        let w = world();
        let addr: Ipv4Addr = "98.7.60.9".parse().unwrap();
        let r1 = w.shared_resolver_for(addr);
        let r2 = w.shared_resolver_for(addr);
        assert_eq!(r1, r2);
        let ro = r1.0.octets();
        assert_eq!(ro[2], 0);
        assert!((10..14).contains(&ro[3]));
        // Central or local, the resolver stays inside the same country.
        assert_eq!(w.country_of(r1.0), w.country_of(addr));
    }

    #[test]
    fn isp_space_concentrates_on_central_resolvers() {
        let w = world();
        use std::collections::HashSet;
        // Inside a single ISP /16, the 256 /24s should funnel into a
        // handful of resolvers: the AS's two central slots plus at most
        // four local slots.
        let mut checked = 0;
        for i in 0..40_000u64 {
            let addr = w.random_public_addr(crate::det::hash1(0x77, i));
            let Some(as_id) = w.as_of(addr) else { continue };
            if w.as_type(as_id) != AsType::Isp {
                continue;
            }
            let base = u32::from(addr) & 0xFFFF_0000;
            let mut resolvers: HashSet<ResolverId> = HashSet::new();
            for third in 0..=255u32 {
                let a = Ipv4Addr::from(base | (third << 8) | 9);
                resolvers.insert(w.shared_resolver_for(a));
            }
            assert!(
                resolvers.len() <= 6,
                "ISP /16 {base:#x} spreads over {} resolvers",
                resolvers.len()
            );
            checked += 1;
            if checked >= 10 {
                break;
            }
        }
        assert!(checked >= 5, "checked only {checked} ISP /16s");
    }

    #[test]
    fn resolver_slots_reverse_resolve_as_nameservers() {
        let w = world();
        // Find a shared resolver address whose PTR lookup yields a name;
        // the name must look like a nameserver.
        let mut checked = 0;
        for i in 0..3000u64 {
            let base = w.random_public_addr(crate::det::hash1(23, i));
            let r = w.shared_resolver_for(base);
            if let NameOutcome::Name(n) = w.reverse_name(r.0) {
                if w.host_exists(r.0) {
                    let left = n.leftmost().unwrap().to_lowercase();
                    let nsish = ["ns", "dns", "cns", "cache", "resolv", "name"]
                        .iter()
                        .any(|kw| left.starts_with(kw));
                    assert!(nsish, "resolver name {n} should be ns-like");
                    checked += 1;
                }
            }
            if checked >= 20 {
                break;
            }
        }
        assert!(checked >= 5, "too few resolver names checked: {checked}");
    }

    #[test]
    fn mail_servers_react_to_smtp() {
        let w = world();
        // Find mail servers, check reaction statistics to SMTP.
        let mut mail_hosts = Vec::new();
        for i in 0..2_000_000u64 {
            let addr = w.random_public_addr(crate::det::hash1(31, i));
            if w.host_role(addr) == Some(HostRole::MailServer) {
                mail_hosts.push(addr);
                if mail_hosts.len() >= 300 {
                    break;
                }
            }
        }
        assert!(mail_hosts.len() >= 100, "found {} mail servers", mail_hosts.len());
        let orig: Ipv4Addr = "203.0.113.7".parse().unwrap();
        let reacting = mail_hosts
            .iter()
            .filter(|t| {
                let c = Contact {
                    time: SimTime(0),
                    originator: orig,
                    target: **t,
                    kind: ContactKind::Smtp,
                };
                !w.reactions(&c).is_empty()
            })
            .count();
        let rate = reacting as f64 / mail_hosts.len() as f64;
        assert!(rate > 0.75, "mail reaction rate {rate}");
    }

    #[test]
    fn reactions_are_stable_per_pair() {
        let w = world();
        let c = Contact {
            time: SimTime(100),
            originator: "203.0.113.7".parse().unwrap(),
            target: "98.7.60.9".parse().unwrap(),
            kind: ContactKind::ProbeTcp(22),
        };
        let c_later = Contact { time: SimTime(9999), ..c };
        assert_eq!(w.reactions(&c), w.reactions(&c_later));
    }

    #[test]
    fn probes_of_empty_enterprise_space_can_trigger_middleboxes() {
        let w = world();
        let orig: Ipv4Addr = "203.0.113.7".parse().unwrap();
        let mut hits = 0;
        let mut probed = 0;
        for i in 0..400_000u64 {
            let addr = w.random_public_addr(crate::det::hash1(37, i));
            if w.block_profile(addr) == BlockProfile::Enterprise && !w.host_exists(addr) {
                probed += 1;
                let c = Contact {
                    time: SimTime(0),
                    originator: orig,
                    target: addr,
                    kind: ContactKind::ProbeTcp(22),
                };
                if !w.reactions(&c).is_empty() {
                    hits += 1;
                }
            }
            if probed >= 3000 {
                break;
            }
        }
        assert!(probed >= 1000, "probed {probed}");
        let rate = hits as f64 / probed as f64;
        assert!(rate > 0.03 && rate < 0.5, "middlebox rate on empty space: {rate}");
    }

    #[test]
    fn delegation_mostly_delegated_and_jp_via_national() {
        let w = world();
        let jp8s = w.slash8s_of(CountryCode::new("jp").unwrap());
        let a = Ipv4Addr::new(jp8s[0], 5, 0, 1);
        match w.delegation(a) {
            Delegation::Delegated { via_national } => assert!(via_national),
            Delegation::Undelegated { at_national } => assert!(at_national),
        }
        // Globally, most /16s are delegated.
        let mut undelegated = 0;
        for i in 0..2000u64 {
            let addr = w.random_public_addr(crate::det::hash1(41, i));
            if matches!(w.delegation(addr), Delegation::Undelegated { .. }) {
                undelegated += 1;
            }
        }
        let frac = undelegated as f64 / 2000.0;
        assert!(frac < 0.15, "undelegated fraction {frac}");
    }

    #[test]
    fn ptr_policy_matches_reverse_name() {
        let w = world();
        for i in 0..500u64 {
            let addr = w.random_public_addr(crate::det::hash1(43, i));
            let policy = w.ptr_policy(addr);
            match w.reverse_name(addr) {
                NameOutcome::Name(_) => assert!(matches!(policy, PtrPolicy::Exists { .. })),
                NameOutcome::NxDomain => assert!(matches!(policy, PtrPolicy::NxDomain { .. })),
                NameOutcome::Unreachable => assert_eq!(policy, PtrPolicy::Unreachable),
            }
        }
    }

    #[test]
    fn random_public_addr_avoids_reserved_space() {
        let w = world();
        for i in 0..20_000u64 {
            let a = w.random_public_addr(crate::det::mix64(i));
            assert!(!reserved_slash8(a.octets()[0]), "reserved {a}");
        }
    }
}
