//! Property-based tests for the sensor.

use bs_dns::{Rcode, SimDuration, SimTime};
use bs_netsim::log::{QueryLog, QueryLogRecord};
use bs_netsim::types::{AsId, CountryCode, NameOutcome};
use bs_sensor::ingest::Observations;
use bs_sensor::static_features::{classify_name, classify_name_with_order, MatchOrder};
use bs_sensor::{extract_from_observations, FeatureConfig, QuerierInfo};
use proptest::prelude::*;
use std::net::Ipv4Addr;

struct ToyInfo;
impl QuerierInfo for ToyInfo {
    fn querier_name(&self, addr: Ipv4Addr) -> NameOutcome {
        match addr.octets()[3] % 4 {
            0 => NameOutcome::Name(bs_dns::DomainName::parse("mail.example.com").unwrap()),
            1 => NameOutcome::Name(bs_dns::DomainName::parse("ns1.isp.net").unwrap()),
            2 => NameOutcome::NxDomain,
            _ => NameOutcome::Unreachable,
        }
    }
    fn querier_as(&self, addr: Ipv4Addr) -> Option<AsId> {
        Some(AsId(addr.octets()[1] as u32))
    }
    fn querier_country(&self, _addr: Ipv4Addr) -> Option<CountryCode> {
        CountryCode::new("us")
    }
}

fn arb_records() -> impl Strategy<Value = Vec<QueryLogRecord>> {
    proptest::collection::vec(
        (0u64..10_000, any::<u16>(), any::<u8>()).prop_map(|(t, q, o)| QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::new(10, (q >> 8) as u8, q as u8, (q % 251) as u8),
            originator: Ipv4Addr::new(203, 0, 113, o),
            rcode: Rcode::NoError,
        }),
        0..300,
    )
}

fn log_of(mut records: Vec<QueryLogRecord>) -> QueryLog {
    records.sort_by_key(|r| r.time);
    let mut log = QueryLog::new();
    for r in records {
        log.push(r);
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Static fractions always sum to 1 for every analyzable originator,
    /// and every feature value is finite.
    #[test]
    fn static_fractions_sum_to_one(records in arb_records()) {
        let log = log_of(records);
        let obs = Observations::ingest(&log, SimTime(0), SimTime(10_000));
        let feats = extract_from_observations(&obs, &ToyInfo, &FeatureConfig { min_queriers: 1, top_n: None });
        for f in feats {
            let sum: f64 = f.features.static_fractions.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
            for v in f.features.to_vec() {
                prop_assert!(v.is_finite());
            }
        }
    }

    /// Dedup never *increases* the query count, never changes the
    /// querier set, and is idempotent in its effect on uniques.
    #[test]
    fn dedup_only_removes_repeats(records in arb_records()) {
        let log = log_of(records);
        let strict = Observations::ingest_with_dedup(&log, SimTime(0), SimTime(10_000), SimDuration(30));
        let none = Observations::ingest_with_dedup(&log, SimTime(0), SimTime(10_000), SimDuration(0));
        prop_assert_eq!(strict.originator_count(), none.originator_count());
        for (ip, o) in &strict.per_originator {
            let raw = &none.per_originator[ip];
            prop_assert!(o.query_count() <= raw.query_count());
            prop_assert_eq!(&o.queriers, &raw.queriers, "dedup must not drop queriers");
        }
    }

    /// Ranking respects the threshold and descending footprint order.
    #[test]
    fn selection_is_ranked(records in arb_records(), min in 1usize..10) {
        let log = log_of(records);
        let obs = Observations::ingest(&log, SimTime(0), SimTime(10_000));
        let selected = bs_sensor::ingest::select_analyzable(&obs, min, None);
        for pair in selected.windows(2) {
            prop_assert!(pair[0].querier_count() >= pair[1].querier_count());
        }
        for o in &selected {
            prop_assert!(o.querier_count() >= min);
        }
    }

    /// The keyword matcher is total and order variants agree on
    /// single-label names.
    #[test]
    fn matcher_total_and_consistent(label in "[a-z][a-z0-9-]{0,20}[a-z0-9]") {
        if let Ok(name) = bs_dns::DomainName::parse(&label) {
            let l = classify_name_with_order(&name, MatchOrder::LeftmostFirst);
            let r = classify_name_with_order(&name, MatchOrder::RightmostFirst);
            prop_assert_eq!(l, r, "single-component names have one scan order");
            prop_assert_eq!(classify_name(&name), l);
        }
    }
}
