//! Fast-path ≡ reference: the `bs-fastmap` ingest engine must be
//! observationally identical to the retained BTree implementations on
//! arbitrary record streams — same per-originator query streams, same
//! querier sets, same dedup decisions, same admissions and evictions.
//!
//! Stub-friendly like `tests/parallel_determinism.rs`: everything here
//! runs under the offline proptest stand-in (deterministic generation,
//! no shrinking) as well as real proptest.

use bs_dns::{Rcode, SimDuration, SimTime};
use bs_netsim::log::{QueryLog, QueryLogRecord};
use bs_sensor::ingest::Observations;
use bs_sensor::{ReferenceStreamingSensor, StreamConfig, StreamingSensor, WindowSummary};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Arbitrary record streams over deliberately small address pools so
/// dedup hits, repeat visits, and admission-filter pressure all occur.
fn arb_records() -> impl Strategy<Value = Vec<QueryLogRecord>> {
    proptest::collection::vec(
        (0u64..5_000, any::<u16>(), any::<u8>()).prop_map(|(t, q, o)| QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::new(10, (q >> 8) as u8, q as u8, (q % 61) as u8),
            originator: Ipv4Addr::new(203, 0, 113, o % 37),
            rcode: Rcode::NoError,
        }),
        0..400,
    )
}

fn log_of(records: &[QueryLogRecord]) -> QueryLog {
    let mut log = QueryLog::new();
    for r in records {
        log.push(*r);
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch: the packed-key arena ingest equals the BTree reference —
    /// identical `Observations` (per-originator streams in arrival
    /// order, querier sets, window-global querier set) for every
    /// stream and dedup width.
    #[test]
    fn batch_fast_path_matches_reference(
        records in arb_records(),
        dedup in 0u64..60,
    ) {
        let mut records = records;
        records.sort_by_key(|r| r.time);
        let log = log_of(&records);
        let fast =
            Observations::ingest_with_dedup(&log, SimTime(0), SimTime(5_000), SimDuration(dedup));
        let reference = Observations::ingest_with_dedup_reference(
            &log,
            SimTime(0),
            SimTime(5_000),
            SimDuration(dedup),
        );
        prop_assert_eq!(fast, reference);
    }

    /// Streaming: the arena/lazy-heap sensor equals the BTree/scan
    /// reference window for window — including under memory pressure,
    /// where both must hold the same probation counts, admit the same
    /// newcomers, and evict the same victims in the same order.
    #[test]
    fn stream_fast_path_matches_reference(
        records in arb_records(),
        max_originators in 1usize..12,
        admission_queries in 1usize..4,
        probation_cap in 4usize..24,
    ) {
        let mut records = records;
        records.sort_by_key(|r| r.time);
        let cfg = StreamConfig {
            window: SimDuration::from_secs(1_000),
            max_originators,
            admission_queries,
            probation_cap,
            ..Default::default()
        };
        let mut fast = StreamingSensor::new(cfg);
        let mut reference = ReferenceStreamingSensor::new(cfg);
        for r in &records {
            prop_assert_eq!(fast.push(*r), reference.push(*r), "windows must agree per record");
        }
        prop_assert_eq!(fast.finish(), reference.finish(), "final flush must agree");
    }

    /// The same equivalence on *unsorted* streams: late records take
    /// the out-of-order drop path in both implementations, so the
    /// guard itself is part of the spec being held equal.
    #[test]
    fn stream_equivalence_with_out_of_order_records(
        records in arb_records(),
        max_originators in 1usize..12,
    ) {
        let cfg = StreamConfig {
            window: SimDuration::from_secs(500),
            max_originators,
            admission_queries: 2,
            ..Default::default()
        };
        let mut fast = StreamingSensor::new(cfg);
        let mut reference = ReferenceStreamingSensor::new(cfg);
        for r in &records {
            prop_assert_eq!(fast.push(*r), reference.push(*r), "windows must agree per record");
        }
        prop_assert_eq!(fast.finish(), reference.finish(), "final flush must agree");
    }

    /// Streaming with an unbounded table also equals *batch* ingestion
    /// of the same window — the stream-equals-batch determinism
    /// guarantee the pipeline's replay tests rely on, extended to
    /// arbitrary streams.
    #[test]
    fn unbounded_stream_matches_batch(records in arb_records()) {
        let mut records = records;
        records.sort_by_key(|r| r.time);
        let log = log_of(&records);
        let batch = Observations::ingest(&log, SimTime(0), SimTime(5_000));
        let mut sensor = StreamingSensor::new(StreamConfig {
            window: SimDuration::from_secs(5_000),
            ..Default::default()
        });
        let mut emitted: Vec<WindowSummary> = Vec::new();
        for r in &records {
            emitted.extend(sensor.push(*r));
        }
        emitted.extend(sensor.finish());
        prop_assert!(emitted.len() <= 1, "one window configured");
        if let Some(w) = emitted.first() {
            prop_assert_eq!(&w.observations.per_originator, &batch.per_originator);
            prop_assert_eq!(&w.observations.all_queriers, &batch.all_queriers);
            prop_assert_eq!(w.evicted, 0);
        } else {
            prop_assert!(batch.per_originator.is_empty());
        }
    }
}
