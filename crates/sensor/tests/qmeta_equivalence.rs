//! Fast extraction ≡ per-pair reference: the qmeta-table path of
//! [`extract_from_observations`] must be **bit-identical** to
//! [`extract_from_observations_reference`] on arbitrary logs —
//! queriers shared across many originators, out-of-order and
//! pre-window timestamps, metadata gaps (no AS / no country), and
//! cross-window cache reuse vs cold resolution. CI runs this file
//! under `BS_THREADS=1` and `=8`, so the equivalences also pin
//! thread-count independence.
//!
//! Stub-friendly like `tests/fastpath_equivalence.rs`: everything here
//! runs under the offline proptest stand-in (deterministic generation,
//! no shrinking) as well as real proptest.

use bs_dns::{DomainName, Rcode, SimTime};
use bs_netsim::log::{QueryLog, QueryLogRecord};
use bs_netsim::types::{AsId, CountryCode, NameOutcome};
use bs_sensor::ingest::Observations;
use bs_sensor::qmeta::QuerierMetaCache;
use bs_sensor::{
    extract_from_observations, extract_from_observations_reference, extract_with_meta_cache,
    FeatureConfig, OriginatorFeatures, QuerierInfo,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Deterministic synthetic metadata spanning every code path the
/// plane must memoize: all three `NameOutcome` variants, a mix of
/// keyword categories, and `None` gaps in both AS and country.
struct SynthInfo;

impl QuerierInfo for SynthInfo {
    fn querier_name(&self, a: Ipv4Addr) -> NameOutcome {
        let x = u32::from(a);
        let name = |s: String| NameOutcome::Name(DomainName::parse(&s).unwrap());
        match x % 7 {
            0 => NameOutcome::NxDomain,
            1 => NameOutcome::Unreachable,
            2 => name(format!("mail{}.example.com", x % 50)),
            3 => name(format!("ns{}.isp.net", x % 20)),
            4 => name(format!("host-{}-{}.bigisp.net", (x >> 8) & 0xff, x & 0xff)),
            5 => name(format!("a{}.deploy.akamai.sim", x % 97)),
            _ => name(format!("zx{}.example.org", x % 1000)),
        }
    }
    fn querier_as(&self, a: Ipv4Addr) -> Option<AsId> {
        let x = u32::from(a);
        (x % 11 != 0).then_some(AsId((x >> 6) % 300))
    }
    fn querier_country(&self, a: Ipv4Addr) -> Option<CountryCode> {
        let x = u32::from(a);
        (x % 13 != 0)
            .then(|| CountryCode([b'a' + ((x >> 3) % 26) as u8, b'a' + ((x >> 9) % 26) as u8]))
    }
}

/// Every feature bit-exact, not merely `==` (which would let a
/// `-0.0` / `+0.0` flip slip through).
fn bits(fs: &[OriginatorFeatures]) -> Vec<(Ipv4Addr, usize, usize, Vec<u64>)> {
    fs.iter()
        .map(|f| {
            (
                f.originator,
                f.querier_count,
                f.query_count,
                f.features.to_vec().iter().map(|x| x.to_bits()).collect(),
            )
        })
        .collect()
}

fn ingest(records: &[QueryLogRecord], start: u64, end: u64) -> Observations {
    let mut log = QueryLog::new();
    for r in records {
        log.push(*r);
    }
    Observations::ingest(&log, SimTime(start), SimTime(end))
}

/// Arbitrary record streams over a small querier pool, so the same
/// querier recurs under many originators and dedup windows overlap.
fn arb_records() -> impl Strategy<Value = Vec<QueryLogRecord>> {
    proptest::collection::vec(
        (0u64..5_000, any::<u16>(), any::<u8>()).prop_map(|(t, q, o)| QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::new(10, (q >> 8) as u8, q as u8, (q % 61) as u8),
            originator: Ipv4Addr::new(203, 0, 113, o % 37),
            rcode: Rcode::NoError,
        }),
        0..400,
    )
}

/// High-overlap streams: a pool of just 48 queriers shared across up
/// to 24 originators — the workload the metadata plane exists for.
fn arb_high_overlap() -> impl Strategy<Value = Vec<QueryLogRecord>> {
    proptest::collection::vec(
        (0u64..5_000, 0u8..48, 0u8..24).prop_map(|(t, q, o)| QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::new(10, 0, q / 13, q),
            originator: Ipv4Addr::new(203, 0, 113, o),
            rcode: Rcode::NoError,
        }),
        0..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cold fast path ≡ reference on arbitrary logs, across the
    /// analyzability knobs.
    #[test]
    fn fast_extraction_matches_reference(
        records in arb_records(),
        min_queriers in 1usize..6,
        // 0 means "no cap": the offline proptest stand-in has no
        // `option::of`, so encode Option in the integer.
        top_n in (0usize..10).prop_map(|n| (n > 0).then_some(n)),
    ) {
        let obs = ingest(&records, 0, 5_000);
        let config = FeatureConfig { min_queriers, top_n };
        let fast = extract_from_observations(&obs, &SynthInfo, &config);
        let reference = extract_from_observations_reference(&obs, &SynthInfo, &config);
        prop_assert_eq!(bits(&fast), bits(&reference));
    }

    /// The same equivalence when queriers are shared across many
    /// originators — interned ids must count distinct metadata exactly
    /// as the reference's per-originator BTree unions do.
    #[test]
    fn fast_extraction_matches_reference_on_shared_queriers(
        records in arb_high_overlap(),
        min_queriers in 1usize..4,
    ) {
        let obs = ingest(&records, 0, 5_000);
        let config = FeatureConfig { min_queriers, top_n: None };
        let fast = extract_from_observations(&obs, &SynthInfo, &config);
        let reference = extract_from_observations_reference(&obs, &SynthInfo, &config);
        prop_assert_eq!(bits(&fast), bits(&reference));
    }

    /// Pre-window timestamps (a late-but-admitted query carrying a
    /// time before the window open, as the streaming sensor can
    /// produce) must clamp identically on both paths — the underflow
    /// regression, at extraction level.
    #[test]
    fn fast_extraction_matches_reference_with_pre_window_timestamps(
        records in arb_records(),
        start in 1u64..2_000,
    ) {
        let mut obs = ingest(&records, 0, 5_000);
        // Reopen the window after ingest so some retained queries
        // precede window_start.
        obs.window_start = SimTime(start);
        let config = FeatureConfig { min_queriers: 1, top_n: None };
        let fast = extract_from_observations(&obs, &SynthInfo, &config);
        let reference = extract_from_observations_reference(&obs, &SynthInfo, &config);
        prop_assert_eq!(bits(&fast), bits(&reference));
    }

    /// A cache warmed by earlier windows must not change a later
    /// window's output: warm extraction is bit-identical to cold and
    /// to the reference.
    #[test]
    fn warm_cache_extraction_matches_cold_and_reference(
        records in arb_high_overlap(),
        keep_windows in 0u32..4,
    ) {
        let mut sorted = records;
        sorted.sort_by_key(|r| r.time);
        let w1: Vec<_> = sorted.iter().filter(|r| r.time.0 < 2_500).copied().collect();
        let w2: Vec<_> = sorted.iter().filter(|r| r.time.0 >= 2_500).copied().collect();
        let obs1 = ingest(&w1, 0, 2_500);
        let obs2 = ingest(&w2, 2_500, 5_000);
        let config = FeatureConfig { min_queriers: 1, top_n: None };

        let mut cache = QuerierMetaCache::new(1 << 16, keep_windows);
        let warm1 = extract_with_meta_cache(&obs1, &SynthInfo, &config, Some(&mut cache));
        let warm2 = extract_with_meta_cache(&obs2, &SynthInfo, &config, Some(&mut cache));

        let cold1 = extract_from_observations_reference(&obs1, &SynthInfo, &config);
        let cold2 = extract_from_observations_reference(&obs2, &SynthInfo, &config);
        prop_assert_eq!(bits(&warm1), bits(&cold1));
        prop_assert_eq!(bits(&warm2), bits(&cold2));
    }
}

/// Deterministic cache-behaviour pin: identical windows replayed
/// through one cache hit on every querier after the first window, and
/// the warm outputs stay bit-identical to the cold reference.
#[test]
fn replayed_windows_hit_the_cache_and_stay_identical() {
    let records: Vec<QueryLogRecord> = (0..200u32)
        .map(|i| QueryLogRecord {
            time: SimTime((i as u64 * 20) % 2_400),
            querier: Ipv4Addr::new(10, 0, (i % 40 / 13) as u8, (i % 40) as u8),
            originator: Ipv4Addr::new(203, 0, 113, (i % 6) as u8),
            rcode: Rcode::NoError,
        })
        .collect();
    let obs = ingest(&records, 0, 2_500);
    let config = FeatureConfig { min_queriers: 1, top_n: None };
    let reference = extract_from_observations_reference(&obs, &SynthInfo, &config);

    let mut cache = QuerierMetaCache::default();
    let first = extract_with_meta_cache(&obs, &SynthInfo, &config, Some(&mut cache));
    assert_eq!(cache.hits(), 0, "cold cache serves nothing");
    let unique = obs.all_queriers.len() as u64;
    assert_eq!(cache.misses(), unique, "one resolution per unique querier");

    let second = extract_with_meta_cache(&obs, &SynthInfo, &config, Some(&mut cache));
    assert_eq!(cache.hits(), unique, "replay must hit on every querier");
    assert_eq!(cache.misses(), unique, "replay must not re-resolve anything");

    assert_eq!(bits(&first), bits(&reference));
    assert_eq!(bits(&second), bits(&reference));
}
