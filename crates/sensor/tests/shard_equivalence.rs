//! Sharded ≡ single-shard reference: the hash-sharded streaming core
//! must be observationally identical to the sequential
//! [`ReferenceShardedStreamingSensor`] at every shard count — same
//! window summaries, in the same order, under storm bursts,
//! out-of-order records, and probation-cap pressure — and, above the
//! memory caps, identical to the plain global sensor and to batch
//! ingestion. CI runs this file under `BS_THREADS=1` and `=8`, so the
//! equivalences also pin thread-count independence.
//!
//! Stub-friendly like `tests/fastpath_equivalence.rs`: everything here
//! runs under the offline proptest stand-in (deterministic generation,
//! no shrinking) as well as real proptest.

use bs_dns::{Rcode, SimDuration, SimTime};
use bs_netsim::log::{QueryLog, QueryLogRecord};
use bs_sensor::ingest::Observations;
use bs_sensor::shard::{slice_of, ReferenceShardedStreamingSensor, ShardedStreamingSensor};
use bs_sensor::{StreamConfig, StreamingSensor, WindowSummary};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const LANE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Arbitrary record streams over deliberately small address pools so
/// dedup hits, repeat visits, and admission-filter pressure all occur.
fn arb_records() -> impl Strategy<Value = Vec<QueryLogRecord>> {
    proptest::collection::vec(
        (0u64..5_000, any::<u16>(), any::<u8>()).prop_map(|(t, q, o)| QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::new(10, (q >> 8) as u8, q as u8, (q % 61) as u8),
            originator: Ipv4Addr::new(203, 0, 113, o % 37),
            rcode: Rcode::NoError,
        }),
        0..400,
    )
}

/// Storm-burst specs: at time `t0`, a wave of one-shot originators
/// from a distinct `198.18.<wave>.*` pool floods the probation tables.
fn arb_bursts() -> impl Strategy<Value = Vec<(u64, u8)>> {
    proptest::collection::vec((0u64..4_000, 0u8..8), 0..4)
}

/// Materialize background records plus storm bursts (80 one-shot
/// originators per wave, one querier each), sorted by time.
fn storm_records(background: &[QueryLogRecord], bursts: &[(u64, u8)]) -> Vec<QueryLogRecord> {
    let mut records = background.to_vec();
    for &(t0, wave) in bursts {
        for i in 0..80u8 {
            records.push(QueryLogRecord {
                time: SimTime(t0 + i as u64 / 16),
                querier: Ipv4Addr::new(10, 99, wave, i % 13),
                originator: Ipv4Addr::new(198, 18, wave, i),
                rcode: Rcode::NoError,
            });
        }
    }
    records.sort_by_key(|r| r.time);
    records
}

fn run_sharded(records: &[QueryLogRecord], cfg: StreamConfig, lanes: usize) -> Vec<WindowSummary> {
    let mut s = ShardedStreamingSensor::new(cfg, lanes);
    let mut out = Vec::new();
    for r in records {
        out.extend(s.push(*r));
    }
    out.extend(s.finish());
    out
}

fn run_reference(records: &[QueryLogRecord], cfg: StreamConfig) -> Vec<WindowSummary> {
    let mut s = ReferenceShardedStreamingSensor::new(cfg);
    let mut out = Vec::new();
    for r in records {
        out.extend(s.push(*r));
    }
    out.extend(s.finish());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under memory pressure (tiny per-slice tracked tables and
    /// probation caps, so admission, eviction, and wholesale probation
    /// resets all fire), every lane count produces exactly the
    /// reference's window summaries.
    #[test]
    fn sharded_matches_reference_under_pressure(
        records in arb_records(),
        max_originators in 1usize..200,
        admission_queries in 1usize..4,
        probation_cap in 64usize..256,
    ) {
        let mut records = records;
        records.sort_by_key(|r| r.time);
        let cfg = StreamConfig {
            window: SimDuration::from_secs(1_000),
            max_originators,
            admission_queries,
            probation_cap,
            ..Default::default()
        };
        let expect = run_reference(&records, cfg);
        for lanes in LANE_COUNTS {
            prop_assert_eq!(
                &run_sharded(&records, cfg, lanes), &expect,
                "lanes={} must be invariant", lanes
            );
        }
    }

    /// The same invariance on *unsorted* streams: the driver's
    /// out-of-order drop path is part of the spec being held equal.
    #[test]
    fn sharded_matches_reference_with_out_of_order_records(
        records in arb_records(),
        max_originators in 1usize..100,
    ) {
        let cfg = StreamConfig {
            window: SimDuration::from_secs(500),
            max_originators,
            admission_queries: 2,
            ..Default::default()
        };
        let expect = run_reference(&records, cfg);
        for lanes in LANE_COUNTS {
            prop_assert_eq!(
                &run_sharded(&records, cfg, lanes), &expect,
                "lanes={} must be invariant", lanes
            );
        }
    }

    /// Storm bursts of one-shot originators against tight probation
    /// caps — the wholesale-reset path — still leave every lane count
    /// identical to the reference.
    #[test]
    fn sharded_matches_reference_through_probation_storms(
        background in arb_records(),
        bursts in arb_bursts(),
        probation_cap in 64usize..192,
    ) {
        let records = storm_records(&background, &bursts);
        let cfg = StreamConfig {
            window: SimDuration::from_secs(1_000),
            max_originators: 64, // one tracked slot per slice
            admission_queries: 3,
            probation_cap,
            ..Default::default()
        };
        let expect = run_reference(&records, cfg);
        for lanes in LANE_COUNTS {
            prop_assert_eq!(
                &run_sharded(&records, cfg, lanes), &expect,
                "lanes={} must be invariant", lanes
            );
        }
    }

    /// Above the memory caps the slice partition is unobservable:
    /// sharded output equals the plain global sensor at every lane
    /// count, and the single emitted window equals batch ingestion —
    /// stream-equals-batch across shard counts.
    #[test]
    fn sharded_stream_equals_plain_sensor_and_batch(
        background in arb_records(),
        bursts in arb_bursts(),
    ) {
        let records = storm_records(&background, &bursts);
        let cfg = StreamConfig {
            window: SimDuration::from_secs(5_000),
            ..Default::default()
        };
        let mut plain = StreamingSensor::new(cfg);
        let mut expect: Vec<WindowSummary> = Vec::new();
        for r in &records {
            expect.extend(plain.push(*r));
        }
        expect.extend(plain.finish());

        for lanes in LANE_COUNTS {
            prop_assert_eq!(
                &run_sharded(&records, cfg, lanes), &expect,
                "lanes={} must equal the plain global sensor", lanes
            );
        }

        let mut log = QueryLog::new();
        for r in &records {
            log.push(*r);
        }
        let batch = Observations::ingest(&log, SimTime(0), SimTime(5_000));
        prop_assert!(expect.len() <= 1, "one window configured");
        if let Some(w) = expect.first() {
            prop_assert_eq!(&w.observations.per_originator, &batch.per_originator);
            prop_assert_eq!(&w.observations.all_queriers, &batch.all_queriers);
            prop_assert_eq!(w.evicted, 0);
        } else {
            prop_assert!(batch.per_originator.is_empty());
        }
    }
}

/// Satellite regression: a wholesale probation clear on one shard
/// rebooks held→dropped only in *that* shard's ledger stage, and the
/// merged ledger still balances mid-storm (per shard and summed).
#[test]
fn probation_reset_rebooks_only_its_own_shard_stage() {
    bs_trace::enable();
    let lanes = 4usize;
    // Time base far outside every other test's windows: ledger cells
    // are keyed (stage, window), and the ledger is process-global.
    let base = 9_000_000u64;
    let cfg = StreamConfig {
        window: SimDuration::from_secs(1_000),
        max_originators: 64,    // one tracked slot per slice
        admission_queries: 100, // nothing admits: pure probation load
        probation_cap: 512,     // 8 per slice: a 40-wide storm forces resets
        ..Default::default()
    };
    // 40 distinct originators all hashing to one slice (= one lane).
    let originators: Vec<Ipv4Addr> = {
        let first = Ipv4Addr::new(198, 51, 100, 1);
        (0u32..).map(Ipv4Addr::from).filter(|a| slice_of(*a) == slice_of(first)).take(40).collect()
    };
    let storm_lane = slice_of(originators[0]) % lanes;

    let mut s = ShardedStreamingSensor::new(cfg, lanes);
    for (i, o) in originators.iter().enumerate() {
        let r = QueryLogRecord {
            time: SimTime(base + i as u64),
            querier: Ipv4Addr::new(10, 0, 0, (i % 200) as u8),
            originator: *o,
            rcode: Rcode::NoError,
        };
        assert!(s.push(r).is_none(), "storm stays inside the first window");
    }
    // Cross the boundary mid-storm: the first window flushes while the
    // stream keeps running.
    let w = s
        .push(QueryLogRecord {
            time: SimTime(base + 1_500),
            querier: Ipv4Addr::new(10, 0, 0, 1),
            originator: originators[0],
            rcode: Rcode::NoError,
        })
        .expect("boundary crossing flushes the stormed window");
    assert_eq!(w.window, (SimTime(base), SimTime(base + 1_000)));

    assert!(bs_trace::ledger::verify().is_empty(), "merged ledger balances mid-storm");
    let cells = bs_trace::ledger::snapshot();
    let dropped_in = |lane: usize| {
        cells
            .get(&(format!("sensor.stream.shard.{lane}"), base))
            .map(|f| f.out.get("probation_dropped").copied().unwrap_or(0))
            .unwrap_or(0)
    };
    assert!(
        dropped_in(storm_lane) > 0,
        "the stormed shard's stage must show the reset's dropped records"
    );
    for lane in (0..lanes).filter(|&l| l != storm_lane) {
        assert_eq!(dropped_in(lane), 0, "shard {lane} saw no storm: nothing to rebook");
    }
    // Per-shard conservation, and conservation of the merged sum: each
    // shard stage balances on its own, so the sum balances too.
    let (mut records_in, mut accounted) = (0u64, 0u64);
    for ((stage, window), flow) in &cells {
        if *window == base && stage.starts_with("sensor.stream.shard.") {
            let out: u64 = flow.out.values().sum();
            assert_eq!(flow.records_in, out, "stage {stage} must balance");
            records_in += flow.records_in;
            accounted += out;
        }
    }
    assert_eq!(records_in, accounted, "summed shard stages must balance");
    assert_eq!(records_in, 40, "every storm record accounted to some shard stage");
}
