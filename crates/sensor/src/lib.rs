//! The DNS backscatter sensor (paper §III).
//!
//! This crate turns an authority's reverse-query log into per-originator
//! feature vectors ready for classification:
//!
//! 1. [`ingest`] groups `(originator, querier, time)` tuples per
//!    originator, discarding duplicate queries from the same querier
//!    inside a 30-second window ("to avoid excessive skew of querier
//!    rate estimates due to queriers that do not follow DNS timeout
//!    rules").
//! 2. [`ingest::select_analyzable`] keeps originators with at least 20
//!    unique queriers — the paper's analyzability threshold — and ranks
//!    them by unique-querier count.
//! 3. [`static_features`] classifies each querier's *own* reverse name
//!    into one of fourteen keyword categories (home, mail, ns, fw,
//!    antispam, www, ntp, cdn, aws, ms, google, other-unclassified,
//!    unreach, nxdomain), matching by dot-component from the left and
//!    taking the first matching rule.
//! 4. [`dynamic`] computes the temporal and spatial features: queries
//!    per querier, persistence, local (/24) and global (/8) entropy,
//!    AS and country spreads.
//!
//! The sensor reads querier metadata (reverse name, AS, country) through
//! the [`QuerierInfo`] trait, so it works identically against the
//! simulated world and any other provider. Extraction consults it
//! through the [`qmeta`] metadata plane — each unique querier resolved
//! once per window (or reused across windows via
//! [`qmeta::QuerierMetaCache`]), with AS/country interned into dense
//! ids — so providers must answer deterministically for a given
//! address within a window; the retained per-pair path
//! ([`extract::extract_from_observations_reference`]) defines the
//! semantics. The keyword matcher is an
//! independent implementation of the paper's tables — deliberately
//! *not* shared with the name generator in `bs-netsim`, so matching
//! here is a real test of the generator's realism rather than a
//! tautology.
//!
//! Ingestion — both the batch path and [`stream::StreamingSensor`] —
//! runs on the `bs-fastmap` compact-key engine (packed integer keys,
//! arena-indexed per-originator state, hybrid querier sets, lazy
//! eviction heap) and converts to the BTree-ordered [`Observations`]
//! representation only at window flush; the retained reference
//! implementations ([`ingest::Observations::ingest_with_dedup_reference`],
//! [`stream::ReferenceStreamingSensor`]) define the semantics and are
//! property-tested equal on arbitrary record streams. For live traffic,
//! [`shard::ShardedStreamingSensor`] hash-shards the originator space
//! across N such sensors for multi-core scaling, with output invariant
//! across shard counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod extract;
pub mod ingest;
pub mod qmeta;
pub mod shard;
pub mod static_features;
pub mod stream;

pub use dynamic::DynamicFeatures;
pub use extract::{
    extract_features, extract_from_observations, extract_from_observations_reference,
    extract_with_meta_cache, FeatureConfig, FeatureVector, OriginatorFeatures,
};
pub use ingest::{select_analyzable, Observations, OriginatorObservation};
pub use qmeta::{QuerierMetaCache, QuerierMetaTable};
pub use shard::{ReferenceShardedStreamingSensor, ShardedStreamingSensor, SHARD_SLICES};
pub use static_features::{classify_querier_name, StaticFeature};
pub use stream::{ReferenceStreamingSensor, StreamConfig, StreamingSensor, WindowSummary};

use bs_netsim::types::{AsId, CountryCode, NameOutcome};
use std::net::Ipv4Addr;

/// Everything the sensor needs to know about a querier address.
///
/// In deployment these come from PTR lookups and whois/geo databases;
/// in this reproduction the simulated [`bs_netsim::World`] provides
/// them.
pub trait QuerierInfo {
    /// Reverse-resolve the querier's own address.
    fn querier_name(&self, addr: Ipv4Addr) -> NameOutcome;
    /// The querier's autonomous system, if known.
    fn querier_as(&self, addr: Ipv4Addr) -> Option<AsId>;
    /// The querier's country, if known.
    fn querier_country(&self, addr: Ipv4Addr) -> Option<CountryCode>;
}

impl QuerierInfo for bs_netsim::World {
    fn querier_name(&self, addr: Ipv4Addr) -> NameOutcome {
        self.reverse_name(addr)
    }
    fn querier_as(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.as_of(addr)
    }
    fn querier_country(&self, addr: Ipv4Addr) -> Option<CountryCode> {
        self.country_of(addr)
    }
}
