//! Query-log ingestion and originator selection (paper §III-A, §III-B).
//!
//! Ingestion is the pipeline's hot path — every record the authority
//! logs passes through exactly one dedup probe and one per-originator
//! accumulation — so [`Observations::ingest_with_dedup`] runs on
//! `bs-fastmap` compact-key structures: IPv4 addresses pack to `u32`,
//! `(originator, querier)` dedup keys pack to one `u64`, per-originator
//! state lives in a dense arena addressed by `u32` slot indices, and
//! querier footprints accumulate in hybrid array/bitmap sets. The
//! BTree-ordered [`Observations`] representation every downstream stage
//! (extraction, classification, serialization) consumes is built once,
//! at the end — ingestion order never influences it, so the fast path
//! is observationally identical to the retained
//! [`Observations::ingest_with_dedup_reference`] spec, and a property
//! test holds the two equal on arbitrary record streams.

use bs_dns::{SimDuration, SimTime};
use bs_fastmap::{CompactSet, FastMap};
use bs_netsim::log::QueryLog;
use serde::{Deserialize, Serialize};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// The deduplication window: duplicate queries from the same querier
/// for the same originator within this span are dropped.
pub const DEDUP_WINDOW: SimDuration = SimDuration(30);

/// The analyzability threshold: originators need at least this many
/// unique queriers to be classified.
pub const MIN_QUERIERS: usize = 20;

/// One originator's deduplicated query stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginatorObservation {
    /// The originator address.
    pub originator: Ipv4Addr,
    /// Deduplicated queries as `(time, querier)` pairs, in time order.
    pub queries: Vec<(SimTime, Ipv4Addr)>,
    /// Unique querier addresses.
    pub queriers: BTreeSet<Ipv4Addr>,
}

impl Default for OriginatorObservation {
    fn default() -> Self {
        OriginatorObservation {
            originator: Ipv4Addr::UNSPECIFIED,
            queries: Vec::new(),
            queriers: BTreeSet::new(),
        }
    }
}

impl OriginatorObservation {
    /// Total deduplicated queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Unique querier count — the originator's observed footprint.
    pub fn querier_count(&self) -> usize {
        self.queriers.len()
    }
}

/// All originators observed in a window, with window-global context the
/// dynamic features need (total ASes and countries seen).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observations {
    /// Window start (inclusive).
    pub window_start: SimTime,
    /// Window end (exclusive).
    pub window_end: SimTime,
    /// Per-originator deduplicated streams.
    pub per_originator: BTreeMap<Ipv4Addr, OriginatorObservation>,
    /// All querier addresses seen in the window (across originators).
    pub all_queriers: BTreeSet<Ipv4Addr>,
}

/// Pack the paper's dedup key — one `(originator, querier)` address
/// pair — into a single integer for the fast-path tables.
#[inline]
pub(crate) fn pack_pair(originator: Ipv4Addr, querier: Ipv4Addr) -> u64 {
    (u64::from(u32::from(originator)) << 32) | u64::from(u32::from(querier))
}

/// Fast-path per-originator accumulator: the querier footprint stays a
/// compact `u32` set until flush, when it converts (already sorted)
/// into the `BTreeSet` the pipeline representation uses.
#[derive(Debug)]
pub(crate) struct SlotAccum {
    pub(crate) originator: Ipv4Addr,
    pub(crate) queries: Vec<(SimTime, Ipv4Addr)>,
    pub(crate) queriers: CompactSet,
}

impl Default for SlotAccum {
    fn default() -> Self {
        SlotAccum {
            originator: Ipv4Addr::UNSPECIFIED,
            queries: Vec::new(),
            queriers: CompactSet::new(),
        }
    }
}

impl SlotAccum {
    /// Convert into the BTree-ordered pipeline representation.
    pub(crate) fn into_observation(self) -> OriginatorObservation {
        let queriers: BTreeSet<Ipv4Addr> =
            self.queriers.sorted().into_iter().map(Ipv4Addr::from).collect();
        OriginatorObservation { originator: self.originator, queries: self.queries, queriers }
    }
}

/// Convert a compact querier set into the pipeline's `BTreeSet`.
pub(crate) fn set_to_btree(set: &CompactSet) -> BTreeSet<Ipv4Addr> {
    set.sorted().into_iter().map(Ipv4Addr::from).collect()
}

impl Observations {
    /// Ingest a query log restricted to `[start, end)`, applying the
    /// 30-second per-(originator, querier) deduplication.
    ///
    /// `dedup` is exposed for the ablation bench; the paper's pipeline
    /// always passes [`DEDUP_WINDOW`].
    ///
    /// This is the fast path: packed `u64` dedup keys in an
    /// open-addressing table, per-originator state in a dense arena
    /// addressed through a `u32` slot map, and hybrid array/bitmap
    /// querier sets — converted to the BTree-ordered [`Observations`]
    /// once, at the end. Results are identical to
    /// [`Observations::ingest_with_dedup_reference`].
    pub fn ingest_with_dedup(
        log: &QueryLog,
        start: SimTime,
        end: SimTime,
        dedup: SimDuration,
    ) -> Self {
        let mut slot_of: FastMap<u32, u32> = FastMap::new();
        let mut arena: Vec<SlotAccum> = Vec::new();
        let mut all_queriers = CompactSet::new();
        // Last accepted time per packed (originator, querier) pair.
        let mut last_seen: FastMap<u64, u64> = FastMap::new();
        let mut seen: u64 = 0;
        let mut accepted: u64 = 0;
        let mut suppressed: u64 = 0;
        let mut out_of_window: u64 = 0;
        for r in log.records() {
            // `seen` counts every record independently of the outcome
            // branches below, so the conservation ledger catches any
            // path that silently discards one.
            seen += 1;
            if r.time < start || r.time >= end {
                out_of_window += 1;
                continue;
            }
            let key = pack_pair(r.originator, r.querier);
            let (last, fresh) = last_seen.get_or_insert_with(key, || r.time.secs());
            if !fresh {
                if r.time.since(SimTime(*last)) < dedup {
                    suppressed += 1;
                    continue; // suppressed duplicate
                }
                *last = r.time.secs();
            }
            accepted += 1;
            let querier = u32::from(r.querier);
            all_queriers.insert(querier);
            let (slot, new_originator) =
                slot_of.get_or_insert_with(u32::from(r.originator), || arena.len() as u32);
            let slot = *slot as usize;
            if new_originator {
                arena.push(SlotAccum { originator: r.originator, ..Default::default() });
            }
            let obs = &mut arena[slot];
            obs.queries.push((r.time, r.querier));
            obs.queriers.insert(querier);
        }
        bs_telemetry::counter_add("sensor.records", accepted);
        bs_telemetry::counter_add("sensor.dedup_suppressed", suppressed);
        bs_trace::ledger::record(
            "sensor.ingest",
            seen,
            &[("kept", accepted), ("deduped", suppressed), ("out_of_window", out_of_window)],
        );
        let per_originator: BTreeMap<Ipv4Addr, OriginatorObservation> =
            arena.into_iter().map(|a| (a.originator, a.into_observation())).collect();
        Observations {
            window_start: start,
            window_end: end,
            per_originator,
            all_queriers: set_to_btree(&all_queriers),
        }
    }

    /// The retained reference implementation of
    /// [`Observations::ingest_with_dedup`]: the original BTree-based
    /// ingestion, kept as the executable specification the fast path is
    /// property-tested against (and benchmarked against in the `ingest`
    /// Criterion group). No telemetry — it exists to define behavior,
    /// not to run in production.
    pub fn ingest_with_dedup_reference(
        log: &QueryLog,
        start: SimTime,
        end: SimTime,
        dedup: SimDuration,
    ) -> Self {
        let mut per_originator: BTreeMap<Ipv4Addr, OriginatorObservation> = BTreeMap::new();
        let mut all_queriers = BTreeSet::new();
        // Last accepted time per (originator, querier).
        let mut last_seen: BTreeMap<(Ipv4Addr, Ipv4Addr), SimTime> = BTreeMap::new();
        for r in log.records() {
            if r.time < start || r.time >= end {
                continue;
            }
            let key = (r.originator, r.querier);
            match last_seen.entry(key) {
                Entry::Occupied(mut e) => {
                    if r.time.since(*e.get()) < dedup {
                        continue; // suppressed duplicate
                    }
                    e.insert(r.time);
                }
                Entry::Vacant(e) => {
                    e.insert(r.time);
                }
            }
            all_queriers.insert(r.querier);
            let obs = per_originator.entry(r.originator).or_insert_with(|| OriginatorObservation {
                originator: r.originator,
                ..Default::default()
            });
            obs.queries.push((r.time, r.querier));
            obs.queriers.insert(r.querier);
        }
        Observations { window_start: start, window_end: end, per_originator, all_queriers }
    }

    /// Standard ingestion with the paper's 30-second window.
    pub fn ingest(log: &QueryLog, start: SimTime, end: SimTime) -> Self {
        Self::ingest_with_dedup(log, start, end, DEDUP_WINDOW)
    }

    /// Unique ASes among all queriers in the window, given a resolver.
    /// Chunked parallel lookup (set-union merge, order-independent).
    pub fn total_ases(&self, info: &(impl crate::QuerierInfo + Sync)) -> usize {
        let queriers: Vec<Ipv4Addr> = self.all_queriers.iter().copied().collect();
        crate::dynamic::unique_by(&queriers, |q| info.querier_as(q)).len()
    }

    /// Unique countries among all queriers in the window.
    /// Chunked parallel lookup (set-union merge, order-independent).
    pub fn total_countries(&self, info: &(impl crate::QuerierInfo + Sync)) -> usize {
        let queriers: Vec<Ipv4Addr> = self.all_queriers.iter().copied().collect();
        crate::dynamic::unique_by(&queriers, |q| info.querier_country(q)).len()
    }

    /// Number of originators observed at all.
    pub fn originator_count(&self) -> usize {
        self.per_originator.len()
    }
}

/// Keep analyzable originators (≥ `min_queriers` unique queriers),
/// ranked by unique-querier count descending, truncated to `top_n` if
/// given. This is the paper's §III-B selection.
pub fn select_analyzable(
    obs: &Observations,
    min_queriers: usize,
    top_n: Option<usize>,
) -> Vec<&OriginatorObservation> {
    let mut v: Vec<&OriginatorObservation> =
        obs.per_originator.values().filter(|o| o.querier_count() >= min_queriers).collect();
    v.sort_by(|a, b| {
        b.querier_count().cmp(&a.querier_count()).then_with(|| a.originator.cmp(&b.originator))
    });
    if let Some(n) = top_n {
        v.truncate(n);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::Rcode;
    use bs_netsim::log::QueryLogRecord;

    fn rec(t: u64, q: &str, o: &str) -> QueryLogRecord {
        QueryLogRecord {
            time: SimTime(t),
            querier: q.parse().unwrap(),
            originator: o.parse().unwrap(),
            rcode: Rcode::NoError,
        }
    }

    #[test]
    fn dedup_drops_only_fast_repeats() {
        let mut log = QueryLog::new();
        log.push(rec(0, "192.0.2.1", "203.0.113.9"));
        log.push(rec(10, "192.0.2.1", "203.0.113.9")); // within 30s: dropped
        log.push(rec(29, "192.0.2.1", "203.0.113.9")); // still within 30s of t=0
        log.push(rec(31, "192.0.2.1", "203.0.113.9")); // 31s after t=0: kept
        log.push(rec(40, "192.0.2.2", "203.0.113.9")); // different querier: kept
        let obs = Observations::ingest(&log, SimTime(0), SimTime(1000));
        let o = &obs.per_originator[&"203.0.113.9".parse::<Ipv4Addr>().unwrap()];
        assert_eq!(o.query_count(), 3);
        assert_eq!(o.querier_count(), 2);
    }

    #[test]
    fn dedup_window_restarts_after_acceptance() {
        let mut log = QueryLog::new();
        log.push(rec(0, "192.0.2.1", "203.0.113.9"));
        log.push(rec(31, "192.0.2.1", "203.0.113.9")); // accepted
        log.push(rec(60, "192.0.2.1", "203.0.113.9")); // 29s after t=31: dropped
        log.push(rec(62, "192.0.2.1", "203.0.113.9")); // 31s after t=31: accepted
        let obs = Observations::ingest(&log, SimTime(0), SimTime(1000));
        let o = &obs.per_originator[&"203.0.113.9".parse::<Ipv4Addr>().unwrap()];
        assert_eq!(o.query_count(), 3);
    }

    #[test]
    fn dedup_is_per_originator() {
        let mut log = QueryLog::new();
        log.push(rec(0, "192.0.2.1", "203.0.113.9"));
        log.push(rec(5, "192.0.2.1", "203.0.113.10")); // same querier, other originator
        let obs = Observations::ingest(&log, SimTime(0), SimTime(1000));
        assert_eq!(obs.originator_count(), 2);
        assert_eq!(obs.all_queriers.len(), 1);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut log = QueryLog::new();
        log.push(rec(99, "192.0.2.1", "203.0.113.9"));
        log.push(rec(100, "192.0.2.2", "203.0.113.9"));
        log.push(rec(199, "192.0.2.3", "203.0.113.9"));
        log.push(rec(200, "192.0.2.4", "203.0.113.9"));
        let obs = Observations::ingest(&log, SimTime(100), SimTime(200));
        let o = &obs.per_originator[&"203.0.113.9".parse::<Ipv4Addr>().unwrap()];
        assert_eq!(o.query_count(), 2);
    }

    #[test]
    fn selection_threshold_and_ranking() {
        let mut log = QueryLog::new();
        // Originator A: 25 queriers; B: 20; C: 5.
        for i in 0..25u8 {
            log.push(rec(i as u64 * 40, &format!("192.0.2.{i}"), "203.0.113.1"));
        }
        for i in 0..20u8 {
            log.push(rec(i as u64 * 40, &format!("198.51.100.{i}"), "203.0.113.2"));
        }
        for i in 0..5u8 {
            log.push(rec(i as u64 * 40, &format!("192.0.3.{i}"), "203.0.113.3"));
        }
        let obs = Observations::ingest(&log, SimTime(0), SimTime(10_000));
        let selected = select_analyzable(&obs, MIN_QUERIERS, None);
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].originator, "203.0.113.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(selected[1].originator, "203.0.113.2".parse::<Ipv4Addr>().unwrap());
        let top1 = select_analyzable(&obs, MIN_QUERIERS, Some(1));
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].querier_count(), 25);
    }

    #[test]
    fn empty_log_is_empty_observation() {
        let obs = Observations::ingest(&QueryLog::new(), SimTime(0), SimTime(100));
        assert_eq!(obs.originator_count(), 0);
        assert!(select_analyzable(&obs, 1, None).is_empty());
    }
}
