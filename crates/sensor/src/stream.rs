//! Streaming ingestion: the sensor as a long-running process.
//!
//! The batch path ([`crate::ingest::Observations`]) wants a whole
//! window's log in memory — fine for research replay, wrong for a
//! production tap at a busy authority. [`StreamingSensor`] consumes one
//! record at a time, keeps per-originator state with a hard memory
//! bound, and emits completed windows as the stream crosses window
//! boundaries.
//!
//! # Memory bound
//!
//! Per-originator state is capped at [`StreamConfig::max_originators`].
//! When full, a new originator evicts the current *smallest* tracked
//! originator, but only when the newcomer has already been seen
//! [`StreamConfig::admission_queries`] times in a probation side-table
//! — an admission filter that stops one-off originators from thrashing
//! the table while keeping the heavy hitters exact. Analyzable
//! originators (the paper's ≥ 20 queriers) are far above the admission
//! bar, so eviction only ever touches originators the pipeline would
//! discard anyway — unless the table is sized below the number of
//! simultaneously-large originators, which [`WindowSummary::evicted`]
//! makes visible. The probation table itself is capped at
//! [`StreamConfig::probation_cap`] entries (default 4 ×
//! `max_originators`); a storm of one-shot originators that fills it
//! triggers a wholesale clear (`sensor.stream.probation_resets`), so
//! probation memory is bounded no matter how wide the storm.
//!
//! # The fast path
//!
//! Per-record work runs entirely on `bs-fastmap` compact-key
//! structures: the dedup table keys packed `(originator, querier)`
//! `u64` pairs, per-originator state lives in a dense arena addressed
//! by `u32` slot indices (evicted slots recycle through a free list,
//! keeping their allocations), querier footprints are hybrid
//! array/bitmap sets, and eviction picks its victim from a **lazy
//! min-heap** keyed by querier count — entries go stale as footprints
//! grow and are refreshed on pop, so an admission costs O(log n)
//! amortized instead of the O(n) full-table scan the seed performed.
//! The BTree-ordered [`Observations`] the pipeline consumes is built
//! once per window, at flush, which is what keeps the
//! stream-equals-batch determinism guarantee intact; a retained
//! BTree-based [`ReferenceStreamingSensor`] defines the semantics and
//! a property test holds the two equal on arbitrary record streams.
//!
//! # Out-of-order records
//!
//! Records must arrive in time order. A record behind the current
//! window's start would otherwise be silently credited to the wrong
//! window, so it is counted (`sensor.stream.out_of_order`, plus an
//! `out_of_order` conservation-ledger bucket) and dropped.

use crate::ingest::{
    pack_pair, set_to_btree, Observations, OriginatorObservation, SlotAccum, DEDUP_WINDOW,
};
use bs_dns::{SimDuration, SimTime};
use bs_fastmap::{CompactSet, FastMap};
use bs_netsim::log::QueryLogRecord;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// The smallest probation table graceful degradation may shrink to:
/// enough to keep admitting genuinely heavy hitters even under a
/// critical-pressure storm.
const MIN_PRESSURE_PROBATION_CAP: usize = 16;

/// Streaming-sensor configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Window length.
    pub window: SimDuration,
    /// Hard cap on tracked originators per window.
    pub max_originators: usize,
    /// Queries an unknown originator must accumulate (in the probation
    /// table) before it may evict a tracked one.
    pub admission_queries: usize,
    /// Per-querier dedup window (the paper's 30 s).
    pub dedup: SimDuration,
    /// Hard cap on probation entries; `0` means 4 × `max_originators`.
    /// Reaching it clears the probation table (cheap decay: counts
    /// restart, memory stays bounded through one-shot storms).
    pub probation_cap: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 100_000,
            admission_queries: 3,
            dedup: DEDUP_WINDOW,
            probation_cap: 0,
        }
    }
}

impl StreamConfig {
    /// The probation cap with the `0 = 4 × max_originators` default
    /// resolved.
    pub fn resolved_probation_cap(&self) -> usize {
        if self.probation_cap == 0 {
            self.max_originators.saturating_mul(4)
        } else {
            self.probation_cap
        }
    }
}

/// A completed window emitted by the streaming sensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    /// The window bounds.
    pub window: (SimTime, SimTime),
    /// Per-originator observations, equivalent to the batch path's.
    pub observations: Observations,
    /// Originators evicted during the window (their counts are lower
    /// bounds; anything that mattered was far above the analyzability
    /// bar before eviction could touch it).
    pub evicted: usize,
}

/// One arena slot: an originator's in-window accumulation plus the
/// occupancy flag the free list needs.
#[derive(Debug, Default)]
struct Slot {
    accum: SlotAccum,
    occupied: bool,
}

/// Window-local tallies, flushed to the global registry (and the
/// conservation ledger) at window boundaries so the per-record hot
/// path stays atomics-free.
#[derive(Debug, Default)]
struct Tallies {
    records: u64,
    deduped: u64,
    admitted: u64,
    // Conservation-ledger buckets: records held back by the admission
    // filter (split into still-credited and dropped-by-reset), stored
    // queries lost to evicted originators, and late records.
    probation_held: u64,
    probation_dropped: u64,
    evicted_queries: u64,
    out_of_order: u64,
    probation_resets: u64,
}

/// The streaming sensor (fast path).
pub struct StreamingSensor {
    config: StreamConfig,
    probation_cap: usize,
    window_start: SimTime,
    /// Originator (packed IPv4) → arena slot index.
    slot_of: FastMap<u32, u32>,
    /// Dense per-originator state; evicted slots recycle via `free`.
    arena: Vec<Slot>,
    free: Vec<u32>,
    /// Lazy eviction heap: `(querier count at push, originator)`
    /// min-entries. Stale entries (count grew, or originator already
    /// evicted) are detected and refreshed/discarded on pop.
    evict_heap: BinaryHeap<Reverse<(usize, u32)>>,
    /// Admission filter: originator → queries seen while untracked.
    probation: FastMap<u32, u32>,
    /// Last accepted time per packed (originator, querier) pair.
    last_seen: FastMap<u64, u64>,
    all_queriers: CompactSet,
    evicted: usize,
    started: bool,
    tally: Tallies,
    /// Lifetime count of lazy-heap pops — the eviction-cost
    /// diagnostic the storm regression test bounds.
    heap_pops: u64,
    /// Backpressure cell shared with the bs-live watchdog (`0` ok,
    /// `1` degraded, `2` critical). `None` = no watchdog attached.
    pressure: Option<Arc<AtomicU8>>,
    /// When running as one slice of a [`crate::shard`] lane: the lane
    /// index. Flushes then file ledger rows under the per-shard stage
    /// `sensor.stream.shard.<i>`, emit `sensor.shard.<i>.*` counters,
    /// and leave the merged gauges to the sharded driver.
    shard_index: Option<u32>,
}

impl StreamingSensor {
    /// Create a sensor; the first record anchors the first window.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.window.secs() > 0);
        assert!(config.max_originators > 0);
        StreamingSensor {
            probation_cap: config.resolved_probation_cap(),
            config,
            window_start: SimTime::ZERO,
            slot_of: FastMap::new(),
            arena: Vec::new(),
            free: Vec::new(),
            evict_heap: BinaryHeap::new(),
            probation: FastMap::new(),
            last_seen: FastMap::new(),
            all_queriers: CompactSet::new(),
            evicted: 0,
            started: false,
            tally: Tallies::default(),
            heap_pops: 0,
            pressure: None,
            shard_index: None,
        }
    }

    /// Mark this sensor as one slice of shard lane `i` — see the
    /// [`shard_index`](Self::shard_index) field. Set once, before the
    /// first record.
    pub(crate) fn set_shard_index(&mut self, i: u32) {
        self.shard_index = Some(i);
    }

    /// Probation resets accumulated in the current (unflushed) window
    /// — a diagnostic for the sharded pressure-broadcast path.
    pub(crate) fn pending_probation_resets(&self) -> u64 {
        self.tally.probation_resets
    }

    /// Attach a shared pressure cell (typically the bs-live watchdog's
    /// `HealthState`). Under pressure the sensor tightens its probation
    /// decay — the admission side-table shrinks to 1/4 of its cap when
    /// degraded (`1`) and 1/16 when critical (`2`), so wholesale
    /// probation clears fire sooner and storm memory drains faster,
    /// while already-tracked heavy hitters stay exact.
    pub fn set_pressure_hook(&mut self, hook: Arc<AtomicU8>) {
        self.pressure = Some(hook);
    }

    /// The probation cap currently in force, after graceful
    /// degradation. One relaxed atomic load on the (already slow)
    /// table-full path; free when no hook is attached.
    fn effective_probation_cap(&self) -> usize {
        let level = match &self.pressure {
            Some(cell) => cell.load(Ordering::Relaxed),
            None => 0,
        };
        let cap = match level {
            0 => self.probation_cap,
            1 => self.probation_cap / 4,
            _ => self.probation_cap / 16,
        };
        cap.max(MIN_PRESSURE_PROBATION_CAP.min(self.probation_cap))
    }

    /// Feed one record (records must arrive in time order). Returns the
    /// completed window when `r` crosses a window boundary. A record
    /// *behind* the current window start is counted and dropped — it
    /// belongs to a window that has already been emitted.
    pub fn push(&mut self, r: QueryLogRecord) -> Option<WindowSummary> {
        if !self.started {
            // Anchor windows at the first record's window boundary.
            self.window_start = SimTime(r.time.secs() - r.time.secs() % self.config.window.secs());
            self.started = true;
        }
        if r.time < self.window_start {
            self.tally.records += 1;
            self.tally.out_of_order += 1;
            return None;
        }
        let mut emitted = None;
        if r.time >= self.window_start + self.config.window {
            emitted = Some(self.rotate(r.time));
        }
        self.ingest(r);
        emitted
    }

    /// Flush the current (partial) window at end of stream.
    pub fn finish(mut self) -> Option<WindowSummary> {
        if !self.started || self.tracked_originators() == 0 {
            return None;
        }
        let end = self.window_start + self.config.window;
        Some(self.take_window(end))
    }

    /// Originators currently tracked (arena occupancy).
    pub fn tracked_originators(&self) -> usize {
        self.slot_of.len()
    }

    /// True when `originator` currently holds an arena slot.
    pub fn is_tracked(&self, originator: Ipv4Addr) -> bool {
        self.slot_of.contains_key(&u32::from(originator))
    }

    /// Lifetime lazy-heap pops performed while picking eviction
    /// victims — a cost diagnostic: with the heap, total pops stay
    /// proportional to admissions, where the seed's full-table scan
    /// paid `max_originators` comparisons *per* admission.
    pub fn eviction_heap_pops(&self) -> u64 {
        self.heap_pops
    }

    fn rotate(&mut self, now: SimTime) -> WindowSummary {
        let end = self.window_start + self.config.window;
        let summary = self.take_window(end);
        // Advance to the window containing `now` (possibly skipping
        // empty windows).
        let w = self.config.window.secs();
        self.window_start = SimTime(now.secs() - now.secs() % w);
        summary
    }

    /// Flush the current window — if it holds anything — and re-anchor
    /// at `next_start`. This is the [`crate::shard`] driver's rotation
    /// primitive: the *caller* owns the window clock, which lets every
    /// slice flush the same window even when some slices saw no
    /// records in it (a slice that pushes nothing never rotates on its
    /// own). After the call the sensor is anchored: records in
    /// `[next_start, next_start + window)` accumulate without
    /// re-deriving the grid from their timestamps.
    pub fn flush_to(&mut self, next_start: SimTime) -> Option<WindowSummary> {
        // An anchored slice with an empty arena has nothing to emit:
        // it only ever receives in-window records from the driver, so
        // zero tracked originators means zero tallies too.
        let summary = if self.started && self.tracked_originators() > 0 {
            let end = self.window_start + self.config.window;
            Some(self.take_window(end))
        } else {
            None
        };
        self.window_start = next_start;
        self.started = true;
        summary
    }

    fn take_window(&mut self, end: SimTime) -> WindowSummary {
        let _span = bs_telemetry::span("sensor.window_flush");
        // Cost attribution: single sensors file under the exact ledger
        // stage, sharded slices under the family prefix (bs-prof sums
        // the per-shard ledger stages at join time).
        let _cost = bs_prof::stage(
            if self.shard_index.is_some() { "sensor.stream.shard" } else { "sensor.stream" },
            self.window_start.secs(),
        );
        // Convert the arena into the BTree-ordered representation the
        // rest of the pipeline consumes — the only ordered work in the
        // streaming sensor, and it happens once per window.
        let mut per_originator = std::collections::BTreeMap::new();
        for slot in self.arena.drain(..) {
            if slot.occupied {
                let obs = slot.accum.into_observation();
                per_originator.insert(obs.originator, obs);
            }
        }
        let observations = Observations {
            window_start: self.window_start,
            window_end: end,
            per_originator,
            all_queriers: set_to_btree(&self.all_queriers),
        };
        self.slot_of.clear();
        self.free.clear();
        self.evict_heap.clear();
        self.probation.clear();
        self.last_seen.clear();
        self.all_queriers.clear();
        let evicted = std::mem::take(&mut self.evicted);
        let t = std::mem::take(&mut self.tally);
        bs_telemetry::counter_add("sensor.stream.records", t.records);
        bs_telemetry::counter_add("sensor.stream.dedup_suppressed", t.deduped);
        bs_telemetry::counter_add("sensor.stream.admissions", t.admitted);
        bs_telemetry::counter_add("sensor.stream.evictions", evicted as u64);
        bs_telemetry::counter_add("sensor.stream.out_of_order", t.out_of_order);
        bs_telemetry::counter_add("sensor.stream.probation_resets", t.probation_resets);
        if let Some(i) = self.shard_index {
            // Per-shard counters next to the global rollups above,
            // so shard skew is observable without losing the merged
            // totals.
            bs_telemetry::counter_add(&format!("sensor.shard.{i}.ingested"), t.records);
            bs_telemetry::counter_add(&format!("sensor.shard.{i}.evictions"), evicted as u64);
            bs_telemetry::counter_add(
                &format!("sensor.shard.{i}.probation_resets"),
                t.probation_resets,
            );
        }
        if bs_trace::is_active() {
            // Window conservation: every record this window was stored
            // (and survives in the emitted observations), deduped, held
            // in probation (still credited or dropped by a cap reset),
            // stored-then-lost to an eviction, or dropped as late.
            // Sharded slices book under their lane's own stage: a
            // wholesale probation clear on one shard rebooks
            // held→dropped only there, and conservation verifies both
            // per shard and summed across shards.
            let kept: u64 =
                observations.per_originator.values().map(|o| o.queries.len() as u64).sum();
            let stage = match self.shard_index {
                Some(i) => format!("sensor.stream.shard.{i}"),
                None => "sensor.stream".to_owned(),
            };
            let _w = bs_trace::ledger::window_scope(observations.window_start.secs());
            bs_trace::ledger::record(
                &stage,
                t.records,
                &[
                    ("kept", kept),
                    ("deduped", t.deduped),
                    ("probation_held", t.probation_held),
                    ("probation_dropped", t.probation_dropped),
                    ("evicted_queries", t.evicted_queries),
                    ("out_of_order", t.out_of_order),
                ],
            );
        }
        if self.shard_index.is_none() {
            // The sharded driver publishes these gauges merged across
            // lanes; individual slices flushing in parallel would race
            // to a meaningless last-writer value.
            bs_telemetry::gauge_set("sensor.window_evicted", evicted as i64);
            bs_telemetry::gauge_set(
                "sensor.tracked_originators",
                observations.per_originator.len() as i64,
            );
        }
        WindowSummary { window: (self.window_start, end), observations, evicted }
    }

    fn ingest(&mut self, r: QueryLogRecord) {
        self.tally.records += 1;
        // Dedup identical querier/originator pairs inside the window.
        let key = pack_pair(r.originator, r.querier);
        let (last, fresh) = self.last_seen.get_or_insert_with(key, || r.time.secs());
        if !fresh {
            if r.time.since(SimTime(*last)) < self.config.dedup {
                self.tally.deduped += 1;
                return;
            }
            *last = r.time.secs();
        }
        let querier = u32::from(r.querier);
        self.all_queriers.insert(querier);

        let originator = u32::from(r.originator);
        if let Some(&slot) = self.slot_of.get(&originator) {
            let accum = &mut self.arena[slot as usize].accum;
            accum.queries.push((r.time, r.querier));
            accum.queriers.insert(querier);
            return;
        }
        if self.slot_of.len() >= self.config.max_originators {
            // Admission control: count in probation first. The
            // probation table is itself capped — a storm of one-shot
            // originators otherwise grows it without bound inside a
            // window — and clears wholesale when full (counts already
            // credited to `probation_held` move to `probation_dropped`
            // so the conservation ledger still balances).
            if self.probation.len() >= self.effective_probation_cap()
                && !self.probation.contains_key(&originator)
            {
                let dropped: u64 = self.probation.values().map(|&c| c as u64).sum();
                self.tally.probation_held -= dropped;
                self.tally.probation_dropped += dropped;
                self.tally.probation_resets += 1;
                self.probation.clear();
            }
            let (hits, _) = self.probation.get_or_insert_with(originator, || 0);
            *hits += 1;
            if (*hits as usize) < self.config.admission_queries {
                self.tally.probation_held += 1;
                return;
            }
            self.evict_smallest();
            self.probation.remove(&originator);
            self.tally.admitted += 1;
        }
        // Admit: recycle a freed slot (keeping its allocations) or
        // grow the arena.
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.arena.push(Slot::default());
                (self.arena.len() - 1) as u32
            }
        };
        let s = &mut self.arena[slot as usize];
        s.occupied = true;
        s.accum.originator = r.originator;
        s.accum.queries.push((r.time, r.querier));
        s.accum.queriers.insert(querier);
        self.slot_of.insert(originator, slot);
        self.evict_heap.push(Reverse((1, originator)));
    }

    /// Evict the tracked originator with the smallest
    /// `(querier count, address)` — the same victim the reference's
    /// full-table scan picks — via the lazy heap: pop candidates,
    /// discard entries for already-evicted originators, refresh
    /// entries whose footprint has grown since they were pushed, and
    /// evict the first entry whose recorded count is current. Since
    /// footprints only grow, a refreshed entry can only move *later*
    /// in the order, so the first current entry is the true minimum.
    fn evict_smallest(&mut self) {
        while let Some(Reverse((count, originator))) = self.evict_heap.pop() {
            self.heap_pops += 1;
            let Some(&slot) = self.slot_of.get(&originator) else {
                continue; // stale: originator already evicted
            };
            let current = self.arena[slot as usize].accum.queriers.len();
            if current != count {
                self.evict_heap.push(Reverse((current, originator)));
                continue; // stale: footprint grew since the push
            }
            self.slot_of.remove(&originator);
            let s = &mut self.arena[slot as usize];
            self.tally.evicted_queries += s.accum.queries.len() as u64;
            s.accum.queries.clear();
            s.accum.queriers.clear();
            s.occupied = false;
            self.free.push(slot);
            self.evicted += 1;
            return;
        }
        // Unreachable while the table is full (every tracked
        // originator keeps at least one heap entry), but harmless: an
        // empty heap just means there is nothing to evict.
    }
}

/// The retained reference implementation of [`StreamingSensor`]: the
/// original BTree/std-container sensor, kept as the executable
/// specification the fast path is property-tested against (same
/// per-originator streams, querier sets, dedup decisions, probation
/// accounting, and evictions — the eviction victim here is picked by
/// the seed's O(n) `min_by_key` scan). No telemetry — it defines
/// behavior, it does not run in production.
pub struct ReferenceStreamingSensor {
    config: StreamConfig,
    probation_cap: usize,
    window_start: SimTime,
    per_originator: std::collections::BTreeMap<Ipv4Addr, OriginatorObservation>,
    probation: std::collections::HashMap<Ipv4Addr, usize>,
    last_seen: std::collections::HashMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    all_queriers: std::collections::BTreeSet<Ipv4Addr>,
    evicted: usize,
    started: bool,
}

impl ReferenceStreamingSensor {
    /// Create a reference sensor; the first record anchors the window.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.window.secs() > 0);
        assert!(config.max_originators > 0);
        ReferenceStreamingSensor {
            probation_cap: config.resolved_probation_cap(),
            config,
            window_start: SimTime::ZERO,
            per_originator: std::collections::BTreeMap::new(),
            probation: std::collections::HashMap::new(),
            last_seen: std::collections::HashMap::new(),
            all_queriers: std::collections::BTreeSet::new(),
            evicted: 0,
            started: false,
        }
    }

    /// Feed one record; semantics identical to
    /// [`StreamingSensor::push`].
    pub fn push(&mut self, r: QueryLogRecord) -> Option<WindowSummary> {
        if !self.started {
            self.window_start = SimTime(r.time.secs() - r.time.secs() % self.config.window.secs());
            self.started = true;
        }
        if r.time < self.window_start {
            return None; // out of order: dropped
        }
        let mut emitted = None;
        if r.time >= self.window_start + self.config.window {
            emitted = Some(self.rotate(r.time));
        }
        self.ingest(r);
        emitted
    }

    /// Flush the current (partial) window at end of stream.
    pub fn finish(mut self) -> Option<WindowSummary> {
        if !self.started || self.per_originator.is_empty() {
            return None;
        }
        let end = self.window_start + self.config.window;
        Some(self.take_window(end))
    }

    fn rotate(&mut self, now: SimTime) -> WindowSummary {
        let end = self.window_start + self.config.window;
        let summary = self.take_window(end);
        let w = self.config.window.secs();
        self.window_start = SimTime(now.secs() - now.secs() % w);
        summary
    }

    /// Flush the current window (if non-empty) and re-anchor at
    /// `next_start`; semantics identical to
    /// [`StreamingSensor::flush_to`].
    pub fn flush_to(&mut self, next_start: SimTime) -> Option<WindowSummary> {
        let summary = if self.started && !self.per_originator.is_empty() {
            let end = self.window_start + self.config.window;
            Some(self.take_window(end))
        } else {
            None
        };
        self.window_start = next_start;
        self.started = true;
        summary
    }

    fn take_window(&mut self, end: SimTime) -> WindowSummary {
        let observations = Observations {
            window_start: self.window_start,
            window_end: end,
            per_originator: std::mem::take(&mut self.per_originator),
            all_queriers: std::mem::take(&mut self.all_queriers),
        };
        self.probation.clear();
        self.last_seen.clear();
        let evicted = std::mem::take(&mut self.evicted);
        WindowSummary { window: (self.window_start, end), observations, evicted }
    }

    fn ingest(&mut self, r: QueryLogRecord) {
        use std::collections::btree_map::Entry;
        let key = (r.originator, r.querier);
        match self.last_seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if r.time.since(*e.get()) < self.config.dedup {
                    return; // deduped
                }
                e.insert(r.time);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(r.time);
            }
        }
        self.all_queriers.insert(r.querier);

        match self.per_originator.entry(r.originator) {
            Entry::Occupied(mut e) => {
                let o = e.get_mut();
                o.queries.push((r.time, r.querier));
                o.queriers.insert(r.querier);
            }
            Entry::Vacant(_) => {
                if self.per_originator.len() >= self.config.max_originators {
                    // Probation cap: clear wholesale when full and a
                    // new entry is needed.
                    if self.probation.len() >= self.probation_cap
                        && !self.probation.contains_key(&r.originator)
                    {
                        self.probation.clear();
                    }
                    // Admission control: count in probation first.
                    let hits = self.probation.entry(r.originator).or_insert(0);
                    *hits += 1;
                    if *hits < self.config.admission_queries {
                        return; // held
                    }
                    // Evict the smallest tracked originator (full scan).
                    if let Some(victim) = self
                        .per_originator
                        .iter()
                        .min_by_key(|(ip, o)| (o.querier_count(), **ip))
                        .map(|(ip, _)| *ip)
                    {
                        self.per_originator.remove(&victim);
                        self.evicted += 1;
                    }
                    self.probation.remove(&r.originator);
                }
                let mut o =
                    OriginatorObservation { originator: r.originator, ..Default::default() };
                o.queries.push((r.time, r.querier));
                o.queriers.insert(r.querier);
                self.per_originator.insert(r.originator, o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::Rcode;

    fn rec(t: u64, q: u32, o: u32) -> QueryLogRecord {
        QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::from(0x0A00_0000 | q),
            originator: Ipv4Addr::from(0xCB00_0000 | o),
            rcode: Rcode::NoError,
        }
    }

    #[test]
    fn matches_batch_ingestion_when_unbounded() {
        // Stream vs batch over the same records must agree exactly.
        let records: Vec<QueryLogRecord> =
            (0..500u32).map(|i| rec((i as u64 * 37) % 86_000, i % 40, i % 7)).collect();
        let mut sorted = records.clone();
        sorted.sort_by_key(|r| r.time);

        let mut log = bs_netsim::log::QueryLog::new();
        for r in &sorted {
            log.push(*r);
        }
        let batch = Observations::ingest(&log, SimTime(0), SimTime(86_400));

        let mut sensor = StreamingSensor::new(StreamConfig::default());
        for r in &sorted {
            assert!(sensor.push(*r).is_none(), "all inside one window");
        }
        let window = sensor.finish().expect("one window");
        assert_eq!(window.observations.per_originator, batch.per_originator);
        assert_eq!(window.observations.all_queriers, batch.all_queriers);
        assert_eq!(window.evicted, 0);
    }

    #[test]
    fn windows_rotate_on_boundaries() {
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
        let mut sensor = StreamingSensor::new(cfg);
        assert!(sensor.push(rec(10, 1, 1)).is_none());
        assert!(sensor.push(rec(99, 2, 1)).is_none());
        let w1 = sensor.push(rec(100, 3, 1)).expect("boundary crossed");
        assert_eq!(w1.window, (SimTime(0), SimTime(100)));
        assert_eq!(w1.observations.per_originator.len(), 1);
        assert_eq!(w1.observations.per_originator.values().next().unwrap().querier_count(), 2);
        // Jumping several windows ahead lands in the right window.
        let w2 = sensor.push(rec(555, 4, 2)).expect("second window emitted");
        assert_eq!(w2.window.0, SimTime(100));
        let w3 = sensor.finish().expect("final flush");
        assert_eq!(w3.window.0, SimTime(500));
    }

    #[test]
    fn memory_bound_preserves_heavy_hitters() {
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 10,
            admission_queries: 3,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        let mut t = 0u64;
        // One heavy originator with 50 queriers…
        for q in 0..50u32 {
            sensor.push(rec(t, q, 999));
            t += 40;
        }
        // …then a storm of 200 one-shot originators.
        for o in 0..200u32 {
            sensor.push(rec(t, o + 100, o));
            t += 1;
        }
        let w = sensor.finish().expect("window");
        let heavy = Ipv4Addr::from(0xCB00_0000 | 999);
        let obs =
            w.observations.per_originator.get(&heavy).expect("heavy hitter survives the storm");
        assert_eq!(obs.querier_count(), 50);
        assert!(w.observations.per_originator.len() <= 10);
    }

    #[test]
    fn admission_filter_requires_repeat_visits() {
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 2,
            admission_queries: 3,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        sensor.push(rec(0, 1, 1));
        sensor.push(rec(31, 2, 1));
        sensor.push(rec(62, 3, 2));
        // A single-shot stranger must not evict anyone…
        sensor.push(rec(93, 4, 3));
        assert_eq!(sensor.tracked_originators(), 2);
        assert!(!sensor.is_tracked(Ipv4Addr::from(0xCB00_0000 | 3)));
        // …but a persistent one (3 distinct queriers, spaced) gets in.
        sensor.push(rec(200, 5, 3));
        sensor.push(rec(300, 6, 3));
        assert!(sensor.is_tracked(Ipv4Addr::from(0xCB00_0000 | 3)));
    }

    #[test]
    fn eviction_accounting_matches_summary_and_counter() {
        // Regression: WindowSummary::evicted must count exactly the
        // admission-filter evictions, and the global eviction counter
        // must advance by at least as much (other tests share the
        // process-wide registry, so the counter delta is a lower bound).
        bs_telemetry::enable();
        let counter_before = bs_telemetry::registry().counter("sensor.stream.evictions").get();

        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 3,
            admission_queries: 2,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        // Fill the table with three originators.
        for o in 1..=3u32 {
            sensor.push(rec(o as u64, o, o));
        }
        assert_eq!(sensor.tracked_originators(), 3);
        // Newcomer 10: first visit lands in probation, second evicts.
        sensor.push(rec(100, 10, 10));
        assert_eq!(sensor.evicted, 0, "probation must not evict");
        sensor.push(rec(200, 11, 10));
        assert_eq!(sensor.evicted, 1, "admission must evict exactly one");
        // Newcomer 20 repeats the dance for a second eviction.
        sensor.push(rec(300, 20, 20));
        sensor.push(rec(400, 21, 20));
        assert_eq!(sensor.evicted, 2);

        let w = sensor.finish().expect("window");
        assert_eq!(w.evicted, 2, "summary must report both evictions");
        assert!(w.observations.per_originator.len() <= 3);

        let counter_after = bs_telemetry::registry().counter("sensor.stream.evictions").get();
        assert!(
            counter_after - counter_before >= 2,
            "eviction counter must advance by at least the window's evictions \
             (before={counter_before}, after={counter_after})"
        );
        // The gauge publishes the most recent window flush; some other
        // test may flush concurrently, so only check it is non-negative.
        assert!(bs_telemetry::registry().gauge("sensor.window_evicted").get() >= 0);
    }

    #[test]
    fn dedup_applies_in_stream() {
        let mut sensor = StreamingSensor::new(StreamConfig::default());
        sensor.push(rec(0, 1, 1));
        sensor.push(rec(10, 1, 1)); // dropped
        sensor.push(rec(31, 1, 1)); // kept
        let w = sensor.finish().unwrap();
        let o = w.observations.per_originator.values().next().unwrap();
        assert_eq!(o.query_count(), 2);
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let sensor = StreamingSensor::new(StreamConfig::default());
        assert!(sensor.finish().is_none());
    }

    #[test]
    fn out_of_order_records_are_counted_and_dropped() {
        bs_telemetry::enable();
        let before = bs_telemetry::registry().counter("sensor.stream.out_of_order").get();
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
        let mut sensor = StreamingSensor::new(cfg);
        sensor.push(rec(150, 1, 1)); // anchors window [100, 200)
        assert!(sensor.push(rec(99, 2, 2)).is_none(), "late record must not rotate");
        assert!(!sensor.is_tracked(Ipv4Addr::from(0xCB00_0000 | 2)), "late record dropped");
        // A late record must also never be credited to a *new* window
        // after rotation.
        let w = sensor.push(rec(250, 3, 3)).expect("rotation");
        assert_eq!(w.observations.per_originator.len(), 1);
        sensor.push(rec(201, 4, 4)); // in-window, fine
        assert!(sensor.push(rec(150, 5, 5)).is_none());
        assert!(!sensor.is_tracked(Ipv4Addr::from(0xCB00_0000 | 5)));
        let w = sensor.finish().expect("final window");
        assert_eq!(w.observations.per_originator.len(), 2);
        let after = bs_telemetry::registry().counter("sensor.stream.out_of_order").get();
        assert!(after - before >= 2, "both late records counted (before={before}, after={after})");
    }

    #[test]
    fn probation_table_is_capped() {
        bs_telemetry::enable();
        let before = bs_telemetry::registry().counter("sensor.stream.probation_resets").get();
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 4,
            admission_queries: 100, // nothing ever admits: pure probation pressure
            probation_cap: 16,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        // Fill the tracked table.
        for o in 0..4u32 {
            sensor.push(rec(o as u64, o, o));
        }
        // A storm of 10 000 distinct one-shot originators: without the
        // cap the probation table would hold all of them.
        for o in 0..10_000u32 {
            sensor.push(rec(100 + o as u64, o % 200, 1000 + o));
        }
        assert!(
            sensor.probation.len() <= 16,
            "probation table exceeded its cap: {}",
            sensor.probation.len()
        );
        let w = sensor.finish().expect("window");
        assert_eq!(w.observations.per_originator.len(), 4, "tracked set unaffected by the storm");
        let after = bs_telemetry::registry().counter("sensor.stream.probation_resets").get();
        assert!(after > before, "cap resets must be counted");
    }

    #[test]
    fn pressure_hook_tightens_probation_decay() {
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 4,
            admission_queries: 100, // nothing admits: pure probation load
            probation_cap: 4_096,
            ..Default::default()
        };
        let hook = Arc::new(AtomicU8::new(0));
        let mut sensor = StreamingSensor::new(cfg);
        sensor.set_pressure_hook(Arc::clone(&hook));
        for o in 0..4u32 {
            sensor.push(rec(o as u64, o, o));
        }
        // Healthy: the full probation cap is in force.
        for o in 0..2_000u32 {
            sensor.push(rec(100 + o as u64, o % 100, 1_000 + o));
        }
        assert_eq!(sensor.tally.probation_resets, 0, "2000 < 4096: no reset while healthy");
        assert_eq!(sensor.probation.len(), 2_000);

        // The watchdog flips to degraded: cap shrinks to 1024, so the
        // next newcomer finds the table over-full and clears it.
        hook.store(1, Ordering::Relaxed);
        sensor.push(rec(10_000, 1, 50_000));
        assert_eq!(sensor.tally.probation_resets, 1, "degraded cap forces the decay");
        assert!(sensor.probation.len() <= 1_024);

        // Critical shrinks it to 256.
        hook.store(2, Ordering::Relaxed);
        for o in 0..400u32 {
            sensor.push(rec(20_000 + o as u64, o % 100, 60_000 + o));
        }
        assert!(sensor.probation.len() <= 256, "critical cap: {}", sensor.probation.len());
        assert!(sensor.tally.probation_resets >= 2);

        // Recovery restores the configured cap; tracked set unharmed.
        hook.store(0, Ordering::Relaxed);
        assert_eq!(sensor.effective_probation_cap(), 4_096);
        let w = sensor.finish().expect("window");
        assert_eq!(w.observations.per_originator.len(), 4, "tracked heavy hitters survive");
    }

    #[test]
    fn pressure_floor_keeps_a_minimum_probation_table() {
        // Even critical pressure must not shrink probation below the
        // floor (or below a deliberately tiny configured cap).
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 4,
            admission_queries: 100,
            probation_cap: 64,
            ..Default::default()
        };
        let hook = Arc::new(AtomicU8::new(2));
        let mut sensor = StreamingSensor::new(cfg);
        sensor.set_pressure_hook(Arc::clone(&hook));
        assert_eq!(sensor.effective_probation_cap(), 16, "64/16=4 clamps up to the floor");

        let tiny = StreamConfig { probation_cap: 8, ..cfg };
        let mut sensor = StreamingSensor::new(tiny);
        sensor.set_pressure_hook(hook);
        assert_eq!(sensor.effective_probation_cap(), 8, "caps below the floor are kept as-is");
    }

    #[test]
    fn eviction_work_is_sublinear_on_storms() {
        // Regression for the seed's O(n) full-table eviction scan: a
        // storm driving thousands of admissions through a large table
        // must do work proportional to the admissions, not to
        // admissions × table size. With the lazy heap, each admission
        // costs a couple of pops (the victim, plus the occasional
        // stale refresh); the scan it replaced cost `max_originators`
        // comparisons every time.
        let max = 2_000usize;
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: max,
            admission_queries: 2,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        // Fill the table, two queriers per originator so the fill
        // cohort outranks the storm's singletons. All (originator,
        // querier) pairs are distinct, so the dedup window never
        // triggers and the whole run stays inside one day-long window.
        for o in 0..max as u32 {
            sensor.push(rec(o as u64, 2 * o, o));
            sensor.push(rec(o as u64 + 1, 2 * o + 1, o));
        }
        // Storm: 4 000 newcomers, each admitted on its second visit.
        let storm = 4_000u32;
        for o in 0..storm {
            let t = 10_000 + o as u64;
            sensor.push(rec(t, o, 100_000 + o));
            sensor.push(rec(t + 1, o + 1, 100_000 + o));
        }
        let pops = sensor.eviction_heap_pops();
        let w = sensor.finish().expect("window");
        assert_eq!(w.evicted, storm as usize, "every storm admission evicts exactly once");
        // Generous bound: a handful of pops per eviction, independent
        // of table size. The replaced scan would score 4 000 × 2 000 =
        // 8 000 000 on this workload's equivalent metric.
        assert!(
            pops <= 8 * storm as u64 + max as u64,
            "lazy heap did too much work: {pops} pops for {storm} evictions"
        );
    }

    #[test]
    fn arena_slots_are_recycled_after_eviction() {
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 8,
            admission_queries: 1, // every newcomer admits immediately
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        for o in 0..1_000u32 {
            sensor.push(rec(o as u64 * 40, o % 50, o));
        }
        assert!(
            sensor.arena.len() <= 9,
            "arena must recycle evicted slots, not grow per admission (len={})",
            sensor.arena.len()
        );
        let w = sensor.finish().expect("window");
        assert!(w.observations.per_originator.len() <= 8);
    }
}
