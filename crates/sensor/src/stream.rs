//! Streaming ingestion: the sensor as a long-running process.
//!
//! The batch path ([`crate::ingest::Observations`]) wants a whole
//! window's log in memory — fine for research replay, wrong for a
//! production tap at a busy authority. [`StreamingSensor`] consumes one
//! record at a time, keeps per-originator state with a hard memory
//! bound, and emits completed windows as the stream crosses window
//! boundaries.
//!
//! # Memory bound
//!
//! Per-originator state is capped at [`StreamConfig::max_originators`].
//! When full, a new originator evicts the current *smallest* tracked
//! originator, but only when the newcomer has already been seen
//! [`StreamConfig::admission_queries`] times in a probation side-table
//! — an admission filter that stops one-off originators from thrashing
//! the table while keeping the heavy hitters exact. Analyzable
//! originators (the paper's ≥ 20 queriers) are far above the admission
//! bar, so eviction only ever touches originators the pipeline would
//! discard anyway — unless the table is sized below the number of
//! simultaneously-large originators, which [`WindowSummary::evicted`]
//! makes visible.

use crate::ingest::{Observations, OriginatorObservation, DEDUP_WINDOW};
use bs_dns::{SimDuration, SimTime};
use bs_netsim::log::QueryLogRecord;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Streaming-sensor configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Window length.
    pub window: SimDuration,
    /// Hard cap on tracked originators per window.
    pub max_originators: usize,
    /// Queries an unknown originator must accumulate (in the probation
    /// table) before it may evict a tracked one.
    pub admission_queries: usize,
    /// Per-querier dedup window (the paper's 30 s).
    pub dedup: SimDuration,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 100_000,
            admission_queries: 3,
            dedup: DEDUP_WINDOW,
        }
    }
}

/// A completed window emitted by the streaming sensor.
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// The window bounds.
    pub window: (SimTime, SimTime),
    /// Per-originator observations, equivalent to the batch path's.
    pub observations: Observations,
    /// Originators evicted during the window (their counts are lower
    /// bounds; anything that mattered was far above the analyzability
    /// bar before eviction could touch it).
    pub evicted: usize,
}

/// The streaming sensor.
pub struct StreamingSensor {
    config: StreamConfig,
    window_start: SimTime,
    per_originator: BTreeMap<Ipv4Addr, OriginatorObservation>,
    probation: HashMap<Ipv4Addr, usize>,
    last_seen: HashMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    all_queriers: std::collections::BTreeSet<Ipv4Addr>,
    evicted: usize,
    started: bool,
    // Window-local telemetry tallies, flushed to the global registry at
    // window boundaries so the per-record hot path stays atomics-free.
    tally_records: u64,
    tally_deduped: u64,
    tally_admitted: u64,
    // Conservation-ledger tallies: records held back by the admission
    // filter, and stored queries lost to evicted originators.
    tally_probation: u64,
    tally_evicted_queries: u64,
}

impl StreamingSensor {
    /// Create a sensor; the first record anchors the first window.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.window.secs() > 0);
        assert!(config.max_originators > 0);
        StreamingSensor {
            config,
            window_start: SimTime::ZERO,
            per_originator: BTreeMap::new(),
            probation: HashMap::new(),
            last_seen: HashMap::new(),
            all_queriers: std::collections::BTreeSet::new(),
            evicted: 0,
            started: false,
            tally_records: 0,
            tally_deduped: 0,
            tally_admitted: 0,
            tally_probation: 0,
            tally_evicted_queries: 0,
        }
    }

    /// Feed one record (records must arrive in time order). Returns the
    /// completed window when `r` crosses a window boundary.
    pub fn push(&mut self, r: QueryLogRecord) -> Option<WindowSummary> {
        if !self.started {
            // Anchor windows at the first record's window boundary.
            self.window_start = SimTime(r.time.secs() - r.time.secs() % self.config.window.secs());
            self.started = true;
        }
        let mut emitted = None;
        if r.time >= self.window_start + self.config.window {
            emitted = Some(self.rotate(r.time));
        }
        self.ingest(r);
        emitted
    }

    /// Flush the current (partial) window at end of stream.
    pub fn finish(mut self) -> Option<WindowSummary> {
        if !self.started || self.per_originator.is_empty() {
            return None;
        }
        let end = self.window_start + self.config.window;
        Some(self.take_window(end))
    }

    fn rotate(&mut self, now: SimTime) -> WindowSummary {
        let end = self.window_start + self.config.window;
        let summary = self.take_window(end);
        // Advance to the window containing `now` (possibly skipping
        // empty windows).
        let w = self.config.window.secs();
        self.window_start = SimTime(now.secs() - now.secs() % w);
        summary
    }

    fn take_window(&mut self, end: SimTime) -> WindowSummary {
        let _span = bs_telemetry::span("sensor.window_flush");
        let observations = Observations {
            window_start: self.window_start,
            window_end: end,
            per_originator: std::mem::take(&mut self.per_originator),
            all_queriers: std::mem::take(&mut self.all_queriers),
        };
        self.probation.clear();
        self.last_seen.clear();
        let evicted = std::mem::take(&mut self.evicted);
        let records = std::mem::take(&mut self.tally_records);
        let deduped = std::mem::take(&mut self.tally_deduped);
        let admitted = std::mem::take(&mut self.tally_admitted);
        let probation = std::mem::take(&mut self.tally_probation);
        let evicted_queries = std::mem::take(&mut self.tally_evicted_queries);
        bs_telemetry::counter_add("sensor.stream.records", records);
        bs_telemetry::counter_add("sensor.stream.dedup_suppressed", deduped);
        bs_telemetry::counter_add("sensor.stream.admissions", admitted);
        bs_telemetry::counter_add("sensor.stream.evictions", evicted as u64);
        if bs_trace::is_enabled() {
            // Window conservation: every record this window was stored
            // (and survives in the emitted observations), deduped, held
            // in probation, or stored-then-lost to an eviction.
            let kept: u64 =
                observations.per_originator.values().map(|o| o.queries.len() as u64).sum();
            let _w = bs_trace::ledger::window_scope(observations.window_start.secs());
            bs_trace::ledger::record(
                "sensor.stream",
                records,
                &[
                    ("kept", kept),
                    ("deduped", deduped),
                    ("probation_held", probation),
                    ("evicted_queries", evicted_queries),
                ],
            );
        }
        bs_telemetry::gauge_set("sensor.window_evicted", evicted as i64);
        bs_telemetry::gauge_set(
            "sensor.tracked_originators",
            observations.per_originator.len() as i64,
        );
        WindowSummary { window: (self.window_start, end), observations, evicted }
    }

    fn ingest(&mut self, r: QueryLogRecord) {
        self.tally_records += 1;
        // Dedup identical querier/originator pairs inside the window.
        let key = (r.originator, r.querier);
        match self.last_seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if r.time.since(*e.get()) < self.config.dedup {
                    self.tally_deduped += 1;
                    return;
                }
                e.insert(r.time);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(r.time);
            }
        }
        self.all_queriers.insert(r.querier);

        match self.per_originator.entry(r.originator) {
            Entry::Occupied(mut e) => {
                let o = e.get_mut();
                o.queries.push((r.time, r.querier));
                o.queriers.insert(r.querier);
            }
            Entry::Vacant(_) => {
                if self.per_originator.len() >= self.config.max_originators {
                    // Admission control: count in probation first.
                    let hits = self.probation.entry(r.originator).or_insert(0);
                    *hits += 1;
                    if *hits < self.config.admission_queries {
                        self.tally_probation += 1;
                        return;
                    }
                    // Evict the smallest tracked originator.
                    if let Some(victim) = self
                        .per_originator
                        .iter()
                        .min_by_key(|(ip, o)| (o.querier_count(), **ip))
                        .map(|(ip, _)| *ip)
                    {
                        if let Some(gone) = self.per_originator.remove(&victim) {
                            self.tally_evicted_queries += gone.queries.len() as u64;
                        }
                        self.evicted += 1;
                    }
                    self.probation.remove(&r.originator);
                    self.tally_admitted += 1;
                }
                let mut o =
                    OriginatorObservation { originator: r.originator, ..Default::default() };
                o.queries.push((r.time, r.querier));
                o.queriers.insert(r.querier);
                self.per_originator.insert(r.originator, o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::Rcode;

    fn rec(t: u64, q: u32, o: u32) -> QueryLogRecord {
        QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::from(0x0A00_0000 | q),
            originator: Ipv4Addr::from(0xCB00_0000 | o),
            rcode: Rcode::NoError,
        }
    }

    #[test]
    fn matches_batch_ingestion_when_unbounded() {
        // Stream vs batch over the same records must agree exactly.
        let records: Vec<QueryLogRecord> =
            (0..500u32).map(|i| rec((i as u64 * 37) % 86_000, i % 40, i % 7)).collect();
        let mut sorted = records.clone();
        sorted.sort_by_key(|r| r.time);

        let mut log = bs_netsim::log::QueryLog::new();
        for r in &sorted {
            log.push(*r);
        }
        let batch = Observations::ingest(&log, SimTime(0), SimTime(86_400));

        let mut sensor = StreamingSensor::new(StreamConfig::default());
        for r in &sorted {
            assert!(sensor.push(*r).is_none(), "all inside one window");
        }
        let window = sensor.finish().expect("one window");
        assert_eq!(window.observations.per_originator, batch.per_originator);
        assert_eq!(window.observations.all_queriers, batch.all_queriers);
        assert_eq!(window.evicted, 0);
    }

    #[test]
    fn windows_rotate_on_boundaries() {
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
        let mut sensor = StreamingSensor::new(cfg);
        assert!(sensor.push(rec(10, 1, 1)).is_none());
        assert!(sensor.push(rec(99, 2, 1)).is_none());
        let w1 = sensor.push(rec(100, 3, 1)).expect("boundary crossed");
        assert_eq!(w1.window, (SimTime(0), SimTime(100)));
        assert_eq!(w1.observations.per_originator.len(), 1);
        assert_eq!(w1.observations.per_originator.values().next().unwrap().querier_count(), 2);
        // Jumping several windows ahead lands in the right window.
        let w2 = sensor.push(rec(555, 4, 2)).expect("second window emitted");
        assert_eq!(w2.window.0, SimTime(100));
        let w3 = sensor.finish().expect("final flush");
        assert_eq!(w3.window.0, SimTime(500));
    }

    #[test]
    fn memory_bound_preserves_heavy_hitters() {
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 10,
            admission_queries: 3,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        let mut t = 0u64;
        // One heavy originator with 50 queriers…
        for q in 0..50u32 {
            sensor.push(rec(t, q, 999));
            t += 40;
        }
        // …then a storm of 200 one-shot originators.
        for o in 0..200u32 {
            sensor.push(rec(t, o + 100, o));
            t += 1;
        }
        let w = sensor.finish().expect("window");
        let heavy = Ipv4Addr::from(0xCB00_0000 | 999);
        let obs =
            w.observations.per_originator.get(&heavy).expect("heavy hitter survives the storm");
        assert_eq!(obs.querier_count(), 50);
        assert!(w.observations.per_originator.len() <= 10);
    }

    #[test]
    fn admission_filter_requires_repeat_visits() {
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 2,
            admission_queries: 3,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        sensor.push(rec(0, 1, 1));
        sensor.push(rec(31, 2, 1));
        sensor.push(rec(62, 3, 2));
        // A single-shot stranger must not evict anyone…
        sensor.push(rec(93, 4, 3));
        let tracked: Vec<_> = sensor.per_originator.keys().copied().collect();
        assert_eq!(tracked.len(), 2);
        assert!(!tracked.contains(&Ipv4Addr::from(0xCB00_0000 | 3)));
        // …but a persistent one (3 distinct queriers, spaced) gets in.
        sensor.push(rec(200, 5, 3));
        sensor.push(rec(300, 6, 3));
        assert!(sensor.per_originator.contains_key(&Ipv4Addr::from(0xCB00_0000 | 3)));
    }

    #[test]
    fn eviction_accounting_matches_summary_and_counter() {
        // Regression: WindowSummary::evicted must count exactly the
        // admission-filter evictions, and the global eviction counter
        // must advance by at least as much (other tests share the
        // process-wide registry, so the counter delta is a lower bound).
        bs_telemetry::enable();
        let counter_before = bs_telemetry::registry().counter("sensor.stream.evictions").get();

        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: 3,
            admission_queries: 2,
            ..Default::default()
        };
        let mut sensor = StreamingSensor::new(cfg);
        // Fill the table with three originators.
        for o in 1..=3u32 {
            sensor.push(rec(o as u64, o, o));
        }
        assert_eq!(sensor.per_originator.len(), 3);
        // Newcomer 10: first visit lands in probation, second evicts.
        sensor.push(rec(100, 10, 10));
        assert_eq!(sensor.evicted, 0, "probation must not evict");
        sensor.push(rec(200, 11, 10));
        assert_eq!(sensor.evicted, 1, "admission must evict exactly one");
        // Newcomer 20 repeats the dance for a second eviction.
        sensor.push(rec(300, 20, 20));
        sensor.push(rec(400, 21, 20));
        assert_eq!(sensor.evicted, 2);

        let w = sensor.finish().expect("window");
        assert_eq!(w.evicted, 2, "summary must report both evictions");
        assert!(w.observations.per_originator.len() <= 3);

        let counter_after = bs_telemetry::registry().counter("sensor.stream.evictions").get();
        assert!(
            counter_after - counter_before >= 2,
            "eviction counter must advance by at least the window's evictions \
             (before={counter_before}, after={counter_after})"
        );
        // The gauge publishes the most recent window flush; some other
        // test may flush concurrently, so only check it is non-negative.
        assert!(bs_telemetry::registry().gauge("sensor.window_evicted").get() >= 0);
    }

    #[test]
    fn dedup_applies_in_stream() {
        let mut sensor = StreamingSensor::new(StreamConfig::default());
        sensor.push(rec(0, 1, 1));
        sensor.push(rec(10, 1, 1)); // dropped
        sensor.push(rec(31, 1, 1)); // kept
        let w = sensor.finish().unwrap();
        let o = w.observations.per_originator.values().next().unwrap();
        assert_eq!(o.query_count(), 2);
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let sensor = StreamingSensor::new(StreamConfig::default());
        assert!(sensor.finish().is_none());
    }
}
