//! Dynamic features: temporal and spatial structure of the queriers
//! (paper §III-C).
//!
//! * **queries per querier** — mean deduplicated queries per unique
//!   querier, a caching-blurred proxy for originator rate;
//! * **persistence** — fraction of the window's 10-minute periods in
//!   which the originator appears (the paper counts raw periods; we
//!   normalize by window length so feature values are comparable across
//!   the 36-hour, 50-hour and 7-day windows — documented deviation);
//! * **local entropy** — Shannon entropy of querier /24 prefixes,
//!   normalized to `[0, 1]`;
//! * **global entropy** — Shannon entropy of querier /8 prefixes over
//!   the 256-way /8 alphabet (geographically meaningful because /8s are
//!   assigned by region);
//! * **AS/country ratios** — unique querier ASes (countries) divided by
//!   all ASes (countries) seen in the whole window;
//! * **countries (ASes) per querier** — geographic spread normalized by
//!   footprint.

use crate::ingest::OriginatorObservation;
use crate::QuerierInfo;
use bs_dns::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Length of a persistence period in seconds (paper: 10 minutes).
pub const PERSISTENCE_PERIOD: u64 = 600;

/// The eight dynamic features of one originator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DynamicFeatures {
    /// Mean deduplicated queries per unique querier (≥ 1).
    pub queries_per_querier: f64,
    /// Fraction of 10-minute periods containing the originator.
    pub persistence: f64,
    /// Normalized entropy of querier /24 prefixes.
    pub local_entropy: f64,
    /// Normalized entropy of querier /8 prefixes.
    pub global_entropy: f64,
    /// Unique querier ASes / total window ASes.
    pub as_ratio: f64,
    /// Unique querier countries / total window countries.
    pub country_ratio: f64,
    /// Unique countries per unique querier.
    pub countries_per_querier: f64,
    /// Unique ASes per unique querier.
    pub ases_per_querier: f64,
}

impl DynamicFeatures {
    /// Feature names in vector order.
    pub fn names() -> [&'static str; 8] {
        [
            "queries-per-querier",
            "persistence",
            "local-entropy",
            "global-entropy",
            "as-ratio",
            "country-ratio",
            "countries-per-querier",
            "ases-per-querier",
        ]
    }

    /// As a fixed-order vector.
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.queries_per_querier,
            self.persistence,
            self.local_entropy,
            self.global_entropy,
            self.as_ratio,
            self.country_ratio,
            self.countries_per_querier,
            self.ases_per_querier,
        ]
    }

    /// Compute the features for one originator by consulting `info`
    /// per querier — the reference path.
    ///
    /// `total_ases` / `total_countries` are window-global totals (see
    /// [`crate::Observations::total_ases`]). The fast extraction path
    /// obtains the same AS/country cardinalities from the interned
    /// [`crate::qmeta::QuerierMetaTable`] and funnels them through
    /// [`DynamicFeatures::from_counts`], the shared arithmetic both
    /// paths use — which is what makes them bit-identical.
    pub fn compute(
        obs: &OriginatorObservation,
        info: &(impl QuerierInfo + Sync),
        window_start: SimTime,
        window_end: SimTime,
        total_ases: usize,
        total_countries: usize,
    ) -> Self {
        if obs.querier_count() == 0 {
            return DynamicFeatures::default();
        }
        // The per-querier AS/country lookups are the expensive part for
        // large footprints (they consult external metadata). Chunked
        // parallel lookup is deterministic because the chunk results
        // merge into sets — order cannot matter.
        let queriers: Vec<std::net::Ipv4Addr> = obs.queriers.iter().copied().collect();
        let ases = unique_by(&queriers, |q| info.querier_as(q));
        let countries = unique_by(&queriers, |q| info.querier_country(q));
        Self::from_counts(
            obs,
            window_start,
            window_end,
            ases.len(),
            countries.len(),
            total_ases,
            total_countries,
        )
    }

    /// Compute the features for one originator given already-counted
    /// distinct-AS/country cardinalities for its footprint.
    ///
    /// This is the arithmetic core shared by [`DynamicFeatures::compute`]
    /// (which counts via per-querier `info` lookups) and the
    /// qmeta-table fast path (which counts via dense-id bitmaps); all
    /// float operations live here exactly once, so the two paths
    /// cannot drift.
    pub fn from_counts(
        obs: &OriginatorObservation,
        window_start: SimTime,
        window_end: SimTime,
        footprint_ases: usize,
        footprint_countries: usize,
        total_ases: usize,
        total_countries: usize,
    ) -> Self {
        let nq = obs.querier_count();
        if nq == 0 {
            return DynamicFeatures::default();
        }

        // Temporal. Both subtractions saturate: the streaming sensor
        // assigns a record to the window that was open when it
        // *arrived*, so a late-but-admitted query can carry a
        // timestamp just before `window_start` — that must clamp to
        // period 0, not underflow.
        let queries_per_querier = obs.query_count() as f64 / nq as f64;
        let total_periods = ((window_end.secs().saturating_sub(window_start.secs()))
            .div_ceil(PERSISTENCE_PERIOD))
        .max(1);
        let active_periods: BTreeSet<u64> = obs
            .queries
            .iter()
            .map(|(t, _)| t.secs().saturating_sub(window_start.secs()) / PERSISTENCE_PERIOD)
            .collect();
        let persistence = active_periods.len() as f64 / total_periods as f64;

        // Spatial.
        let queriers: Vec<std::net::Ipv4Addr> = obs.queriers.iter().copied().collect();
        let slash24s: Vec<u32> = queriers.iter().map(|q| u32::from(*q) >> 8).collect();
        let slash8s: Vec<u32> = queriers.iter().map(|q| u32::from(*q) >> 24).collect();
        let local_entropy = normalized_entropy(&slash24s, nq as f64);
        let global_entropy = normalized_entropy(&slash8s, 256.0);

        let ratio = |num: usize, den: usize| if den == 0 { 0.0 } else { num as f64 / den as f64 };

        DynamicFeatures {
            queries_per_querier,
            persistence,
            local_entropy,
            global_entropy,
            as_ratio: ratio(footprint_ases, total_ases),
            country_ratio: ratio(footprint_countries, total_countries),
            countries_per_querier: footprint_countries as f64 / nq as f64,
            ases_per_querier: footprint_ases as f64 / nq as f64,
        }
    }
}

/// Queriers per parallel metadata-lookup task; below one chunk the
/// lookup runs sequentially with no task overhead.
const LOOKUP_CHUNK: usize = 4096;

/// The distinct non-`None` values of `f` over `queriers`, computed in
/// [`LOOKUP_CHUNK`]-sized parallel tasks and merged as a set union.
pub(crate) fn unique_by<V: Ord + Send>(
    queriers: &[std::net::Ipv4Addr],
    f: impl Fn(std::net::Ipv4Addr) -> Option<V> + Sync,
) -> BTreeSet<V> {
    let chunks = bs_par::par_chunks(queriers, LOOKUP_CHUNK, |_, c| {
        c.iter().filter_map(|q| f(*q)).collect::<BTreeSet<V>>()
    });
    let mut all = BTreeSet::new();
    for s in chunks {
        all.extend(s);
    }
    all
}

/// Shannon entropy of the value histogram, normalized by `ln(alphabet)`
/// so results land in `[0, 1]`. `alphabet` is the size of the
/// meaningful value space (number of queriers for /24s, 256 for /8s).
///
/// Fast path: instead of a `BTreeMap` histogram (one allocation and a
/// tree probe per value), sort a scratch copy ascending and count runs
/// in one linear sweep — branch-light, cache-linear, and the run
/// lengths emerge in **ascending value order**, which is exactly the
/// `BTreeMap` iteration order, so the `-p·ln p` accumulation visits
/// identical terms in the identical order and the sum is bit-identical
/// to [`normalized_entropy_reference`].
pub fn normalized_entropy(values: &[u32], alphabet: f64) -> f64 {
    if values.len() <= 1 || alphabet <= 1.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = values.len() as f64;
    // -0.0 is `Sum`'s float identity: a pure-run histogram contributes
    // only -1·ln 1 = -0.0 terms, and the reference's `.sum()` keeps
    // that sign where a +0.0 seed would flush it.
    let mut h = -0.0f64;
    let mut run = 1usize;
    for k in 1..sorted.len() {
        if sorted[k] == sorted[k - 1] {
            run += 1;
        } else {
            let p = run as f64 / n;
            h += -p * p.ln();
            run = 1;
        }
    }
    let p = run as f64 / n;
    h += -p * p.ln();
    (h / alphabet.ln()).clamp(0.0, 1.0)
}

/// The retained `BTreeMap`-histogram reference for
/// [`normalized_entropy`] — the executable specification the sorted-run
/// fast path is property-tested bit-identical to
/// (`tests/simd_equivalence.rs`).
pub fn normalized_entropy_reference(values: &[u32], alphabet: f64) -> f64 {
    if values.len() <= 1 || alphabet <= 1.0 {
        return 0.0;
    }
    use std::collections::BTreeMap;
    let mut hist: BTreeMap<u32, usize> = BTreeMap::new();
    for v in values {
        *hist.entry(*v).or_default() += 1;
    }
    let n = values.len() as f64;
    let h: f64 = hist
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();
    (h / alphabet.ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_netsim::types::{AsId, CountryCode, NameOutcome};
    use std::net::Ipv4Addr;

    /// Toy metadata: AS = second octet, country = first octet parity.
    struct ToyInfo;
    impl QuerierInfo for ToyInfo {
        fn querier_name(&self, _addr: Ipv4Addr) -> NameOutcome {
            NameOutcome::NxDomain
        }
        fn querier_as(&self, addr: Ipv4Addr) -> Option<AsId> {
            Some(AsId(addr.octets()[1] as u32))
        }
        fn querier_country(&self, addr: Ipv4Addr) -> Option<CountryCode> {
            Some(if addr.octets()[0].is_multiple_of(2) {
                CountryCode::new("us").unwrap()
            } else {
                CountryCode::new("jp").unwrap()
            })
        }
    }

    fn obs(queries: &[(u64, &str)]) -> OriginatorObservation {
        let mut o = OriginatorObservation {
            originator: "203.0.113.9".parse().unwrap(),
            ..Default::default()
        };
        for (t, q) in queries {
            let qa: Ipv4Addr = q.parse().unwrap();
            o.queries.push((SimTime(*t), qa));
            o.queriers.insert(qa);
        }
        o
    }

    #[test]
    fn queries_per_querier_counts_repeats() {
        let o = obs(&[(0, "10.0.0.1"), (100, "10.0.0.1"), (200, "10.0.0.1"), (0, "10.0.0.2")]);
        let f = DynamicFeatures::compute(&o, &ToyInfo, SimTime(0), SimTime(3600), 10, 5);
        assert!((f.queries_per_querier - 2.0).abs() < 1e-12);
    }

    #[test]
    fn persistence_counts_ten_minute_periods() {
        // Window of 1 hour = 6 periods; queries in periods 0, 0, 3.
        let o = obs(&[(10, "10.0.0.1"), (50, "10.0.0.2"), (1900, "10.0.0.3")]);
        let f = DynamicFeatures::compute(&o, &ToyInfo, SimTime(0), SimTime(3600), 10, 5);
        assert!((f.persistence - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn local_entropy_zero_when_one_block_full_when_spread() {
        // All queriers in one /24.
        let same = obs(&[(0, "10.0.0.1"), (40, "10.0.0.2"), (80, "10.0.0.3")]);
        let f = DynamicFeatures::compute(&same, &ToyInfo, SimTime(0), SimTime(3600), 10, 5);
        assert_eq!(f.local_entropy, 0.0);
        // Each querier in its own /24: entropy ln(3)/ln(3) = 1.
        let spread = obs(&[(0, "10.0.0.1"), (40, "10.1.0.1"), (80, "10.2.0.1")]);
        let f = DynamicFeatures::compute(&spread, &ToyInfo, SimTime(0), SimTime(3600), 10, 5);
        assert!((f.local_entropy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_entropy_uses_slash8_alphabet() {
        // Two /8s, evenly: H = ln 2; normalized by ln 256.
        let o = obs(&[(0, "10.0.0.1"), (40, "11.0.0.1")]);
        let f = DynamicFeatures::compute(&o, &ToyInfo, SimTime(0), SimTime(3600), 10, 5);
        let expect = (2.0f64).ln() / (256.0f64).ln();
        assert!((f.global_entropy - expect).abs() < 1e-12);
    }

    #[test]
    fn geographic_ratios() {
        // Queriers: /8s 10 (even → us) and 11 (odd → jp); ASes 0 and 1.
        let o = obs(&[(0, "10.0.0.1"), (40, "10.1.0.1"), (80, "11.0.0.1")]);
        let f = DynamicFeatures::compute(&o, &ToyInfo, SimTime(0), SimTime(3600), 4, 2);
        assert!((f.as_ratio - 2.0 / 4.0).abs() < 1e-12);
        assert!((f.country_ratio - 1.0).abs() < 1e-12);
        assert!((f.countries_per_querier - 2.0 / 3.0).abs() < 1e-12);
        assert!((f.ases_per_querier - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pre_window_timestamp_clamps_instead_of_underflowing() {
        // A late-but-admitted query can carry a timestamp before the
        // open window's start; in debug builds the old code panicked
        // on `t - window_start` underflow. It must clamp to period 0.
        let o = obs(&[(50, "10.0.0.1"), (700, "10.0.0.2")]);
        let f = DynamicFeatures::compute(&o, &ToyInfo, SimTime(100), SimTime(3700), 10, 5);
        // Periods: clamp(50-100)=0 and (700-100)/600=1 → 2 of 6.
        assert!((f.persistence - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_observation_is_all_zero() {
        let o = OriginatorObservation {
            originator: "203.0.113.9".parse().unwrap(),
            ..Default::default()
        };
        let f = DynamicFeatures::compute(&o, &ToyInfo, SimTime(0), SimTime(3600), 4, 2);
        assert_eq!(f, DynamicFeatures::default());
    }

    #[test]
    fn entropy_fast_path_is_bit_identical_to_reference() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![5],
            vec![1, 1, 1],
            vec![3, 1, 2, 1, 3, 3, 7],
            (0..100).map(|i| i * i % 17).collect(),
            (0..1000).map(|i| i % 3).collect(),
        ];
        for values in &cases {
            for alphabet in [0.5, 1.0, 2.0, 17.0, 256.0, 1e6] {
                assert_eq!(
                    normalized_entropy(values, alphabet).to_bits(),
                    normalized_entropy_reference(values, alphabet).to_bits(),
                    "values {values:?} alphabet {alphabet}"
                );
            }
        }
    }

    #[test]
    fn vector_order_matches_names() {
        let f = DynamicFeatures {
            queries_per_querier: 1.0,
            persistence: 2.0,
            local_entropy: 3.0,
            global_entropy: 4.0,
            as_ratio: 5.0,
            country_ratio: 6.0,
            countries_per_querier: 7.0,
            ases_per_querier: 8.0,
        };
        assert_eq!(f.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(DynamicFeatures::names().len(), 8);
    }
}
