//! End-to-end feature extraction: logs in, feature vectors out.

use crate::dynamic::DynamicFeatures;
use crate::ingest::{select_analyzable, Observations, OriginatorObservation};
use crate::qmeta::{QuerierMetaCache, QuerierMetaTable, NO_ID};
use crate::static_features::{classify_querier_name, StaticFeature};
use crate::QuerierInfo;
use bs_dns::SimTime;
use bs_fastmap::DenseIdSet;
use bs_netsim::log::QueryLog;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Extraction configuration (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Analyzability threshold on unique queriers.
    pub min_queriers: usize,
    /// Keep only the N originators with the most queriers.
    pub top_n: Option<usize>,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { min_queriers: crate::ingest::MIN_QUERIERS, top_n: Some(10_000) }
    }
}

/// A complete per-originator feature vector: 14 static fractions plus
/// 8 dynamic features, in a fixed order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Fraction of queriers in each static category (sums to 1).
    pub static_fractions: [f64; 14],
    /// The dynamic features.
    pub dynamic: DynamicFeatures,
}

impl FeatureVector {
    /// Feature names, aligned with [`FeatureVector::to_vec`].
    pub fn names() -> Vec<String> {
        StaticFeature::ALL
            .iter()
            .map(|f| format!("static:{}", f.name()))
            .chain(DynamicFeatures::names().iter().map(|n| format!("dyn:{n}")))
            .collect()
    }

    /// Flatten to a 22-dimensional vector for the ML crate.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(22);
        v.extend_from_slice(&self.static_fractions);
        v.extend(self.dynamic.to_vec());
        v
    }

    /// The fraction for one static category.
    pub fn static_fraction(&self, f: StaticFeature) -> f64 {
        self.static_fractions[f.index()]
    }
}

/// An originator with its observed footprint and features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OriginatorFeatures {
    /// The originator address.
    pub originator: Ipv4Addr,
    /// Unique queriers observed (footprint).
    pub querier_count: usize,
    /// Deduplicated query count.
    pub query_count: usize,
    /// The feature vector.
    pub features: FeatureVector,
}

/// Extract features for every analyzable originator in `[start, end)`
/// of `log`, ranked by footprint.
pub fn extract_features(
    log: &QueryLog,
    info: &(impl QuerierInfo + Sync),
    start: SimTime,
    end: SimTime,
    config: &FeatureConfig,
) -> Vec<OriginatorFeatures> {
    let obs = Observations::ingest(log, start, end);
    extract_from_observations(&obs, info, config)
}

/// Extraction step reusable when the caller already ingested the log.
///
/// This is the **fast path**: a [`QuerierMetaTable`] resolution pass
/// visits each unique querier exactly once, then every originator
/// reduces to table lookups plus dense-id bitmap counting —
/// O(unique queriers) metadata work instead of the reference's
/// O(Σ footprints). Bit-identical to
/// [`extract_from_observations_reference`] (proptest-pinned in
/// `tests/qmeta_equivalence.rs` at both thread counts).
///
/// Originators are independent, so their feature vectors compute in
/// parallel on the [`bs_par`] pool; the output keeps the footprint
/// ranking of [`select_analyzable`] because results collect in task
/// order.
pub fn extract_from_observations(
    obs: &Observations,
    info: &(impl QuerierInfo + Sync),
    config: &FeatureConfig,
) -> Vec<OriginatorFeatures> {
    extract_with_meta_cache(obs, info, config, None)
}

/// [`extract_from_observations`] with an optional cross-window
/// [`QuerierMetaCache`]: the streaming path passes the same cache
/// every window, so queriers that persist between windows skip the
/// metadata provider entirely. `None` resolves everything cold.
/// Output is cache-invariant (the cache memoizes resolutions, and
/// interning happens per window either way).
pub fn extract_with_meta_cache(
    obs: &Observations,
    info: &(impl QuerierInfo + Sync),
    config: &FeatureConfig,
    cache: Option<&mut QuerierMetaCache>,
) -> Vec<OriginatorFeatures> {
    let _span = bs_telemetry::span("sensor.extract");
    let table = {
        let _cost = bs_prof::stage("sensor.extract.lookup", bs_trace::ledger::current_window());
        QuerierMetaTable::build(obs, info, cache)
    };
    let selected = {
        let _cost = bs_prof::stage("sensor.select", bs_trace::ledger::current_window());
        let selected = select_analyzable(obs, config.min_queriers, config.top_n);
        if bs_trace::is_active() {
            // Conservation over the analyzability cut: every observed
            // originator is selected, below threshold, or ranked out.
            let total = obs.per_originator.len() as u64;
            let passing = obs
                .per_originator
                .values()
                .filter(|o| o.querier_count() >= config.min_queriers)
                .count() as u64;
            let kept = selected.len() as u64;
            bs_trace::ledger::record(
                "sensor.select",
                total,
                &[
                    ("selected", kept),
                    ("below_threshold", total - passing),
                    ("truncated", passing - kept),
                ],
            );
        }
        selected
    };
    let out: Vec<OriginatorFeatures> = bs_par::par_chunks(&selected, EXTRACT_CHUNK, |_, chunk| {
        // One profiler ledger slot per chunk of originators, not one
        // per originator per window.
        let _cost = bs_prof::stage("sensor.extract.features", bs_trace::ledger::current_window());
        chunk.iter().map(|&o| features_from_table(o, &table, obs)).collect::<Vec<_>>()
    })
    .concat();
    bs_telemetry::counter_add("sensor.features_extracted", out.len() as u64);
    out
}

/// Originators per parallel feature task on the fast path.
const EXTRACT_CHUNK: usize = 64;

/// One originator's features from the interned metadata table: count
/// static categories and distinct AS/country ids over the footprint
/// (bitmap sets over dense ids), then share the float arithmetic with
/// the reference via [`DynamicFeatures::from_counts`].
fn features_from_table(
    o: &OriginatorObservation,
    table: &QuerierMetaTable,
    obs: &Observations,
) -> OriginatorFeatures {
    let mut static_counts = [0usize; 14];
    let mut ases = DenseIdSet::with_capacity(table.distinct_ases());
    let mut countries = DenseIdSet::with_capacity(table.distinct_countries());
    for q in &o.queriers {
        let m = table.get(*q).expect("footprints are subsets of the window's querier set");
        static_counts[m.category as usize] += 1;
        if m.as_id != NO_ID {
            ases.insert(m.as_id);
        }
        if m.country_id != NO_ID {
            countries.insert(m.country_id);
        }
    }
    let nq = o.querier_count().max(1) as f64;
    let mut static_fractions = [0.0; 14];
    for (frac, count) in static_fractions.iter_mut().zip(static_counts) {
        *frac = count as f64 / nq;
    }
    let dynamic = DynamicFeatures::from_counts(
        o,
        obs.window_start,
        obs.window_end,
        ases.len(),
        countries.len(),
        table.distinct_ases(),
        table.distinct_countries(),
    );
    OriginatorFeatures {
        originator: o.originator,
        querier_count: o.querier_count(),
        query_count: o.query_count(),
        features: FeatureVector { static_fractions, dynamic },
    }
}

/// The retained per-pair reference: re-resolves querier metadata for
/// every (originator, querier) pair, exactly as the seed did — the
/// executable specification [`extract_from_observations`] is
/// property-tested bit-identical to. Telemetry-free, like the other
/// retained references.
pub fn extract_from_observations_reference(
    obs: &Observations,
    info: &(impl QuerierInfo + Sync),
    config: &FeatureConfig,
) -> Vec<OriginatorFeatures> {
    let total_ases = obs.total_ases(info);
    let total_countries = obs.total_countries(info);
    let selected = select_analyzable(obs, config.min_queriers, config.top_n);
    bs_par::par_map(&selected, |_, &o| {
        let mut static_counts = [0usize; 14];
        for q in &o.queriers {
            let f = classify_querier_name(&info.querier_name(*q));
            static_counts[f.index()] += 1;
        }
        let nq = o.querier_count().max(1) as f64;
        let mut static_fractions = [0.0; 14];
        for (frac, count) in static_fractions.iter_mut().zip(static_counts) {
            *frac = count as f64 / nq;
        }
        let dynamic = DynamicFeatures::compute(
            o,
            info,
            obs.window_start,
            obs.window_end,
            total_ases,
            total_countries,
        );
        OriginatorFeatures {
            originator: o.originator,
            querier_count: o.querier_count(),
            query_count: o.query_count(),
            features: FeatureVector { static_fractions, dynamic },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::Rcode;
    use bs_netsim::log::QueryLogRecord;
    use bs_netsim::types::{AsId, CountryCode, NameOutcome};

    struct ToyInfo;
    impl QuerierInfo for ToyInfo {
        fn querier_name(&self, addr: Ipv4Addr) -> NameOutcome {
            // Even last octet: mail server; odd: no reverse name.
            if addr.octets()[3].is_multiple_of(2) {
                NameOutcome::Name(bs_dns::DomainName::parse("mail.example.com").unwrap())
            } else {
                NameOutcome::NxDomain
            }
        }
        fn querier_as(&self, addr: Ipv4Addr) -> Option<AsId> {
            Some(AsId(addr.octets()[1] as u32))
        }
        fn querier_country(&self, _addr: Ipv4Addr) -> Option<CountryCode> {
            Some(CountryCode::new("us").unwrap())
        }
    }

    fn make_log(n_queriers: u8) -> QueryLog {
        let mut log = QueryLog::new();
        for i in 0..n_queriers {
            log.push(QueryLogRecord {
                time: SimTime(i as u64 * 60),
                querier: Ipv4Addr::new(10, i % 4, 0, i),
                originator: "203.0.113.9".parse().unwrap(),
                rcode: Rcode::NoError,
            });
        }
        log
    }

    #[test]
    fn fast_path_matches_reference_bit_for_bit() {
        let log = make_log(40);
        let obs = Observations::ingest(&log, SimTime(0), SimTime(7200));
        let config = FeatureConfig { min_queriers: 5, top_n: None };
        let fast = extract_from_observations(&obs, &ToyInfo, &config);
        let reference = extract_from_observations_reference(&obs, &ToyInfo, &config);
        assert_eq!(fast, reference);
        let mut cache = crate::qmeta::QuerierMetaCache::default();
        let cold = extract_with_meta_cache(&obs, &ToyInfo, &config, Some(&mut cache));
        let warm = extract_with_meta_cache(&obs, &ToyInfo, &config, Some(&mut cache));
        assert_eq!(cold, reference);
        assert_eq!(warm, reference);
        assert!(cache.hits() > 0, "second window over the same queriers must hit the cache");
    }

    #[test]
    fn static_fractions_sum_to_one() {
        let log = make_log(30);
        let config = FeatureConfig { min_queriers: 20, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &config);
        assert_eq!(out.len(), 1);
        let f = &out[0].features;
        let sum: f64 = f.static_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Half mail, half nxdomain.
        assert!((f.static_fraction(StaticFeature::Mail) - 0.5).abs() < 1e-12);
        assert!((f.static_fraction(StaticFeature::NxDomain) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_filters_small_originators() {
        let log = make_log(10);
        let config = FeatureConfig { min_queriers: 20, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &config);
        assert!(out.is_empty());
        let lenient = FeatureConfig { min_queriers: 5, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &lenient);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].querier_count, 10);
    }

    #[test]
    fn vector_has_22_dimensions_and_matching_names() {
        let log = make_log(25);
        let config = FeatureConfig { min_queriers: 20, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &config);
        let v = out[0].features.to_vec();
        assert_eq!(v.len(), 22);
        assert_eq!(FeatureVector::names().len(), 22);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
