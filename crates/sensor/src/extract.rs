//! End-to-end feature extraction: logs in, feature vectors out.

use crate::dynamic::DynamicFeatures;
use crate::ingest::{select_analyzable, Observations};
use crate::static_features::{classify_querier_name, StaticFeature};
use crate::QuerierInfo;
use bs_dns::SimTime;
use bs_netsim::log::QueryLog;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Extraction configuration (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Analyzability threshold on unique queriers.
    pub min_queriers: usize,
    /// Keep only the N originators with the most queriers.
    pub top_n: Option<usize>,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { min_queriers: crate::ingest::MIN_QUERIERS, top_n: Some(10_000) }
    }
}

/// A complete per-originator feature vector: 14 static fractions plus
/// 8 dynamic features, in a fixed order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Fraction of queriers in each static category (sums to 1).
    pub static_fractions: [f64; 14],
    /// The dynamic features.
    pub dynamic: DynamicFeatures,
}

impl FeatureVector {
    /// Feature names, aligned with [`FeatureVector::to_vec`].
    pub fn names() -> Vec<String> {
        StaticFeature::ALL
            .iter()
            .map(|f| format!("static:{}", f.name()))
            .chain(DynamicFeatures::names().iter().map(|n| format!("dyn:{n}")))
            .collect()
    }

    /// Flatten to a 22-dimensional vector for the ML crate.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(22);
        v.extend_from_slice(&self.static_fractions);
        v.extend(self.dynamic.to_vec());
        v
    }

    /// The fraction for one static category.
    pub fn static_fraction(&self, f: StaticFeature) -> f64 {
        self.static_fractions[f.index()]
    }
}

/// An originator with its observed footprint and features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OriginatorFeatures {
    /// The originator address.
    pub originator: Ipv4Addr,
    /// Unique queriers observed (footprint).
    pub querier_count: usize,
    /// Deduplicated query count.
    pub query_count: usize,
    /// The feature vector.
    pub features: FeatureVector,
}

/// Extract features for every analyzable originator in `[start, end)`
/// of `log`, ranked by footprint.
pub fn extract_features(
    log: &QueryLog,
    info: &(impl QuerierInfo + Sync),
    start: SimTime,
    end: SimTime,
    config: &FeatureConfig,
) -> Vec<OriginatorFeatures> {
    let obs = Observations::ingest(log, start, end);
    extract_from_observations(&obs, info, config)
}

/// Extraction step reusable when the caller already ingested the log.
///
/// Originators are independent, so their feature vectors compute in
/// parallel on the [`bs_par`] pool; the output keeps the footprint
/// ranking of [`select_analyzable`] because results collect in task
/// order.
pub fn extract_from_observations(
    obs: &Observations,
    info: &(impl QuerierInfo + Sync),
    config: &FeatureConfig,
) -> Vec<OriginatorFeatures> {
    let _span = bs_telemetry::span("sensor.extract");
    let _cost = bs_prof::stage("sensor.select", bs_trace::ledger::current_window());
    let total_ases = obs.total_ases(info);
    let total_countries = obs.total_countries(info);
    let selected = select_analyzable(obs, config.min_queriers, config.top_n);
    if bs_trace::is_active() {
        // Conservation over the analyzability cut: every observed
        // originator is selected, below threshold, or ranked out.
        let total = obs.per_originator.len() as u64;
        let passing = obs
            .per_originator
            .values()
            .filter(|o| o.querier_count() >= config.min_queriers)
            .count() as u64;
        let kept = selected.len() as u64;
        bs_trace::ledger::record(
            "sensor.select",
            total,
            &[
                ("selected", kept),
                ("below_threshold", total - passing),
                ("truncated", passing - kept),
            ],
        );
    }
    let out: Vec<OriginatorFeatures> = bs_par::par_map(&selected, |_, &o| {
        let static_counts = {
            let _cost = bs_prof::stage("sensor.static.lanes", bs_trace::ledger::current_window());
            let mut counts = [0usize; 14];
            for q in &o.queriers {
                let f = classify_querier_name(&info.querier_name(*q));
                counts[f.index()] += 1;
            }
            counts
        };
        let nq = o.querier_count().max(1) as f64;
        let mut static_fractions = [0.0; 14];
        for (frac, count) in static_fractions.iter_mut().zip(static_counts) {
            *frac = count as f64 / nq;
        }
        let dynamic = DynamicFeatures::compute(
            o,
            info,
            obs.window_start,
            obs.window_end,
            total_ases,
            total_countries,
        );
        OriginatorFeatures {
            originator: o.originator,
            querier_count: o.querier_count(),
            query_count: o.query_count(),
            features: FeatureVector { static_fractions, dynamic },
        }
    });
    bs_telemetry::counter_add("sensor.features_extracted", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::Rcode;
    use bs_netsim::log::QueryLogRecord;
    use bs_netsim::types::{AsId, CountryCode, NameOutcome};

    struct ToyInfo;
    impl QuerierInfo for ToyInfo {
        fn querier_name(&self, addr: Ipv4Addr) -> NameOutcome {
            // Even last octet: mail server; odd: no reverse name.
            if addr.octets()[3].is_multiple_of(2) {
                NameOutcome::Name(bs_dns::DomainName::parse("mail.example.com").unwrap())
            } else {
                NameOutcome::NxDomain
            }
        }
        fn querier_as(&self, addr: Ipv4Addr) -> Option<AsId> {
            Some(AsId(addr.octets()[1] as u32))
        }
        fn querier_country(&self, _addr: Ipv4Addr) -> Option<CountryCode> {
            Some(CountryCode::new("us").unwrap())
        }
    }

    fn make_log(n_queriers: u8) -> QueryLog {
        let mut log = QueryLog::new();
        for i in 0..n_queriers {
            log.push(QueryLogRecord {
                time: SimTime(i as u64 * 60),
                querier: Ipv4Addr::new(10, i % 4, 0, i),
                originator: "203.0.113.9".parse().unwrap(),
                rcode: Rcode::NoError,
            });
        }
        log
    }

    #[test]
    fn static_fractions_sum_to_one() {
        let log = make_log(30);
        let config = FeatureConfig { min_queriers: 20, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &config);
        assert_eq!(out.len(), 1);
        let f = &out[0].features;
        let sum: f64 = f.static_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Half mail, half nxdomain.
        assert!((f.static_fraction(StaticFeature::Mail) - 0.5).abs() < 1e-12);
        assert!((f.static_fraction(StaticFeature::NxDomain) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_filters_small_originators() {
        let log = make_log(10);
        let config = FeatureConfig { min_queriers: 20, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &config);
        assert!(out.is_empty());
        let lenient = FeatureConfig { min_queriers: 5, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &lenient);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].querier_count, 10);
    }

    #[test]
    fn vector_has_22_dimensions_and_matching_names() {
        let log = make_log(25);
        let config = FeatureConfig { min_queriers: 20, top_n: None };
        let out = extract_features(&log, &ToyInfo, SimTime(0), SimTime(7200), &config);
        let v = out[0].features.to_vec();
        assert_eq!(v.len(), 22);
        assert_eq!(FeatureVector::names().len(), 22);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
