//! Sharded streaming ingestion: linear multi-core scaling for the
//! sensor hot path.
//!
//! [`crate::stream::StreamingSensor`] is one instance behind one
//! window, so everything the fastmap engine won single-core is capped
//! at one core on live traffic. [`ShardedStreamingSensor`] hash-shards
//! the *originator* space across N per-core `StreamingSensor` lanes —
//! each with its own arena, probation table, and eviction heap — and
//! merges the lane flushes into one BTree-ordered
//! [`Observations`] at window close, so everything downstream of the
//! sensor (extraction, classification, the stream-equals-batch
//! guarantee) is byte-for-byte untouched.
//!
//! # Shard topology: fixed slices, variable lanes
//!
//! The originator space is partitioned into [`SHARD_SLICES`] fixed
//! hash **slices** (the top bits of the `bs-fastmap` [`FastKey`]
//! multiplicative hash), and every admission-control resource —
//! tracked-table capacity, probation capacity — is divided evenly
//! across the slices ([`slice_config`]). A run with N lanes assigns
//! slice `j` to lane `j % N`; each lane drives one `StreamingSensor`
//! per owned slice.
//!
//! The point of the two-level scheme is determinism: admission,
//! eviction, and probation-reset decisions are all *slice-local*, and
//! the per-slice record subsequence is the arrival order regardless of
//! how slices are grouped into lanes. Output is therefore **invariant
//! across shard counts and thread counts** — sharded output is
//! bit-identical to the sequential single-lane reference
//! ([`ReferenceShardedStreamingSensor`]) by construction, which the
//! shard-equivalence proptests pin down. (A global sensor couples all
//! originators through one tracked-count/eviction-minimum/probation
//! table, so its under-pressure decisions are inherently serial; the
//! slice partition is what makes pressure semantics parallelizable at
//! all. Above the memory caps the slice partition is unobservable and
//! sharded output equals the plain global sensor exactly — also
//! property-tested.)
//!
//! # Ingest path
//!
//! The reader thread owns the window clock (first record anchors the
//! window grid; late records are counted per-lane and dropped, exactly
//! like the single sensor) and routes records into per-lane bounded
//! queues. When any queue reaches [`SHARD_QUEUE_CAP`] the driver runs
//! a drain barrier: a `bs-par` parallel region in which every lane
//! ingests its queued records in arrival order. At a window boundary
//! the driver drains, flushes every lane in parallel, and merges the
//! per-lane partial windows (disjoint by construction) into one
//! summary.
//!
//! # Accounting
//!
//! Each lane's slices file conservation-ledger rows under their own
//! stage (`sensor.stream.shard.<i>`), so `records_in == Σ buckets`
//! verifies per shard *and* summed across shards; a wholesale
//! probation clear on one shard rebooks held→dropped only in that
//! shard's stage. Per-shard counters
//! (`sensor.shard.<i>.{ingested,evictions,probation_resets}`) ride
//! next to the unchanged `sensor.stream.*` rollups, and each window
//! flush publishes merged gauges plus shard-skew gauges
//! (`sensor.shard.load.{max,mean}`, `sensor.shard.skew_milli`) and
//! zeroes `par.shard_backlog`, which drain barriers set to the queued
//! total so the watchdog can rule on runaway backlog.

use crate::ingest::{Observations, OriginatorObservation};
use crate::stream::{ReferenceStreamingSensor, StreamConfig, StreamingSensor, WindowSummary};
use bs_dns::SimTime;
use bs_fastmap::FastKey;
use bs_netsim::log::QueryLogRecord;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::atomic::AtomicU8;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Fixed number of hash slices the originator space is partitioned
/// into, independent of how many lanes a run uses. 64 = the widest
/// lane count worth having before merge overhead dominates, and small
/// enough that per-slice capacity splits stay meaningful.
pub const SHARD_SLICES: usize = 64;

/// Records a lane queue may hold before the driver runs a drain
/// barrier. Batches per-record work into cache-friendly runs and
/// bounds driver-side memory at `lanes × SHARD_QUEUE_CAP` records.
pub const SHARD_QUEUE_CAP: usize = 4096;

/// The slice an originator address belongs to: the top 6 bits of the
/// `bs-fastmap` multiplicative hash (entropy lives in the high bits).
#[inline]
pub fn slice_of(originator: Ipv4Addr) -> usize {
    (u32::from(originator).mix() >> 58) as usize
}

/// The lane that owns `originator` when running `lanes` lanes.
#[inline]
pub fn shard_of(originator: Ipv4Addr, lanes: usize) -> usize {
    slice_of(originator) % lanes.clamp(1, SHARD_SLICES)
}

/// The per-slice configuration: tracked-table and probation capacity
/// divided evenly (rounding up) across the [`SHARD_SLICES`] slices.
/// Totals may exceed the configured caps by at most `SHARD_SLICES - 1`
/// entries — the price of slice-local (and therefore parallelizable)
/// admission control.
pub fn slice_config(config: &StreamConfig) -> StreamConfig {
    StreamConfig {
        max_originators: config.max_originators.div_ceil(SHARD_SLICES),
        probation_cap: config.resolved_probation_cap().div_ceil(SHARD_SLICES),
        ..*config
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One lane: the slices it owns, its ingest queue, and its share of
/// the driver-side tallies.
struct Lane {
    /// Lane index — the `<i>` in `sensor.stream.shard.<i>`.
    id: usize,
    /// Total lane count; slice `j` lives at local index `j / stride`.
    stride: usize,
    slices: Vec<StreamingSensor>,
    queue: Vec<QueryLogRecord>,
    /// In-window records routed here since the last flush.
    routed: u64,
    /// Late records that hashed here since the last flush; they never
    /// reach a slice, so the driver books them at flush.
    ooo: u64,
}

impl Lane {
    fn new(id: usize, stride: usize, slice_cfg: StreamConfig) -> Self {
        let slices = (id..SHARD_SLICES)
            .step_by(stride)
            .map(|_| {
                let mut s = StreamingSensor::new(slice_cfg);
                s.set_shard_index(id as u32);
                s
            })
            .collect();
        Lane { id, stride, slices, queue: Vec::with_capacity(SHARD_QUEUE_CAP), routed: 0, ooo: 0 }
    }

    /// Ingest every queued record, in arrival order. The driver only
    /// queues in-window records, so these pushes can never rotate.
    fn drain_queue(&mut self) {
        let mut q = std::mem::take(&mut self.queue);
        for r in q.drain(..) {
            debug_assert_eq!(slice_of(r.originator) % self.stride, self.id);
            let emitted = self.slices[slice_of(r.originator) / self.stride].push(r);
            debug_assert!(emitted.is_none(), "queued records are in-window by construction");
        }
        self.queue = q; // keep the allocation
    }

    /// Flush every owned slice's window and merge into one partial.
    fn flush_to(&mut self, next_start: SimTime) -> LanePartial {
        let mut part = LanePartial::default();
        for s in &mut self.slices {
            if let Some(w) = s.flush_to(next_start) {
                part.evicted += w.evicted;
                let mut obs = w.observations;
                part.per_originator.append(&mut obs.per_originator);
                part.all_queriers.extend(obs.all_queriers);
            }
        }
        part
    }
}

/// One lane's contribution to a window: per-originator maps are
/// disjoint across lanes (each originator hashes to exactly one
/// slice), querier sets may overlap (a resolver can query for
/// originators on different shards) and merge by union.
#[derive(Default)]
struct LanePartial {
    per_originator: BTreeMap<Ipv4Addr, OriginatorObservation>,
    all_queriers: BTreeSet<Ipv4Addr>,
    evicted: usize,
}

/// The sharded streaming sensor (fast path): N parallel
/// [`StreamingSensor`] lanes behind one window clock. See the module
/// docs for topology and guarantees; semantics are defined by
/// [`ReferenceShardedStreamingSensor`] and pinned by proptests.
pub struct ShardedStreamingSensor {
    config: StreamConfig,
    window_start: SimTime,
    started: bool,
    lanes: Vec<Lane>,
}

impl ShardedStreamingSensor {
    /// Create a sharded sensor with `lanes` lanes (clamped to
    /// `1..=SHARD_SLICES`); the first record anchors the first window.
    pub fn new(config: StreamConfig, lanes: usize) -> Self {
        assert!(config.window.secs() > 0);
        assert!(config.max_originators > 0);
        let lanes = lanes.clamp(1, SHARD_SLICES);
        let slice_cfg = slice_config(&config);
        ShardedStreamingSensor {
            config,
            window_start: SimTime::ZERO,
            started: false,
            lanes: (0..lanes).map(|id| Lane::new(id, lanes, slice_cfg)).collect(),
        }
    }

    /// Number of lanes actually running.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Attach a shared pressure cell (the bs-live watchdog's health
    /// state). Broadcast to every slice on every lane, so graceful
    /// degradation tightens probation decay across the whole shard
    /// set, not just one lucky lane.
    pub fn set_pressure_hook(&mut self, hook: Arc<AtomicU8>) {
        for lane in &mut self.lanes {
            for s in &mut lane.slices {
                s.set_pressure_hook(Arc::clone(&hook));
            }
        }
    }

    /// Originators currently tracked across all slices. Records still
    /// sitting in lane queues are not reflected until the next drain.
    pub fn tracked_originators(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.slices.iter().map(|s| s.tracked_originators()).sum::<usize>())
            .sum()
    }

    /// Records currently queued and not yet ingested, across lanes.
    pub fn queued_records(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// Probation resets accumulated in the current window, across all
    /// slices — a diagnostic for the pressure-broadcast path.
    #[doc(hidden)]
    pub fn pending_probation_resets(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.slices.iter().map(|s| s.pending_probation_resets()).sum::<u64>())
            .sum()
    }

    /// Feed one record (records must arrive in time order). Returns
    /// the completed merged window when `r` crosses a window boundary;
    /// late records are counted per lane and dropped, exactly like
    /// [`StreamingSensor::push`].
    pub fn push(&mut self, r: QueryLogRecord) -> Option<WindowSummary> {
        if !self.started {
            self.window_start = SimTime(r.time.secs() - r.time.secs() % self.config.window.secs());
            self.started = true;
        }
        let lane_count = self.lanes.len();
        if r.time < self.window_start {
            self.lanes[slice_of(r.originator) % lane_count].ooo += 1;
            return None;
        }
        let mut emitted = None;
        if r.time >= self.window_start + self.config.window {
            emitted = Some(self.rotate_to(r.time));
        }
        let lane = &mut self.lanes[slice_of(r.originator) % lane_count];
        lane.routed += 1;
        lane.queue.push(r);
        if lane.queue.len() >= SHARD_QUEUE_CAP {
            self.drain_all();
        }
        emitted
    }

    /// Flush the current (partial) window at end of stream. `None`
    /// when no records were ever routed or nothing survived to the
    /// tracked tables — the same condition as the single sensor.
    pub fn finish(mut self) -> Option<WindowSummary> {
        if !self.started {
            return None;
        }
        self.drain_all();
        if self.tracked_originators() == 0 {
            return None;
        }
        let end = self.window_start + self.config.window;
        Some(self.flush_window(end))
    }

    /// Drain barrier: every lane ingests its queue, in parallel when a
    /// `bs-par` pool is available (each task locks only its own lane,
    /// so there is no contention — the mutex exists to hand `&mut`
    /// across the scoped-parallel boundary safely).
    fn drain_all(&mut self) {
        let total = self.queued_records();
        if total == 0 {
            return;
        }
        // Published before the drain and zeroed at window flush: the
        // watchdog's view of "records parked between barriers".
        bs_telemetry::gauge_set("par.shard_backlog", total as i64);
        let lanes: Vec<Mutex<&mut Lane>> = self.lanes.iter_mut().map(Mutex::new).collect();
        bs_par::par_map_range(lanes.len(), |i| lock(&lanes[i]).drain_queue());
    }

    fn rotate_to(&mut self, now: SimTime) -> WindowSummary {
        let w = self.config.window.secs();
        let next = SimTime(now.secs() - now.secs() % w);
        let summary = self.flush_window(next);
        self.window_start = next;
        summary
    }

    /// Flush every lane's window (re-anchoring the slices at
    /// `next_start`) and merge the partials into one summary.
    fn flush_window(&mut self, next_start: SimTime) -> WindowSummary {
        self.drain_all();
        let _span = bs_telemetry::span("sensor.shard.window_flush");
        let ws = self.window_start;
        let _cost = bs_prof::stage("sensor.shard.merge", ws.secs());
        let end = ws + self.config.window;
        let parts: Vec<(LanePartial, u64, u64)> = {
            let lanes: Vec<Mutex<&mut Lane>> = self.lanes.iter_mut().map(Mutex::new).collect();
            bs_par::par_map_range(lanes.len(), |i| {
                let mut lane = lock(&lanes[i]);
                let part = lane.flush_to(next_start);
                (part, std::mem::take(&mut lane.routed), std::mem::take(&mut lane.ooo))
            })
        };
        let mut per_originator = BTreeMap::new();
        let mut all_queriers = BTreeSet::new();
        let mut evicted = 0usize;
        let mut ooo_total = 0u64;
        let (mut max_load, mut total_load) = (0u64, 0u64);
        for (i, (mut part, routed, ooo)) in parts.into_iter().enumerate() {
            per_originator.append(&mut part.per_originator);
            all_queriers.extend(part.all_queriers);
            evicted += part.evicted;
            ooo_total += ooo;
            let load = routed + ooo;
            max_load = max_load.max(load);
            total_load += load;
            if ooo > 0 {
                // Late records never reach a slice, so the slices'
                // ledger rows don't cover them; book them into this
                // lane's stage so per-shard conservation still closes.
                if bs_trace::is_active() {
                    let _w = bs_trace::ledger::window_scope(ws.secs());
                    bs_trace::ledger::record(
                        &format!("sensor.stream.shard.{i}"),
                        ooo,
                        &[("out_of_order", ooo)],
                    );
                }
                bs_telemetry::counter_add(&format!("sensor.shard.{i}.ingested"), ooo);
            }
        }
        // Driver-held tallies join the unchanged global rollups (the
        // slices already rolled up everything they ingested).
        bs_telemetry::counter_add("sensor.stream.records", ooo_total);
        bs_telemetry::counter_add("sensor.stream.out_of_order", ooo_total);
        // Merged gauges — the single-sensor gauges, computed over the
        // union (individual slices skip them to avoid last-writer
        // races under the parallel flush), plus the skew view.
        bs_telemetry::gauge_set("sensor.window_evicted", evicted as i64);
        bs_telemetry::gauge_set("sensor.tracked_originators", per_originator.len() as i64);
        let mean_load = total_load / self.lanes.len() as u64;
        bs_telemetry::gauge_set("sensor.shard.load.max", max_load as i64);
        bs_telemetry::gauge_set("sensor.shard.load.mean", mean_load as i64);
        let skew_milli = if total_load > 0 {
            (max_load as i128 * 1000 * self.lanes.len() as i128 / total_load as i128) as i64
        } else {
            0
        };
        bs_telemetry::gauge_set("sensor.shard.skew_milli", skew_milli);
        bs_telemetry::gauge_set("par.shard_backlog", 0);
        let observations =
            Observations { window_start: ws, window_end: end, per_originator, all_queriers };
        WindowSummary { window: (ws, end), observations, evicted }
    }
}

/// The retained sequential reference for [`ShardedStreamingSensor`]:
/// the same fixed-slice partition and window clock driven one record
/// at a time over per-slice [`ReferenceStreamingSensor`]s — no lanes,
/// no queues, no parallelism, no telemetry. Because the fast path's
/// output is lane-count-invariant by construction, this single
/// sequential implementation is the executable specification for
/// *every* shard count; the proptests hold them equal.
pub struct ReferenceShardedStreamingSensor {
    config: StreamConfig,
    window_start: SimTime,
    started: bool,
    slices: Vec<ReferenceStreamingSensor>,
}

impl ReferenceShardedStreamingSensor {
    /// Create a reference sharded sensor; the first record anchors the
    /// first window.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.window.secs() > 0);
        assert!(config.max_originators > 0);
        let slice_cfg = slice_config(&config);
        ReferenceShardedStreamingSensor {
            config,
            window_start: SimTime::ZERO,
            started: false,
            slices: (0..SHARD_SLICES).map(|_| ReferenceStreamingSensor::new(slice_cfg)).collect(),
        }
    }

    /// Feed one record; semantics identical to
    /// [`ShardedStreamingSensor::push`].
    pub fn push(&mut self, r: QueryLogRecord) -> Option<WindowSummary> {
        if !self.started {
            self.window_start = SimTime(r.time.secs() - r.time.secs() % self.config.window.secs());
            self.started = true;
        }
        if r.time < self.window_start {
            return None; // out of order: dropped
        }
        let mut emitted = None;
        if r.time >= self.window_start + self.config.window {
            let w = self.config.window.secs();
            let next = SimTime(r.time.secs() - r.time.secs() % w);
            emitted = Some(self.flush_window(next));
            self.window_start = next;
        }
        let pushed = self.slices[slice_of(r.originator)].push(r);
        debug_assert!(pushed.is_none(), "slice windows rotate only via the driver clock");
        emitted
    }

    /// Flush the current (partial) window at end of stream.
    pub fn finish(mut self) -> Option<WindowSummary> {
        if !self.started {
            return None;
        }
        let end = self.window_start + self.config.window;
        let summary = self.flush_window(end);
        if summary.observations.per_originator.is_empty() {
            return None;
        }
        Some(summary)
    }

    fn flush_window(&mut self, next_start: SimTime) -> WindowSummary {
        let ws = self.window_start;
        let end = ws + self.config.window;
        let mut per_originator = BTreeMap::new();
        let mut all_queriers = BTreeSet::new();
        let mut evicted = 0usize;
        for s in &mut self.slices {
            if let Some(w) = s.flush_to(next_start) {
                evicted += w.evicted;
                let mut obs = w.observations;
                per_originator.append(&mut obs.per_originator);
                all_queriers.extend(obs.all_queriers);
            }
        }
        let observations =
            Observations { window_start: ws, window_end: end, per_originator, all_queriers };
        WindowSummary { window: (ws, end), observations, evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dns::{Rcode, SimDuration};
    use std::sync::atomic::Ordering;

    fn rec(t: u64, q: u32, o: u32) -> QueryLogRecord {
        QueryLogRecord {
            time: SimTime(t),
            querier: Ipv4Addr::from(0x0A00_0000 | q),
            originator: Ipv4Addr::from(0xCB00_0000 | o),
            rcode: Rcode::NoError,
        }
    }

    /// `n` distinct originator addresses that all hash to the same
    /// slice as `rec(_, _, 0)`'s originator.
    fn same_slice_originators(n: usize) -> Vec<u32> {
        let target = slice_of(Ipv4Addr::from(0xCB00_0000));
        (0u32..).filter(|o| slice_of(Ipv4Addr::from(0xCB00_0000 | o)) == target).take(n).collect()
    }

    #[test]
    fn slice_partition_is_complete_and_stable() {
        let mut seen = [false; SHARD_SLICES];
        for o in 0..100_000u32 {
            let s = slice_of(Ipv4Addr::from(o.wrapping_mul(2_654_435_761)));
            assert!(s < SHARD_SLICES);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "100k addresses must cover all 64 slices");
        let a = Ipv4Addr::new(203, 0, 113, 7);
        assert_eq!(slice_of(a), slice_of(a), "hash is a pure function");
        assert_eq!(shard_of(a, 4), slice_of(a) % 4);
    }

    #[test]
    fn slice_config_splits_caps() {
        let cfg = StreamConfig { max_originators: 100_000, probation_cap: 0, ..Default::default() };
        let sc = slice_config(&cfg);
        assert_eq!(sc.max_originators, 1_563); // ceil(100_000 / 64)
        assert_eq!(sc.probation_cap, 6_250); // ceil(400_000 / 64)
                                             // Tiny configs still leave every slice at least one slot.
        let tiny = slice_config(&StreamConfig { max_originators: 3, ..Default::default() });
        assert_eq!(tiny.max_originators, 1);
    }

    #[test]
    fn sharded_matches_reference_on_a_small_stream() {
        let cfg = StreamConfig { window: SimDuration::from_secs(500), ..Default::default() };
        let records: Vec<QueryLogRecord> =
            (0..800u32).map(|i| rec((i as u64 * 7) % 2_000, i % 23, i % 61)).collect();
        let mut sorted = records;
        sorted.sort_by_key(|r| r.time);
        for lanes in [1, 3, 8] {
            let mut fast = ShardedStreamingSensor::new(cfg, lanes);
            let mut reference = ReferenceShardedStreamingSensor::new(cfg);
            for r in &sorted {
                assert_eq!(fast.push(*r), reference.push(*r), "lanes={lanes}");
            }
            assert_eq!(fast.finish(), reference.finish(), "lanes={lanes}");
        }
    }

    #[test]
    fn matches_plain_sensor_when_unbounded() {
        // Above the memory caps the slice partition is unobservable:
        // sharded output equals the plain single sensor exactly.
        let cfg = StreamConfig { window: SimDuration::from_secs(300), ..Default::default() };
        let records: Vec<QueryLogRecord> =
            (0..1_000u32).map(|i| rec((i as u64 * 3) % 1_200, i % 31, i % 47)).collect();
        let mut sorted = records;
        sorted.sort_by_key(|r| r.time);
        let mut plain = StreamingSensor::new(cfg);
        let mut sharded = ShardedStreamingSensor::new(cfg, 4);
        for r in &sorted {
            assert_eq!(sharded.push(*r), plain.push(*r));
        }
        assert_eq!(sharded.finish(), plain.finish());
    }

    #[test]
    fn queriers_shared_across_shards_merge_by_union() {
        // One querier asking about originators on different slices
        // must appear once in the merged all_queriers set.
        let o = same_slice_originators(1)[0];
        let other = (0u32..)
            .find(|c| {
                slice_of(Ipv4Addr::from(0xCB00_0000 | c)) != slice_of(rec(0, 0, o).originator)
            })
            .unwrap();
        let mut s = ShardedStreamingSensor::new(
            StreamConfig { window: SimDuration::from_secs(100), ..Default::default() },
            4,
        );
        s.push(rec(0, 7, o));
        s.push(rec(1, 7, other));
        let w = s.finish().expect("window");
        assert_eq!(w.observations.per_originator.len(), 2);
        assert_eq!(w.observations.all_queriers.len(), 1, "same querier counted once");
    }

    #[test]
    fn out_of_order_records_drop_without_rotating() {
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
        let mut s = ShardedStreamingSensor::new(cfg, 4);
        s.push(rec(150, 1, 1)); // anchors [100, 200)
        assert!(s.push(rec(50, 2, 2)).is_none(), "late record must not rotate");
        let w = s.push(rec(250, 3, 3)).expect("rotation");
        assert_eq!(w.window, (SimTime(100), SimTime(200)));
        assert_eq!(w.observations.per_originator.len(), 1, "late record never credited");
    }

    #[test]
    fn windows_rotate_across_empty_gaps() {
        let cfg = StreamConfig { window: SimDuration::from_secs(100), ..Default::default() };
        let mut s = ShardedStreamingSensor::new(cfg, 2);
        assert!(s.push(rec(10, 1, 1)).is_none());
        let w1 = s.push(rec(777, 2, 2)).expect("skip empty windows");
        assert_eq!(w1.window, (SimTime(0), SimTime(100)));
        let w2 = s.finish().expect("final flush lands in now's window");
        assert_eq!(w2.window, (SimTime(700), SimTime(800)));
    }

    #[test]
    fn queue_drains_at_capacity() {
        let cfg = StreamConfig { window: SimDuration::from_days(1), ..Default::default() };
        let mut s = ShardedStreamingSensor::new(cfg, 2);
        // All records hit one slice → one lane's queue fills alone.
        let o = same_slice_originators(1)[0];
        for i in 0..SHARD_QUEUE_CAP as u32 {
            s.push(rec(i as u64, i, o));
        }
        assert_eq!(s.queued_records(), 0, "cap-th record must trigger a drain barrier");
        s.push(rec(50_000, 1, o)); // still inside the day-long window
        assert_eq!(s.queued_records(), 1, "then queueing resumes");
        assert_eq!(s.tracked_originators(), 1);
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let cfg = StreamConfig::default();
        assert!(ShardedStreamingSensor::new(cfg, 4).finish().is_none());
        assert!(ReferenceShardedStreamingSensor::new(cfg).finish().is_none());
    }

    #[test]
    fn pressure_broadcast_reaches_every_lane() {
        // Per-slice probation cap = 4096/64 = 64; critical pressure
        // shrinks it to max(64/16, 16) = 16, so a 40-wide one-shot
        // storm into a single slice resets only when the hook is hot.
        let cfg = StreamConfig {
            window: SimDuration::from_days(1),
            max_originators: SHARD_SLICES, // one tracked slot per slice
            admission_queries: 100,        // nothing admits: pure probation load
            probation_cap: 4_096,
            ..Default::default()
        };
        let originators = same_slice_originators(41);
        let run = |pressure: u8| {
            let hook = Arc::new(AtomicU8::new(0));
            let mut s = ShardedStreamingSensor::new(cfg, 4);
            s.set_pressure_hook(Arc::clone(&hook));
            hook.store(pressure, Ordering::Relaxed);
            for (i, o) in originators.iter().enumerate() {
                s.push(rec(i as u64 * 40, i as u32, *o));
            }
            s.drain_all();
            s.pending_probation_resets()
        };
        assert_eq!(run(0), 0, "healthy: 40 probation entries fit under the slice cap of 64");
        assert!(run(2) > 0, "critical: the tightened cap (16) forces wholesale decay");
    }
}
